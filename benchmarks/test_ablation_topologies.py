"""Ablation: topology robustness of the Figure 6 ordering.

The MCI wiring is a substitution (DESIGN.md), so the headline
ordering SP <= ED <= {WD/D+H, WD/D+B} <= GDI is re-verified on NSFNET
and on a random Waxman topology.
"""

from conftest import bench_config

from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.experiments.runner import run_point
from repro.network.topologies import waxman_random

SYSTEMS = (
    SystemSpec("SP"),
    SystemSpec("ED", retrials=2),
    SystemSpec("WD/D+H", retrials=2),
    SystemSpec("WD/D+B", retrials=2),
    SystemSpec("GDI"),
)


def run_topology(config, heavy_rate):
    return {
        spec.label: run_point(spec, heavy_rate, config) for spec in SYSTEMS
    }


def assert_ordering(points):
    sp = points["SP"].admission_probability
    gdi = points["GDI"].admission_probability
    for label in ("<ED,2>", "<WD/D+H,2>", "<WD/D+B,2>"):
        ap = points[label].admission_probability
        assert ap >= sp - 0.02, label
        assert ap <= gdi + 0.02, label


def test_nsfnet_ordering(benchmark):
    config = bench_config(
        topology="nsfnet",
        sources=(1, 3, 7, 11, 13),
        group_members=(0, 5, 9),
    )
    heavy_rate = 6.0 * 25.0
    points = benchmark.pedantic(
        run_topology, args=(config, heavy_rate), rounds=1, iterations=1
    )
    rows = [[l, f"{p.admission_probability:.4f}"] for l, p in points.items()]
    print()
    print(format_table(["system", "AP"], rows, title="NSFNET ordering"))
    assert_ordering(points)


def test_waxman_ordering(benchmark):
    network = waxman_random(20, seed=42)
    nodes = network.nodes()
    config = bench_config(
        topology="waxman20",
        sources=tuple(nodes[10:18]),
        group_members=tuple(nodes[:4]),
    )
    heavy_rate = 6.0 * 25.0
    points = benchmark.pedantic(
        run_topology, args=(config, heavy_rate), rounds=1, iterations=1
    )
    rows = [[l, f"{p.admission_probability:.4f}"] for l, p in points.items()]
    print()
    print(format_table(["system", "AP"], rows, title="Waxman-20 ordering"))
    assert_ordering(points)
