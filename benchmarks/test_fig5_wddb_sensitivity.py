"""Figure 5: admission probability of <WD/D+B, R> vs arrival rate.

Also asserts the paper's observation 3: systems with *higher* AP are
*less* sensitive to R — WD/D+B gains less from retrials than ED does,
because informed selection makes fewer correctable mistakes.
"""

from repro.experiments.figures import figure5


def test_fig5_wddb_sensitivity(benchmark, config):
    result = benchmark.pedantic(figure5, args=(config,), rounds=1, iterations=1)
    print()
    print(result.render())

    series = {label: result.series_for(label) for label in result.series}

    for label, values in series.items():
        assert values == sorted(values, reverse=True), label
    last = -1
    assert series["<WD/D+B,5>"][last] >= series["<WD/D+B,1>"][last] - 0.01
    for values in series.values():
        assert values[0] > 0.99


def test_fig5_observation3_sensitivity_ordering(benchmark, config):
    """Observation 3: ED (lower AP) is more sensitive to R than WD/D+B.

    Only the four corner points (ED/WD/D+B at R in {1, 5}, heaviest
    rate) are needed, so this runs them directly instead of repeating
    the full figures.
    """
    from conftest import HEAVY_RATE

    from repro.core.system import SystemSpec
    from repro.experiments.runner import run_point

    def corners():
        return {
            (algorithm, r): run_point(
                SystemSpec(algorithm, retrials=r), HEAVY_RATE, config
            ).admission_probability
            for algorithm in ("ED", "WD/D+B")
            for r in (1, 5)
        }

    aps = benchmark.pedantic(corners, rounds=1, iterations=1)
    ed_gain = aps[("ED", 5)] - aps[("ED", 1)]
    wddb_gain = aps[("WD/D+B", 5)] - aps[("WD/D+B", 1)]
    print()
    print(f"R-sensitivity gains at lambda={HEAVY_RATE:g}: "
          f"ED={ed_gain:.4f}, WD/D+B={wddb_gain:.4f}")
    assert ed_gain >= wddb_gain - 0.02
