"""Figure 7: average number of retrials (overhead) vs arrival rate.

Paper observation 3 (Section 5.2.2): <ED,2> pays the most retrials,
<WD/D+B,2> the fewest — better information means fewer corrected
mistakes, hence less signalling overhead.
"""

from repro.experiments.figures import figure7


def test_fig7_average_retrials(benchmark, config):
    result = benchmark.pedantic(figure7, args=(config,), rounds=1, iterations=1)
    print()
    print(result.render())

    series = {label: result.series_for(label) for label in result.series}
    rates = list(result.x_values)

    # Retrials grow with load for every system.
    for label, values in series.items():
        assert values == sorted(values), label
        # With R=2 the retrial count per request lies in [0, 1].
        assert all(0.0 <= v <= 1.0 for v in values), label

    # Overhead ordering at the loaded rates: ED >= WD/D+H >= WD/D+B.
    for i in range(1, len(rates)):
        ed = series["<ED,2>"][i]
        wddh = series["<WD/D+H,2>"][i]
        wddb = series["<WD/D+B,2>"][i]
        assert ed >= wddh - 0.03, rates[i]
        assert wddh >= wddb - 0.03, rates[i]

    # Nearly no retrials at the light-load point.
    for values in series.values():
        assert values[0] < 0.05
