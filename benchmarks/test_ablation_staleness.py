"""Ablation: how stale bandwidth information erodes WD/D+B.

The paper grants WD/D+B always-fresh route-bandwidth values while
flagging the compatibility cost of obtaining them (Section 4.3.2).  In
a deployment the values arrive via periodic signalling and age in
between.  This bench sweeps the snapshot refresh period: fresh
snapshots should match the paper's WD/D+B, while badly stale ones
erode toward (or below) the static distance-weighted system — shifting
the practical trade-off further toward WD/D+H, exactly the paper's
recommendation.
"""

from conftest import HEAVY_RATE, bench_config

from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.experiments.runner import run_point

#: Snapshot refresh periods in seconds of simulated time (0 = live).
PERIODS = (0.0, 1.0, 10.0, 60.0)


def run_staleness_sweep(config):
    points = {}
    for period in PERIODS:
        spec = SystemSpec("WD/D+B", retrials=2, bandwidth_refresh_s=period)
        points[period] = run_point(spec, HEAVY_RATE, config)
    points["WD/D"] = run_point(SystemSpec("WD/D", retrials=2), HEAVY_RATE, config)
    return points


def test_staleness_sweep(benchmark):
    config = bench_config()
    points = benchmark.pedantic(
        run_staleness_sweep, args=(config,), rounds=1, iterations=1
    )
    rows = [
        [str(key), f"{p.admission_probability:.4f}", f"{p.mean_retrials:.4f}"]
        for key, p in points.items()
    ]
    print()
    print(format_table(
        ["refresh period (s)", "AP", "retrials"], rows,
        title=f"WD/D+B bandwidth staleness at lambda={HEAVY_RATE:g}",
    ))

    fresh = points[0.0].admission_probability
    # Mildly stale info (1 s at ~200 req/s) barely hurts.
    assert points[1.0].admission_probability >= fresh - 0.03
    # Fresh information is never worse than badly stale information.
    assert fresh >= points[60.0].admission_probability - 0.01
    # Stale WD/D+B still functions (well-defined, nonzero admissions).
    for period in PERIODS:
        assert points[period].admission_probability > 0.2
