"""Ablation: retrial sampling discipline.

The paper's retrial control caps attempts at R; whether a failed
destination may be re-drawn is left implicit (R's upper limit at the
group size suggests without-replacement, which is our default).  This
bench quantifies the difference: resampling failed destinations wastes
attempts, so it can only do worse on both AP and overhead.
"""

from conftest import HEAVY_RATE, bench_config

from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.experiments.runner import run_point


def run_disciplines(config):
    exclude = run_point(
        SystemSpec("ED", retrials=3, resample_failed=False), HEAVY_RATE, config
    )
    resample = run_point(
        SystemSpec("ED", retrials=3, resample_failed=True), HEAVY_RATE, config
    )
    return exclude, resample


def test_without_replacement_dominates(benchmark):
    config = bench_config()
    exclude, resample = benchmark.pedantic(
        run_disciplines, args=(config,), rounds=1, iterations=1
    )
    rows = [
        ["exclude failed", f"{exclude.admission_probability:.4f}",
         f"{exclude.mean_retrials:.4f}"],
        ["resample failed", f"{resample.admission_probability:.4f}",
         f"{resample.mean_retrials:.4f}"],
    ]
    print()
    print(format_table(
        ["discipline", "AP", "retrials"], rows,
        title=f"<ED,3> retrial discipline at lambda={HEAVY_RATE:g}",
    ))
    # Re-drawing known-failed destinations cannot admit more flows.
    assert exclude.admission_probability >= resample.admission_probability - 0.01
