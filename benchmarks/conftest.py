"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or an
ablation) and asserts its qualitative shape.  To keep wall-clock cost
interactive the benchmarks use the offered-load-preserving rescaling
(mean lifetime 180 s -> 30 s, arrival rates x6): admission
probabilities in a loss network depend only on the load lambda/mu, so
the paper's operating points are preserved exactly while warm-up
transients shrink six-fold.

Run with::

    pytest benchmarks/ --benchmark-only

Pass ``--workers N`` to fan each benchmark's replications and sweep
points out over ``N`` processes; results are bit-identical to the
serial run (see :mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig

#: lifetime rescaling factor (180 s -> 30 s).
SCALE = 6.0

#: The paper's lambda grid, rescaled.
RATES = tuple(SCALE * rate for rate in (5.0, 20.0, 35.0, 50.0))
#: Heavier subset for ablations.
HEAVY_RATE = SCALE * 35.0


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        type=int,
        default=1,
        help=(
            "process count for the experiment runner inside the "
            "benchmarks (1 = serial; results are identical)"
        ),
    )


def bench_config(seed: int = 2001, **overrides) -> ExperimentConfig:
    """The benchmark experiment setup (see module docstring)."""
    defaults = dict(
        mean_lifetime_s=30.0,
        warmup_s=150.0,
        measure_s=600.0,
        replications=1,
        seed=seed,
        arrival_rates=RATES,
        retrial_limits=(1, 2, 3, 5),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture
def config(request) -> ExperimentConfig:
    return bench_config(workers=request.config.getoption("--workers"))
