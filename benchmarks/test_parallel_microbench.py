"""Microbenchmark: the parallel experiment runner vs the serial path.

Demonstrates the two claims the parallel layer makes:

* **Determinism** — a multi-replication point run with ``workers=4``
  returns bit-identical :class:`PointResult` values to the serial run
  (asserted unconditionally, on any machine).
* **Speedup** — replications fan out across cores, so with 4 workers
  on a >= 4-core machine the wall-clock drops by >= 2x (asserted only
  when the hardware actually has the cores; on smaller machines the
  measured ratio is still printed for the record).

Run with::

    pytest benchmarks/test_parallel_microbench.py --benchmark-only -s
"""

import os
import time

from conftest import HEAVY_RATE, bench_config

from repro.core.system import SystemSpec
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import run_point

WORKERS = 4

#: Four replications of a medium-length point: enough simulated work
#: for the pool to amortize its fork cost many times over.
def _parallel_config():
    return bench_config(
        replications=WORKERS, warmup_s=100.0, measure_s=400.0
    )


def test_parallel_point_bit_identical_and_faster(benchmark):
    config = _parallel_config()
    spec = SystemSpec("WD/D+H", retrials=2)

    def serial():
        return run_point(spec, HEAVY_RATE, config, workers=1)

    def parallel():
        return ParallelRunner(workers=WORKERS).run_point(
            spec, HEAVY_RATE, config
        )

    started = time.perf_counter()
    serial_point = serial()
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel_point = benchmark.pedantic(parallel, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - started

    # Determinism: the whole aggregate, including every per-replication
    # SimulationResult, must match bit for bit.
    assert parallel_point == serial_point

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print()
    print(
        f"serial {serial_s:.2f}s  parallel({WORKERS}) {parallel_s:.2f}s  "
        f"speedup {speedup:.2f}x on {os.cpu_count()} cores"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {WORKERS} workers on "
            f"{os.cpu_count()} cores, measured {speedup:.2f}x"
        )


def test_parallel_sweep_bit_identical(benchmark):
    """Whole-grid fan-out keeps the pool busy and stays deterministic."""
    from repro.experiments.runner import sweep

    config = bench_config(
        replications=2, warmup_s=50.0, measure_s=200.0,
        arrival_rates=(HEAVY_RATE,),
    )
    specs = [SystemSpec("ED", retrials=2), SystemSpec("SP")]
    serial_series = sweep(specs, config, workers=1)
    parallel_series = benchmark.pedantic(
        lambda: sweep(specs, config, workers=WORKERS), rounds=1, iterations=1
    )
    assert parallel_series == serial_series
