"""Figure 4: admission probability of <WD/D+H, R> vs arrival rate."""

from repro.experiments.figures import figure4


def test_fig4_wddh_sensitivity(benchmark, config):
    result = benchmark.pedantic(figure4, args=(config,), rounds=1, iterations=1)
    print()
    print(result.render())

    series = {label: result.series_for(label) for label in result.series}

    # AP decreases with arrival rate for every R.
    for label, values in series.items():
        assert values == sorted(values, reverse=True), label

    # AP increases with R at the heavy rates.
    last = -1
    assert series["<WD/D+H,2>"][last] >= series["<WD/D+H,1>"][last] - 0.01
    assert series["<WD/D+H,5>"][last] >= series["<WD/D+H,2>"][last] - 0.01

    # Light load: everything admitted.
    for values in series.values():
        assert values[0] > 0.99
