"""Ablation: the WD/D+H+B hybrid against its parent algorithms.

The paper's algorithm family orders information sources (none <
distance+history < distance+bandwidth); the obvious combination —
distance, history AND bandwidth together — is left unexplored.  This
bench completes the picture at the heavy-load operating point.
"""

from conftest import HEAVY_RATE, bench_config

from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.experiments.runner import run_point

ALGORITHMS = ("ED", "WD/D+H", "WD/D+B", "WD/D+H+B")


def run_family(config):
    return {
        algorithm: run_point(
            SystemSpec(algorithm, retrials=2), HEAVY_RATE, config
        )
        for algorithm in ALGORITHMS
    }


def test_hybrid_completes_the_family(benchmark):
    config = bench_config()
    points = benchmark.pedantic(run_family, args=(config,), rounds=1, iterations=1)

    rows = [
        [
            algorithm,
            f"{p.admission_probability:.4f}",
            f"{p.mean_retrials:.4f}",
        ]
        for algorithm, p in points.items()
    ]
    print()
    print(format_table(
        ["system", "AP", "retrials"], rows,
        title=f"algorithm family at lambda={HEAVY_RATE:g} (R=2)",
    ))

    hybrid = points["WD/D+H+B"].admission_probability
    # The hybrid must not lose to the weaker parent...
    assert hybrid >= min(
        points["WD/D+H"].admission_probability,
        points["WD/D+B"].admission_probability,
    ) - 0.01
    # ...and clearly beats the information-free baseline.
    assert hybrid > points["ED"].admission_probability - 0.01
    # Overhead stays at the informed-algorithm level.
    assert (
        points["WD/D+H+B"].mean_retrials
        <= points["ED"].mean_retrials + 0.03
    )
