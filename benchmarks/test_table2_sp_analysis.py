"""Table 2: mathematical analysis vs computer simulation for SP."""

from conftest import RATES

from repro.experiments.tables import table2


def test_table2_analysis_vs_simulation(benchmark, config):
    result = benchmark.pedantic(
        table2, kwargs={"config": config, "arrival_rates": RATES},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    print(f"max |analysis - simulation| = {result.max_absolute_gap:.6f}")

    assert list(result.analysis) == sorted(result.analysis, reverse=True)
    assert list(result.simulation) == sorted(result.simulation, reverse=True)
    assert result.analysis[0] > 0.999
    assert result.max_absolute_gap < 0.03
