"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the raw cost of the discrete-event
engine, the reservation hot path and the fixed-point solver, so
regressions in the substrate are visible independently of the
experiment-level benches.
"""

from repro.analysis.fixedpoint import ReducedLoadSolver, RouteLoad
from repro.core.system import SystemSpec
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.routing import RouteTable
from repro.network.topologies import MCI_GROUP_MEMBERS, MCI_SOURCES, mci_backbone
from repro.sim.engine import Simulator
from repro.sim.simulation import AnycastSimulation


def test_engine_event_throughput(benchmark):
    """Schedule-and-run cost of 10k chained events."""

    def run_chain():
        sim = Simulator()
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return state["n"]

    assert benchmark(run_chain) == 10_000


def test_path_reservation_throughput(benchmark):
    """Reserve/release cycles on a 4-hop MCI route."""
    network = mci_backbone()
    table = RouteTable(network, 9, MCI_GROUP_MEMBERS)
    route = max(table.routes(), key=lambda r: r.distance)

    def cycle():
        for i in range(100):
            assert network.reserve_path(route.path, i, 64_000.0)
        for i in range(100):
            network.release_path(route.path, i)

    benchmark(cycle)


def test_fixed_point_solve_speed(benchmark):
    """Reduced-load solve on the full MCI route set at heavy load."""
    network = mci_backbone()
    capacities = {
        (l.source, l.target): int(l.capacity_bps // 64_000) for l in network.links()
    }
    routes = []
    for source in MCI_SOURCES:
        table = RouteTable(network, source, MCI_GROUP_MEMBERS)
        for route in table.routes():
            links = tuple(zip(route.path, route.path[1:]))
            routes.append(RouteLoad(links=links, load_erlangs=200.0))

    def solve():
        return ReducedLoadSolver(capacities, routes).solve()

    solution = benchmark(solve)
    assert solution.converged


def test_simulation_end_to_end_speed(benchmark):
    """Wall-clock of a short but complete <WD/D+H,2> run."""
    workload = WorkloadSpec(
        arrival_rate=120.0,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        mean_lifetime_s=30.0,
    )

    def run():
        return AnycastSimulation(
            network_factory=mci_backbone,
            system_spec=SystemSpec("WD/D+H", retrials=2),
            workload=workload,
            warmup_s=50.0,
            measure_s=150.0,
            seed=3,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.requests > 0


def test_engine_event_throughput_calendar_queue(benchmark):
    """Same chained-event workload on the calendar-queue engine."""

    def run_chain():
        sim = Simulator(queue="calendar")
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return state["n"]

    assert benchmark(run_chain) == 10_000
