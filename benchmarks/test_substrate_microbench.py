"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the raw cost of the discrete-event
engine, the reservation hot path and the fixed-point solver, so
regressions in the substrate are visible independently of the
experiment-level benches.
"""

from repro.analysis.fixedpoint import ReducedLoadSolver, RouteLoad
from repro.core.system import SystemSpec
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.routing import RouteTable
from repro.network.topologies import MCI_GROUP_MEMBERS, MCI_SOURCES, mci_backbone
from repro.sim.engine import Simulator
from repro.sim.simulation import AnycastSimulation


def test_engine_event_throughput(benchmark):
    """Schedule-and-run cost of 10k chained events."""

    def run_chain():
        sim = Simulator()
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return state["n"]

    assert benchmark(run_chain) == 10_000


def test_path_reservation_throughput(benchmark):
    """Reserve/release cycles on a 4-hop MCI route."""
    network = mci_backbone()
    table = RouteTable(network, 9, MCI_GROUP_MEMBERS)
    route = max(table.routes(), key=lambda r: r.distance)

    def cycle():
        for i in range(100):
            assert network.reserve_path(route.path, i, 64_000.0)
        for i in range(100):
            network.release_path(route.path, i)

    benchmark(cycle)


def test_fixed_point_solve_speed(benchmark):
    """Reduced-load solve on the full MCI route set at heavy load."""
    network = mci_backbone()
    capacities = {
        (l.source, l.target): int(l.capacity_bps // 64_000) for l in network.links()
    }
    routes = []
    for source in MCI_SOURCES:
        table = RouteTable(network, source, MCI_GROUP_MEMBERS)
        for route in table.routes():
            links = tuple(zip(route.path, route.path[1:]))
            routes.append(RouteLoad(links=links, load_erlangs=200.0))

    def solve():
        return ReducedLoadSolver(capacities, routes).solve()

    solution = benchmark(solve)
    assert solution.converged


def test_simulation_end_to_end_speed(benchmark):
    """Wall-clock of a short but complete <WD/D+H,2> run."""
    workload = WorkloadSpec(
        arrival_rate=120.0,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        mean_lifetime_s=30.0,
    )

    def run():
        return AnycastSimulation(
            network_factory=mci_backbone,
            system_spec=SystemSpec("WD/D+H", retrials=2),
            workload=workload,
            warmup_s=50.0,
            measure_s=150.0,
            seed=3,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.requests > 0


def test_engine_event_throughput_calendar_queue(benchmark):
    """Same chained-event workload on the calendar-queue engine."""

    def run_chain():
        sim = Simulator(queue="calendar")
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return state["n"]

    assert benchmark(run_chain) == 10_000


def _run_hold_pattern(queue_kind, events=20_000, pending=2_000):
    """Dispatch ``events`` while keeping ``pending`` timers in flight.

    This is the loss-network steady state — a large stable population
    of departure timers — and the workload where pending-event set
    data structures actually differ.
    """
    import random

    sim = Simulator(queue=queue_kind)
    rng = random.Random(20010405)
    state = {"n": 0}

    def fire():
        state["n"] += 1
        if state["n"] + pending <= events:
            sim.schedule(rng.expovariate(1.0), fire)

    for _ in range(pending):
        sim.schedule(rng.expovariate(1.0), fire)
    sim.run()
    return state["n"]


def test_engine_hold_pattern_heap(benchmark):
    """Heap engine under a constant 2k-pending-event population."""
    assert benchmark(_run_hold_pattern, "heap") == 20_000


def test_engine_hold_pattern_calendar(benchmark):
    """Calendar engine under the same hold pattern (amortized O(1))."""
    assert benchmark(_run_hold_pattern, "calendar") == 20_000


def test_fixed_point_grid_speed(benchmark):
    """Vectorized solve_grid over a 20-point offered-load sweep."""
    network = mci_backbone()
    capacities = {
        (l.source, l.target): int(l.capacity_bps // 64_000) for l in network.links()
    }
    routes = []
    for source in MCI_SOURCES:
        table = RouteTable(network, source, MCI_GROUP_MEMBERS)
        for route in table.routes():
            links = tuple(zip(route.path, route.path[1:]))
            routes.append(RouteLoad(links=links, load_erlangs=50.0))
    solver = ReducedLoadSolver(capacities, routes)
    scales = [0.25 + 5.75 * i / 19 for i in range(20)]

    solutions = benchmark(solver.solve_grid, scales)
    assert len(solutions) == 20
    assert all(s.converged for s in solutions)


def test_bottleneck_scan_speed(benchmark):
    """WD/D+B's per-request scan: bottleneck of every route in a table."""
    from repro.network.state import LiveBandwidthView

    network = mci_backbone()
    view = LiveBandwidthView(network)
    tables = [
        RouteTable(network, source, MCI_GROUP_MEMBERS) for source in MCI_SOURCES
    ]
    routes = [route for table in tables for route in table.routes()]
    # Put some load on the network so scans read non-trivial state.
    for i, route in enumerate(routes):
        network.reserve_path(route.path, ("bg", i), 64_000.0)

    def scan():
        total = 0.0
        for route in routes:
            total += view.route_available_bps(route)
        return total

    assert benchmark(scan) > 0.0


def test_signaling_overhead_scenario(benchmark):
    """Correctness of the chaos run behind the signaling bench entries."""
    from repro.experiments.chaos import ChaosConfig, ChaosSimulation

    workload = WorkloadSpec(
        arrival_rate=60.0,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        mean_lifetime_s=30.0,
    )

    def run():
        return ChaosSimulation(
            network_factory=mci_backbone,
            system_spec=SystemSpec("WD/D+B", retrials=2),
            workload=workload,
            chaos=ChaosConfig(loss_rate=0.05),
            warmup_s=5.0,
            measure_s=10.0,
            seed=3,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.admitted > 0
    assert result.signaling_messages > 0
    assert result.retransmissions > 0
    assert result.leaked_bps == 0.0
