"""Ablation: exact Erlang-B vs the paper's UAA inside the fixed point.

The paper computes link blocking with the Uniform Asymptotic
Approximation (Appendix A.2); exact Erlang-B is numerically trivial
today.  This bench quantifies the end-to-end difference on the Table 1
analysis — it should be far below the analysis-vs-simulation gap —
and benchmarks the raw blocking-function cost.
"""

import pytest

from conftest import RATES

from repro.analysis.admission import analyze_system
from repro.analysis.erlang import erlang_b, uaa_blocking
from repro.core.system import SystemSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.network.topologies import mci_backbone


def run_both_pathways():
    config = ExperimentConfig(mean_lifetime_s=30.0)
    network = mci_backbone()
    rows = []
    for rate in RATES:
        workload = config.workload(rate)
        exact = analyze_system(
            network, workload, SystemSpec("ED", retrials=1),
            blocking_function=erlang_b,
        )
        approx = analyze_system(
            network, workload, SystemSpec("ED", retrials=1),
            blocking_function=uaa_blocking,
        )
        rows.append((rate, exact.admission_probability, approx.admission_probability))
    return rows


def test_uaa_pathway_matches_exact(benchmark):
    rows = benchmark.pedantic(run_both_pathways, rounds=1, iterations=1)
    table = [
        [f"{rate:g}", f"{exact:.6f}", f"{approx:.6f}", f"{abs(exact - approx):.2e}"]
        for rate, exact, approx in rows
    ]
    print()
    print(format_table(
        ["lambda", "Erlang-B AP", "UAA AP", "|gap|"], table,
        title="blocking-function ablation, <ED,1> analysis",
    ))
    for rate, exact, approx in rows:
        assert approx == pytest.approx(exact, abs=0.002), rate


def test_erlang_b_speed(benchmark):
    """Raw cost of the exact recursion at the paper's capacity."""
    result = benchmark(erlang_b, 350.0, 312)
    assert 0.0 < result < 1.0


def test_uaa_speed(benchmark):
    """Raw cost of the closed-form UAA at the paper's capacity."""
    result = benchmark(uaa_blocking, 350.0, 312)
    assert 0.0 < result < 1.0
