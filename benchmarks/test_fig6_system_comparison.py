"""Figure 6: the three DAC systems against the SP and GDI baselines.

The paper's central result: SP is worst, GDI is the (unrealizable)
best, and the local-information DAC systems sit close to GDI — with
WD/D+H and WD/D+B above ED.
"""

from repro.experiments.figures import figure6


def test_fig6_system_comparison(benchmark, config):
    result = benchmark.pedantic(figure6, args=(config,), rounds=1, iterations=1)
    print()
    print(result.render())

    series = {label: result.series_for(label) for label in result.series}
    rates = list(result.x_values)
    last = len(rates) - 1

    # At very low rates all systems perform equally (obs. 1).
    for label, values in series.items():
        assert values[0] > 0.99, label

    # SP worst, GDI best at every loaded rate (obs. 1).
    for i in range(1, len(rates)):
        sp = series["SP"][i]
        gdi = series["GDI"][i]
        for label in ("<ED,2>", "<WD/D+H,2>", "<WD/D+B,2>"):
            assert series[label][i] > sp - 0.01, (label, rates[i])
            assert series[label][i] <= gdi + 0.02, (label, rates[i])

    # Informed selection beats blind ED at the heavy point (obs. 2).
    assert series["<WD/D+H,2>"][last] >= series["<ED,2>"][last] - 0.01
    assert series["<WD/D+B,2>"][last] >= series["<ED,2>"][last] - 0.01

    # The headline: DAC with local information is *close* to GDI.
    assert series["GDI"][last] - series["<WD/D+B,2>"][last] < 0.15
