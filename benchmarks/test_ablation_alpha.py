"""Ablation: the WD/D+H history-decay parameter alpha.

The paper introduces alpha (eq. 8-9) — 0 gives the history maximal
impact, 1 none — but never sweeps it.  This bench does: alpha = 1 must
degrade WD/D+H to the distance-only WD/D system, and any alpha < 1
should beat that degenerate case at heavy load.
"""

import pytest

from conftest import HEAVY_RATE, bench_config

from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.experiments.runner import run_point

ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def run_alpha_sweep(config):
    points = {}
    for alpha in ALPHAS:
        spec = SystemSpec("WD/D+H", retrials=2, alpha=alpha)
        points[alpha] = run_point(spec, HEAVY_RATE, config)
    points["WD/D"] = run_point(SystemSpec("WD/D", retrials=2), HEAVY_RATE, config)
    return points


def test_alpha_sweep(benchmark):
    config = bench_config()
    points = benchmark.pedantic(run_alpha_sweep, args=(config,), rounds=1, iterations=1)

    rows = [
        [str(key), f"{p.admission_probability:.4f}", f"{p.mean_retrials:.4f}"]
        for key, p in points.items()
    ]
    print()
    print(format_table(["alpha", "AP", "retrials"], rows,
                       title=f"WD/D+H alpha sweep at lambda={HEAVY_RATE:g}"))

    # alpha=1 disables history: statistically identical to WD/D.
    assert points[1.0].admission_probability == pytest.approx(
        points["WD/D"].admission_probability, abs=0.02
    )

    # History helps: every alpha < 1 is at least as good as alpha = 1.
    for alpha in (0.0, 0.25, 0.5, 0.75):
        assert (
            points[alpha].admission_probability
            >= points[1.0].admission_probability - 0.01
        ), alpha

    # History also cuts overhead: fewer retrials than the blind case.
    assert points[0.5].mean_retrials <= points[1.0].mean_retrials + 0.02
