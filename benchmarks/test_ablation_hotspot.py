"""Ablation: hot-spot (non-uniform) request sources.

The paper draws each request's source uniformly; real demand is
skewed.  This bench concentrates 60 % of the requests on two adjacent
sources and asks whether the paper's conclusions survive: the informed
algorithms should absorb the hot spot better than blind ED, and far
better than SP (whose fixed funnelling is maximally hurt by demand
concentration).
"""

from conftest import HEAVY_RATE, bench_config

from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.experiments.runner import run_point
from repro.network.topologies import MCI_SOURCES

#: 60 % of traffic on sources 1 and 3; the rest spread evenly.
HOTSPOT_WEIGHTS = tuple(
    30.0 if source in (1, 3) else 40.0 / 7.0 for source in MCI_SOURCES
)


def run_hotspot(config):
    results = {}
    for algorithm in ("SP", "ED", "WD/D+H", "WD/D+B"):
        spec = SystemSpec(algorithm, retrials=2)
        results[algorithm] = run_point(spec, HEAVY_RATE, config)
    return results


def test_hotspot_workload(benchmark):
    hotspot_config = bench_config(source_weights=HOTSPOT_WEIGHTS)
    results = benchmark.pedantic(
        run_hotspot, args=(hotspot_config,), rounds=1, iterations=1
    )
    rows = [
        [
            algorithm,
            f"{point.admission_probability:.4f}",
            f"{point.mean_retrials:.4f}",
        ]
        for algorithm, point in results.items()
    ]
    print()
    print(format_table(
        ["system", "AP", "retrials"], rows,
        title=f"hot-spot workload (60% on sources 1,3) at lambda={HEAVY_RATE:g}",
    ))

    # The paper's ordering must survive demand skew.
    sp = results["SP"].admission_probability
    ed = results["ED"].admission_probability
    assert ed > sp - 0.01
    assert results["WD/D+H"].admission_probability > ed - 0.01
    assert results["WD/D+B"].admission_probability > ed - 0.01
