"""Ablation: anycast group size K.

The paper notes unicast is the K=1 special case of anycast (Section 1)
and fixes K=5 in its evaluation.  This bench sweeps K: more members
mean more route diversity, so AP should not decrease with K, and the
K=1 case must make every selection algorithm equivalent.
"""

import pytest

from conftest import bench_config

from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.experiments.runner import run_point

#: Nested member sets (each a prefix of the next) on the MCI backbone.
GROUPS = {
    1: (8,),
    3: (8, 0, 16),
    5: (8, 0, 16, 4, 12),
}
HEAVY_RATE = 6.0 * 25.0


def run_group_sweep():
    points = {}
    for size, members in GROUPS.items():
        config = bench_config(group_members=members)
        points[size] = run_point(
            SystemSpec("ED", retrials=2), HEAVY_RATE, config
        )
    return points


def test_group_size_sweep(benchmark):
    points = benchmark.pedantic(run_group_sweep, rounds=1, iterations=1)
    rows = [
        [str(size), f"{p.admission_probability:.4f}"]
        for size, p in points.items()
    ]
    print()
    print(format_table(["K", "AP"], rows, title="group-size sweep, <ED,2>"))

    # Route diversity helps: AP non-decreasing in K (noise margin).
    assert points[3].admission_probability >= points[1].admission_probability - 0.02
    assert points[5].admission_probability >= points[3].admission_probability - 0.02


def test_unicast_case_equalizes_algorithms(benchmark):
    config = bench_config(group_members=GROUPS[1])

    def run_all():
        return {
            algorithm: run_point(
                SystemSpec(algorithm, retrials=3), HEAVY_RATE, config
            ).admission_probability
            for algorithm in ("ED", "WD/D+H", "WD/D+B", "SP")
        }

    aps = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("unicast APs:", {k: round(v, 4) for k, v in aps.items()})
    baseline = aps["SP"]
    for algorithm, ap in aps.items():
        assert ap == pytest.approx(baseline, abs=1e-12), algorithm
