"""Ablation: per-source fairness of the selection algorithms.

The paper reports only network-wide admission probability, which can
hide starvation of poorly-placed sources.  This bench compares Jain's
fairness index over per-source APs: the randomized DAC systems should
spread rejection pain far more evenly than SP, whose fixed nearest-
member funnelling concentrates congestion on particular regions.
"""

from conftest import HEAVY_RATE, bench_config

from repro.core.system import SystemSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.sim.simulation import AnycastSimulation


def run_fairness(config: ExperimentConfig):
    results = {}
    for algorithm in ("SP", "ED", "WD/D+H", "WD/D+B", "GDI"):
        simulation = AnycastSimulation(
            network_factory=config.network_factory(),
            system_spec=SystemSpec(algorithm, retrials=2),
            workload=config.workload(HEAVY_RATE),
            warmup_s=config.warmup_s,
            measure_s=config.measure_s,
            seed=config.seed,
        )
        results[algorithm] = simulation.run()
    return results


def test_fairness_across_algorithms(benchmark):
    config = bench_config()
    results = benchmark.pedantic(run_fairness, args=(config,), rounds=1, iterations=1)

    rows = []
    for algorithm, result in results.items():
        aps = list(result.per_source_ap.values())
        rows.append(
            [
                algorithm,
                f"{result.admission_probability:.4f}",
                f"{result.fairness_index:.4f}",
                f"{min(aps):.4f}",
                f"{max(aps):.4f}",
            ]
        )
    print()
    print(format_table(
        ["system", "AP", "Jain index", "worst source", "best source"],
        rows,
        title=f"per-source fairness at lambda={HEAVY_RATE:g}",
    ))

    # Randomized distribution is at least as fair as fixed funnelling.
    assert results["ED"].fairness_index >= results["SP"].fairness_index - 0.02
    # Every system keeps a sane index (no total starvation).
    for algorithm, result in results.items():
        assert result.fairness_index > 0.5, algorithm
    # The worst-placed source under SP does worse than under ED.
    sp_worst = min(results["SP"].per_source_ap.values())
    ed_worst = min(results["ED"].per_source_ap.values())
    assert ed_worst >= sp_worst - 0.02
