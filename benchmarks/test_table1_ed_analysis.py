"""Table 1: mathematical analysis vs computer simulation for <ED,1>.

The paper reports near-identical values at lambda in {5, 20, 35, 50};
this regenerates both rows and asserts the agreement.
"""

from conftest import RATES

from repro.experiments.tables import table1


def test_table1_analysis_vs_simulation(benchmark, config):
    result = benchmark.pedantic(
        table1, kwargs={"config": config, "arrival_rates": RATES},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    print(f"max |analysis - simulation| = {result.max_absolute_gap:.6f}")

    # Both rows decrease with load; both start at ~1.
    assert list(result.analysis) == sorted(result.analysis, reverse=True)
    assert list(result.simulation) == sorted(result.simulation, reverse=True)
    assert result.analysis[0] > 0.999
    assert result.simulation[0] > 0.99

    # The paper's Appendix A.3 claim: "almost identical".
    assert result.max_absolute_gap < 0.03
