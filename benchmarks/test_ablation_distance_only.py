"""Ablation: isolating the distance term of WD/D+H.

WD/D+H = inverse-distance seed + history decay.  Comparing
ED < WD/D < WD/D+H separates how much of the gain comes from static
distance bias versus dynamic history.
"""

from conftest import HEAVY_RATE, bench_config

from repro.core.system import SystemSpec
from repro.experiments.report import format_table
from repro.experiments.runner import run_point


def run_decomposition(config):
    return {
        label: run_point(SystemSpec(algorithm, retrials=2), HEAVY_RATE, config)
        for label, algorithm in (
            ("ED", "ED"),
            ("WD/D", "WD/D"),
            ("WD/D+H", "WD/D+H"),
        )
    }


def test_distance_and_history_decomposition(benchmark):
    config = bench_config()
    points = benchmark.pedantic(
        run_decomposition, args=(config,), rounds=1, iterations=1
    )
    rows = [
        [label, f"{p.admission_probability:.4f}", f"{p.mean_retrials:.4f}"]
        for label, p in points.items()
    ]
    print()
    print(format_table(["system", "AP", "retrials"], rows,
                       title=f"selection-information decomposition at lambda={HEAVY_RATE:g}"))

    # Monotone information ordering (small noise margin).
    assert (
        points["WD/D+H"].admission_probability
        >= points["ED"].admission_probability - 0.01
    )
    # History must not hurt relative to its own static seed.
    assert (
        points["WD/D+H"].admission_probability
        >= points["WD/D"].admission_probability - 0.015
    )
