"""Figure 3: admission probability of <ED, R> vs arrival rate.

Regenerates the paper's Figure 3 series (one curve per retrial limit
R) and asserts its three observations: AP falls with load, rises with
R, and the R=1->2 step dominates.
"""

from repro.experiments.figures import figure3


def test_fig3_ed_sensitivity(benchmark, config):
    result = benchmark.pedantic(figure3, args=(config,), rounds=1, iterations=1)
    print()
    print(result.render())

    rates = list(result.x_values)
    series = {label: result.series_for(label) for label in result.series}

    # Observation: AP decreases with arrival rate for every R.
    for label, values in series.items():
        assert values == sorted(values, reverse=True), label

    # Observation 1: AP increases with R at every loaded rate.
    for i, rate in enumerate(rates[1:], start=1):
        assert series["<ED,2>"][i] >= series["<ED,1>"][i] - 0.01, rate
        assert series["<ED,3>"][i] >= series["<ED,2>"][i] - 0.01, rate
        assert series["<ED,5>"][i] >= series["<ED,3>"][i] - 0.01, rate

    # Observation 2: the first retrial gives the dominant improvement;
    # R=3 -> R=5 is nearly invisible.  Checked at the heaviest rate.
    last = -1
    gain_first = series["<ED,2>"][last] - series["<ED,1>"][last]
    gain_late = series["<ED,5>"][last] - series["<ED,3>"][last]
    assert gain_first > gain_late - 0.01
    assert gain_late < 0.05

    # Everything ~1 at the light-load point.
    for values in series.values():
        assert values[0] > 0.99
