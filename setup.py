"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs (``pip install -e .`` via the
pyproject build backend) cannot build editable wheels.  This shim lets
pip fall back to the legacy ``setup.py develop`` path:

    pip install -e . --no-use-pep517 --no-build-isolation

All metadata lives in ``pyproject.toml``; setuptools >= 61 reads it
from there automatically.
"""

from setuptools import setup

setup()
