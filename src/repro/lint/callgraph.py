"""Project-wide call graph with purity facts, for rule R7.

The pool-purity rule must answer a *transitive* question: is anything
reachable from a callable shipped across the multiprocessing boundary
impure (mutating module-level state, drawing unseeded randomness)?
That needs more than one file's AST — this module indexes every
function and method of the linted tree, resolves call sites between
them, and attaches the two impurity facts to each function.

Resolution is deliberately conservative-but-useful:

* ``name(...)`` resolves through the module's own functions and its
  ``from``-imports;
* ``module.func(...)`` resolves through ``import`` aliases;
* ``self.method(...)`` / ``cls.method(...)`` resolves inside the
  enclosing class first;
* any other ``obj.method(...)`` resolves to **every** project method
  of that name (an over-approximation: better to scan too much of the
  project than to silently skip the impure branch).

Calls into modules outside the indexed tree (stdlib, numpy...) are
recorded as unresolved and ignored by traversal — the R1 rule already
polices the dangerous external modules syntactically.

The whole graph serializes to JSON keyed by per-file content digests
(:meth:`CallGraph.to_payload` / :meth:`CallGraph.from_payload`), which
is what ``python -m repro.lint --callgraph-cache`` and the CI job use
to skip re-parsing unchanged files between steps.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Iterable, Optional, Union

__all__ = ["CallGraph", "FunctionInfo", "build_callgraph", "module_name_for"]

#: Container constructors whose module-level bindings count as mutable
#: state (a worker touching one races or diverges across processes).
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)


def module_name_for(path: Union[str, PurePath]) -> str:
    """Dotted module name of ``path``, anchored at a ``repro`` package.

    Files outside any ``repro`` package (fixtures, scratch scripts) get
    their stem as a flat module name.
    """
    parts = PurePath(path).parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        dotted = list(parts[anchor:])
    else:
        dotted = [parts[-1]]
    if dotted[-1].endswith(".py"):
        dotted[-1] = dotted[-1][:-3]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str  # module.Class.method or module.func
    module: str
    name: str
    path: str
    lineno: int
    #: resolved callee qualnames (deduplicated, source order)
    calls: list[str] = field(default_factory=list)
    #: unresolved call targets, as dotted text (diagnostics only)
    unresolved: list[str] = field(default_factory=list)
    #: (module-level name, lineno) pairs this function mutates
    mutates_module_state: list[tuple[str, int]] = field(default_factory=list)
    #: (dotted rng/clock name, lineno) pairs drawn outside named streams
    unseeded_rng: list[tuple[str, int]] = field(default_factory=list)


class CallGraph:
    """Functions of a file set plus their resolved call edges."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self._methods_by_name: dict[str, list[str]] = {}
        self._file_digests: dict[str, str] = {}

    # ------------------------------------------------------------------
    def add(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        self._methods_by_name.setdefault(info.name, []).append(info.qualname)

    def methods_named(self, name: str) -> list[str]:
        """Every indexed function with terminal name ``name``."""
        return list(self._methods_by_name.get(name, ()))

    def lookup(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def reachable(self, roots: Iterable[str]) -> list[str]:
        """Qualnames reachable from ``roots`` (BFS, deterministic order)."""
        seen: dict[str, None] = {}
        frontier = [root for root in roots if root in self.functions]
        for root in frontier:
            seen[root] = None
        while frontier:
            current = frontier.pop(0)
            for callee in self.functions[current].calls:
                if callee in self.functions and callee not in seen:
                    seen[callee] = None
                    frontier.append(callee)
        return list(seen)

    # ------------------------------------------------------------------
    # cache serialization
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A JSON-ready snapshot keyed by per-file digests."""
        return {
            "version": 1,
            "files": dict(sorted(self._file_digests.items())),
            "functions": [
                {
                    "qualname": info.qualname,
                    "module": info.module,
                    "name": info.name,
                    "path": info.path,
                    "lineno": info.lineno,
                    "calls": info.calls,
                    "unresolved": info.unresolved,
                    "mutates_module_state": [
                        list(item) for item in info.mutates_module_state
                    ],
                    "unseeded_rng": [list(item) for item in info.unseeded_rng],
                }
                for _, info in sorted(self.functions.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CallGraph":
        graph = cls()
        graph._file_digests = dict(payload.get("files", {}))
        for raw in payload.get("functions", ()):
            graph.add(
                FunctionInfo(
                    qualname=raw["qualname"],
                    module=raw["module"],
                    name=raw["name"],
                    path=raw["path"],
                    lineno=raw["lineno"],
                    calls=list(raw.get("calls", ())),
                    unresolved=list(raw.get("unresolved", ())),
                    mutates_module_state=[
                        (item[0], item[1])
                        for item in raw.get("mutates_module_state", ())
                    ],
                    unseeded_rng=[
                        (item[0], item[1]) for item in raw.get("unseeded_rng", ())
                    ],
                )
            )
        return graph

    def matches_sources(self, sources: dict[str, str]) -> bool:
        """Whether a cached graph is current for ``sources``."""
        return self._file_digests == {
            path: _digest(text) for path, text in sources.items()
        }


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# indexing
# ---------------------------------------------------------------------------
@dataclass
class _ModuleIndex:
    name: str
    path: str
    tree: ast.Module
    #: bound name -> dotted import origin
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level function name -> qualname
    functions: dict[str, str] = field(default_factory=dict)
    #: class name -> {method name -> qualname}
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: module-level names bound to mutable containers
    mutable_globals: dict[str, int] = field(default_factory=dict)


def _index_module(name: str, path: str, tree: ast.Module) -> _ModuleIndex:
    index = _ModuleIndex(name=name, path=path, tree=tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                bound = item.asname or item.name.split(".", 1)[0]
                index.imports[bound] = item.name if item.asname else bound
        elif isinstance(node, ast.ImportFrom):
            if node.module is None:
                continue
            # Relative imports resolve against the repro package root.
            prefix = node.module
            for item in node.names:
                bound = item.asname or item.name
                index.imports[bound] = f"{prefix}.{item.name}"
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions[node.name] = f"{name}.{node.name}"
        elif isinstance(node, ast.ClassDef):
            methods = {}
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[member.name] = f"{name}.{node.name}.{member.name}"
            index.classes[node.name] = methods
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if _is_mutable_binding(node.value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        index.mutable_globals[target.id] = node.lineno
    return index


def _is_mutable_binding(value: Optional[ast.expr]) -> bool:
    if value is None:
        return False
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        callee = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        return callee in _MUTABLE_FACTORIES
    return False


def _dotted_text(node: ast.expr) -> Optional[str]:
    trail: list[str] = []
    while isinstance(node, ast.Attribute):
        trail.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    trail.append(node.id)
    return ".".join(reversed(trail))


#: Seeded-constructor idioms: building a generator from an explicit
#: seed is exactly how named streams are made, so these are not facts.
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
    }
)


def _rng_reason(dotted: str) -> bool:
    if dotted in _SEEDED_CONSTRUCTORS:
        return False
    return (
        dotted.startswith("random.")
        or dotted.startswith("numpy.random.")
        or dotted in ("time.time", "time.time_ns", "datetime.datetime.now")
    )


class _FunctionScanner(ast.NodeVisitor):
    """Extracts calls and impurity facts from one function body."""

    def __init__(
        self,
        info: FunctionInfo,
        index: _ModuleIndex,
        class_name: Optional[str],
        graph: CallGraph,
        modules_by_name: dict[str, _ModuleIndex],
        local_names: set[str],
    ) -> None:
        self._info = info
        self._index = index
        self._class = class_name
        self._graph = graph
        self._modules = modules_by_name
        self._locals = local_names
        self._globals_declared: set[str] = set()

    # -- helpers -------------------------------------------------------
    def _record_call(self, qualnames: list[str], text: str) -> None:
        if qualnames:
            for qualname in qualnames:
                if qualname not in self._info.calls:
                    self._info.calls.append(qualname)
        elif text not in self._info.unresolved:
            self._info.unresolved.append(text)

    def _resolve_call(self, func: ast.expr) -> tuple[list[str], str]:
        if isinstance(func, ast.Name):
            name = func.id
            if name in self._locals:
                return [], name  # locally bound callable: opaque
            if name in self._index.functions:
                return [self._index.functions[name]], name
            origin = self._index.imports.get(name)
            if origin is not None:
                if origin in self._graph.functions:
                    return [origin], name
                # ``from module import func`` where module is indexed.
                module, _, attr = origin.rpartition(".")
                target = self._modules.get(module)
                if target is not None and attr in target.functions:
                    return [target.functions[attr]], name
                if target is not None and attr in target.classes:
                    ctor = target.classes[attr].get("__init__")
                    return ([ctor], name) if ctor else ([], name)
            if name in self._index.classes:
                ctor = self._index.classes[name].get("__init__")
                return ([ctor], name) if ctor else ([], name)
            return [], name
        if isinstance(func, ast.Attribute):
            dotted = _dotted_text(func) or func.attr
            root = dotted.split(".", 1)[0]
            if root in ("self", "cls") and self._class is not None:
                own = self._index.classes.get(self._class, {})
                if func.attr in own:
                    return [own[func.attr]], dotted
            origin = self._index.imports.get(root)
            if origin is not None and "." in dotted:
                # module.func(...) through an import alias
                resolved_module = self._modules.get(
                    dotted.replace(root, origin, 1).rsplit(".", 1)[0]
                )
                if resolved_module is not None:
                    attr = dotted.rsplit(".", 1)[1]
                    if attr in resolved_module.functions:
                        return [resolved_module.functions[attr]], dotted
                    if attr in resolved_module.classes:
                        ctor = resolved_module.classes[attr].get("__init__")
                        return ([ctor], dotted) if ctor else ([], dotted)
                return [], dotted
            # Unknown receiver: over-approximate by method name.
            return self._graph.methods_named(func.attr), dotted
        return [], "<computed>"

    # -- visitors ------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are indexed separately

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Global(self, node: ast.Global) -> None:
        self._globals_declared.update(node.names)

    def visit_Call(self, node: ast.Call) -> None:
        qualnames, text = self._resolve_call(node.func)
        self._record_call(qualnames, text)
        # Mutator method on a module-level mutable binding.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self._index.mutable_globals
            and node.func.value.id not in self._locals
        ):
            self._info.mutates_module_state.append(
                (node.func.value.id, node.lineno)
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_store_targets(node.targets, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_targets([node.target], node.lineno)
        self.generic_visit(node)

    def _check_store_targets(self, targets: list[ast.expr], lineno: int) -> None:
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in self._globals_declared
            ):
                self._info.mutates_module_state.append((target.id, lineno))
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if name in self._index.mutable_globals and name not in self._locals:
                    self._info.mutates_module_state.append((name, lineno))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted_text(node)
        if dotted is not None:
            root = dotted.split(".", 1)[0]
            origin = self._index.imports.get(root)
            if origin is not None and root not in self._locals:
                resolved = dotted.replace(root, origin, 1)
                if _rng_reason(resolved):
                    self._info.unseeded_rng.append((resolved, node.lineno))
                    return
        self.generic_visit(node)


def _local_bindings(func: ast.AST) -> set[str]:
    names: set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for group in (
            args.posonlyargs,
            args.args,
            args.kwonlyargs,
            [args.vararg] if args.vararg else [],
            [args.kwarg] if args.kwarg else [],
        ):
            for arg in group:
                names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def build_callgraph(sources: dict[str, str]) -> CallGraph:
    """Index ``{path: source}`` into a :class:`CallGraph`.

    Files that fail to parse are skipped (the per-file rules report the
    syntax error separately).
    """
    graph = CallGraph()
    graph._file_digests = {
        path: _digest(text) for path, text in sorted(sources.items())
    }
    modules: list[_ModuleIndex] = []
    for path in sorted(sources):
        try:
            tree = ast.parse(sources[path], filename=path)
        except SyntaxError:
            continue
        modules.append(_index_module(module_name_for(path), path, tree))
    modules_by_name = {module.name: module for module in modules}

    # Pass 1: register every function so name-based resolution sees
    # the whole project.
    pending: list[tuple[_ModuleIndex, Optional[str], ast.AST, FunctionInfo]] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            class_name = _enclosing_class(module.tree, node)
            qualname = (
                f"{module.name}.{class_name}.{node.name}"
                if class_name
                else f"{module.name}.{node.name}"
            )
            info = FunctionInfo(
                qualname=qualname,
                module=module.name,
                name=node.name,
                path=module.path,
                lineno=node.lineno,
            )
            graph.add(info)
            pending.append((module, class_name, node, info))

    # Pass 2: scan bodies with the complete registry available.
    for module, class_name, node, info in pending:
        scanner = _FunctionScanner(
            info,
            module,
            class_name,
            graph,
            modules_by_name,
            _local_bindings(node),
        )
        for stmt in node.body:  # type: ignore[attr-defined]
            scanner.visit(stmt)
    return graph


def _enclosing_class(tree: ast.Module, target: ast.AST) -> Optional[str]:
    """Name of the class directly containing ``target``, if any."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for member in node.body:
                if member is target:
                    return node.name
                # Methods wrapped by decorators are still direct members.
    return None
