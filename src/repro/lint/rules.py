"""AST rules behind ``python -m repro.lint``.

Four project-specific determinism rules (see CONTRIBUTING.md for the
rationale and examples):

``R1``
    No unseeded randomness (the stdlib :mod:`random` module,
    ``numpy.random``) and no wall-clock reads (``time.time``,
    ``datetime.now``...) anywhere in ``src/repro``.  All stochastic
    draws go through :mod:`repro.sim.random_streams`, which is itself
    exempt.  ``time.perf_counter`` is allowed: it measures host
    duration, never feeds simulation state.
``R2``
    No iteration over ``set``/``frozenset`` values (or direct
    ``dict.keys()`` iteration) in the determinism-critical modules
    ``sim/``, ``core/``, ``signaling/`` and
    ``experiments/parallel.py``.  Sets may be
    used for membership tests and order-insensitive reductions
    (``len``, ``sorted``, ``min``...), never as an iteration source.
``R3``
    All link-bandwidth mutation goes through the
    ``Network.reserve_links`` / ``Link.release`` API.  Direct writes
    to :class:`~repro.network.link.LinkStateArrays` columns
    (``state.reserved[i] = ...``) are only legal inside ``network/``.
``R4``
    No ``==``/``!=`` on simulation timestamps.  Exact float equality
    on times is almost always a latent tie-break or NaN bug; the few
    intentional sites (same-timestamp batching) carry an inline
    ``# repro-lint: disable=R4``.

Detection is deliberately syntactic: the rules over-approximate
(a variable merely *named* like a timestamp triggers R4) and every
rule can be silenced on one line with ``# repro-lint: disable=RX``.
False positives cost a comment; false negatives cost a broken
determinism contract.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import PurePath
from typing import Iterator, Optional, Union

__all__ = [
    "ALL_RULES",
    "Violation",
    "check_source",
    "rules_for_path",
    "suppressions_by_line",
]

#: Rule code -> one-line description (shown by ``--list-rules``).
#: R1-R4 are per-file AST rules implemented here; R5-R7 are the
#: flow-sensitive rules of :mod:`repro.lint.flowrules`, built on the
#: CFG/dataflow engine.
ALL_RULES: dict[str, str] = {
    "R1": "unseeded randomness or wall-clock time; use sim.random_streams",
    "R2": "iteration over an unordered set in a determinism-critical module",
    "R3": "direct LinkStateArrays column write outside network/",
    "R4": "==/!= comparison on simulation timestamps",
    "R5": "reservation acquired on some path without release/lease hand-off",
    "R6": "signaling-handler discipline: injected streams, Link API, "
    "monotone relative delays",
    "R7": "impure callable (module state / unseeded rng) crosses the "
    "multiprocessing pool boundary",
}


@dataclass(frozen=True)
class Violation:
    """One rule breach at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# ---------------------------------------------------------------------------
# suppressions and scoping
# ---------------------------------------------------------------------------
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")


def suppressions_by_line(source: str) -> dict[int, set[str]]:
    """Map line number -> rule codes disabled on that line."""
    suppressed: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            suppressed[lineno] = {
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            }
    return suppressed


def rules_for_path(path: Union[str, PurePath]) -> set[str]:
    """The rule codes that apply to ``path``.

    Files inside a ``repro`` package get the scoped rule set from the
    module docstring; files outside any ``repro`` package (test
    fixtures, scratch scripts) get every rule.
    """
    parts = PurePath(path).parts
    if "repro" not in parts:
        return set(ALL_RULES)
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    relative = parts[anchor + 1 :]
    rules = {"R1", "R3", "R4"}
    if relative:
        if relative[0] in ("sim", "core", "signaling") or relative == (
            "experiments",
            "parallel.py",
        ):
            rules.add("R2")
        if relative[0] == "network":
            rules.discard("R3")
        # Flow-sensitive rules, scoped to the modules whose invariants
        # they encode (see repro.lint.flowrules).
        if relative[0] in ("network", "signaling") or relative == (
            "core",
            "admission.py",
        ):
            rules.add("R5")
        if relative in (("signaling", "rsvp.py"), ("signaling", "channel.py")):
            rules.add("R6")
        if relative == ("experiments", "parallel.py"):
            rules.add("R7")
    if relative == ("sim", "random_streams.py"):
        rules.discard("R1")
    return rules


# ---------------------------------------------------------------------------
# R1: unseeded randomness and wall clock
# ---------------------------------------------------------------------------
#: Wall-clock reads by fully-qualified dotted name.  perf_counter and
#: process_time are intentionally absent: they measure host durations
#: for benchmarking and never feed simulation state.
_WALL_CLOCK = frozenset(
    {"time." + name for name in (
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
    )}
    | {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _r1_reason(full_name: str) -> Optional[str]:
    if full_name == "random" or full_name.startswith("random."):
        return "unseeded stdlib randomness"
    if full_name == "numpy.random" or full_name.startswith("numpy.random."):
        return "unseeded numpy randomness"
    if full_name in _WALL_CLOCK:
        return "wall-clock read"
    return None


def _import_aliases(tree: ast.AST) -> dict[str, str]:
    """Bound name -> fully dotted origin, for every import in the file."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
                else:
                    root = item.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports are repro-internal
            for item in node.names:
                bound = item.asname or item.name
                aliases[bound] = f"{node.module}.{item.name}"
    return aliases


def _dotted_name(
    node: ast.expr, aliases: dict[str, str]
) -> Optional[str]:
    """Resolve an attribute chain to its imported dotted origin.

    Returns ``None`` when the chain is not rooted in an imported name,
    so locals that shadow module names (``time = float(time)``) never
    resolve.
    """
    trail: list[str] = []
    while isinstance(node, ast.Attribute):
        trail.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or node.id not in aliases:
        return None
    trail.append(aliases[node.id])
    return ".".join(reversed(trail))


class _R1Visitor(ast.NodeVisitor):
    def __init__(self, aliases: dict[str, str], sink: list[Violation], path: str):
        self._aliases = aliases
        self._sink = sink
        self._path = path

    def _flag(self, node: ast.AST, reason: str, name: str) -> None:
        self._sink.append(
            Violation(
                self._path,
                node.lineno,
                node.col_offset,
                "R1",
                f"{reason} ({name}); draw from sim.random_streams instead",
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for item in node.names:
            reason = _r1_reason(item.name)
            if reason is not None:
                self._flag(node, reason, item.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        for item in node.names:
            reason = _r1_reason(f"{node.module}.{item.name}")
            if reason is not None:
                self._flag(node, reason, f"{node.module}.{item.name}")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        full = _dotted_name(node, self._aliases)
        if full is not None:
            reason = _r1_reason(full)
            if reason is not None:
                self._flag(node, reason, full)
                return  # the whole chain is one finding
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self._aliases:
            full = self._aliases[node.id]
            # Only from-imports resolve a bare name to a banned dotted
            # target (``from time import time``); plain module aliases
            # are caught at the attribute chain or the import itself.
            if "." in full:
                reason = _r1_reason(full)
                if reason is not None:
                    self._flag(node, reason, full)


# ---------------------------------------------------------------------------
# R2: set iteration
# ---------------------------------------------------------------------------
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
#: Consumers whose output order follows the input's iteration order.
_ORDER_SENSITIVE = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})


class _R2Visitor(ast.NodeVisitor):
    """Flags iteration over syntactically set-typed expressions.

    Set-ness is inferred per scope from literals, ``set()`` /
    ``frozenset()`` calls, set operators and simple assignments.
    Order-insensitive consumers (``sorted``, ``len``, ``min``,
    membership tests...) are untouched.
    """

    def __init__(self, sink: list[Violation], path: str):
        self._sink = sink
        self._path = path
        self._scopes: list[dict[str, bool]] = [{}]

    def _flag(self, node: ast.AST, message: str) -> None:
        self._sink.append(
            Violation(self._path, node.lineno, node.col_offset, "R2", message)
        )

    # -- set-type inference -------------------------------------------------
    def _lookup(self, name: str) -> bool:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return False

    def _is_set(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self._is_set(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set(node.left) or self._is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self._is_set(node.body) or self._is_set(node.orelse)
        return False

    @staticmethod
    def _is_keys_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
            and not node.keywords
        )

    # -- scope and assignment tracking --------------------------------------
    def _enter_scope(self, node: ast.AST) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _enter_scope
    visit_AsyncFunctionDef = _enter_scope
    visit_ClassDef = _enter_scope
    visit_Lambda = _enter_scope

    def _bind(self, target: ast.expr, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            self._scopes[-1][target.id] = is_set
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, False)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        is_set = self._is_set(node.value)
        for target in node.targets:
            self._bind(target, is_set)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        annotation = node.annotation
        annotated_set = False
        if isinstance(annotation, ast.Name):
            annotated_set = annotation.id in ("set", "frozenset")
        elif isinstance(annotation, ast.Subscript) and isinstance(
            annotation.value, ast.Name
        ):
            annotated_set = annotation.value.id in ("set", "frozenset")
        self._bind(node.target, annotated_set or self._is_set(node.value))

    # -- iteration contexts --------------------------------------------------
    def _check_iterable(self, node: ast.expr) -> None:
        if self._is_set(node):
            self._flag(
                node,
                "iterating a set; sort it (or use an ordered container) "
                "to fix the traversal order",
            )
        elif self._is_keys_call(node):
            self._flag(
                node,
                "iterating dict.keys(); iterate the mapping itself so the "
                "ordering contract is explicit",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self._bind(node.target, False)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in node.generators:  # type: ignore[attr-defined]
            self._check_iterable(generator.iter)
            self._bind(generator.target, False)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and node.args:
            if func.id in _ORDER_SENSITIVE and self._is_set(node.args[0]):
                self._flag(
                    node,
                    f"{func.id}() over a set has nondeterministic order; "
                    "sort first",
                )
            elif func.id == "map" and any(
                self._is_set(arg) for arg in node.args[1:]
            ):
                self._flag(node, "map() over a set has nondeterministic order")
            elif (
                func.id == "filter"
                and len(node.args) > 1
                and self._is_set(node.args[1])
            ):
                self._flag(
                    node, "filter() over a set has nondeterministic order"
                )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and not node.args
            and self._is_set(func.value)
        ):
            self._flag(
                node, "set.pop() removes an arbitrary element; not deterministic"
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R3: direct LinkStateArrays column writes
# ---------------------------------------------------------------------------
_COLUMNS = ("reserved", "capacity")
_MUTATORS = frozenset({"append", "extend", "insert", "pop", "remove", "clear"})


def _column_attr(node: ast.expr) -> Optional[str]:
    """``state.reserved[...]`` / ``x.capacity`` -> the column name."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in _COLUMNS:
        return node.attr
    return None


class _R3Visitor(ast.NodeVisitor):
    def __init__(self, sink: list[Violation], path: str):
        self._sink = sink
        self._path = path

    def _flag(self, node: ast.AST, column: str) -> None:
        self._sink.append(
            Violation(
                self._path,
                node.lineno,
                node.col_offset,
                "R3",
                f"direct write to the {column!r} column; go through "
                "Network.reserve_links / Link.release",
            )
        )

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)
            return
        column = _column_attr(target)
        if column is not None:
            self._flag(target, column)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            column = _column_attr(func.value)
            if column is not None:
                self._flag(node, column)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R4: ==/!= on timestamps
# ---------------------------------------------------------------------------
_TIME_NAMES = frozenset({"time", "now", "timestamp"})


def _is_time_like(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    name = name.lstrip("_")
    return (
        name in _TIME_NAMES
        or name.endswith("_time")
        or name.endswith("_timestamp")
        or name.endswith("_at")
    )


def _is_str_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


class _R4Visitor(ast.NodeVisitor):
    def __init__(self, sink: list[Violation], path: str):
        self._sink = sink
        self._path = path

    def visit_Compare(self, node: ast.Compare) -> None:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if (
                isinstance(op, (ast.Eq, ast.NotEq))
                and (_is_time_like(left) or _is_time_like(right))
                and not _is_str_constant(left)
                and not _is_str_constant(right)
            ):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self._sink.append(
                    Violation(
                        self._path,
                        node.lineno,
                        node.col_offset,
                        "R4",
                        f"{symbol} on a simulation timestamp; exact float "
                        "equality on times hides tie-break and NaN bugs "
                        "(use math.isnan / ordered comparisons)",
                    )
                )
            left = right
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def check_source(
    source: str,
    path: Union[str, PurePath],
    rules: Optional[set[str]] = None,
) -> list[Violation]:
    """Lint one file's source text; returns surviving violations.

    ``rules`` overrides the path-derived scope (used by the rule
    self-tests).  Suppression comments are applied here, so callers
    always see the post-suppression result.
    """
    path_text = str(path)
    if rules is None:
        rules = rules_for_path(path_text)
    try:
        tree = ast.parse(source, filename=path_text)
    except SyntaxError as error:
        return [
            Violation(
                path_text,
                error.lineno or 1,
                (error.offset or 1) - 1,
                "E999",
                f"syntax error: {error.msg}",
            )
        ]
    found: list[Violation] = []
    if "R1" in rules:
        _R1Visitor(_import_aliases(tree), found, path_text).visit(tree)
    if "R2" in rules:
        _R2Visitor(found, path_text).visit(tree)
    if "R3" in rules:
        _R3Visitor(found, path_text).visit(tree)
    if "R4" in rules:
        _R4Visitor(found, path_text).visit(tree)
    suppressed = suppressions_by_line(source)
    kept = [
        violation
        for violation in found
        if violation.rule not in suppressed.get(violation.line, ())
    ]
    kept.sort(key=lambda violation: (violation.line, violation.col, violation.rule))
    return kept


def iter_violations(
    source: str, path: Union[str, PurePath]
) -> Iterator[Violation]:
    """Convenience iterator over :func:`check_source`."""
    yield from check_source(source, path)
