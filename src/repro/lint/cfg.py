"""Intraprocedural control-flow graphs with exception-edge modeling.

The flow-sensitive rules (R5-R7, :mod:`repro.lint.flowrules`) need to
reason about *paths* through a function — including the paths the test
suite never executes: the ``raise`` branch of a rollback, the early
return inside a retry loop, the ``finally`` that runs on both the
normal and the exceptional way out.  This module builds that graph
from the AST.

Design
------
* **One statement per block.**  Every block anchors at most one
  ``ast.stmt``; synthetic blocks (entry, exit, joins) anchor none.
  Statement granularity keeps the dataflow transfer functions trivial
  and makes "the exception edge carries the pre-state" exact.
* **Two exits.**  ``exit`` collects normal completions (``return`` and
  fall-through, distinguished by edge kind); ``raise_exit`` collects
  exceptions that escape the function.  A leak that only exists on an
  exception path shows up as reachability of ``raise_exit`` with bad
  state.
* **Exception edges are selective.**  A statement gets an edge to the
  active exception target only when it plausibly raises: it contains a
  ``raise``/``assert`` or a call to something outside the small
  known-non-raising set (:data:`NON_RAISING_CALLS`).  Giving *every*
  statement an exception edge would drown the reservation analysis in
  impossible paths through ``x = 0``-style statements.
* **``finally`` bodies are duplicated per continuation.**  A
  ``try/finally`` routes each way out of the try (normal completion,
  escaping exception, ``return``, ``break``, ``continue``) through its
  own copy of the finally body, so the dataflow never merges the
  post-finally state of a returning path into a fall-through path.
  Finally bodies in this codebase are tiny; the duplication is cheap
  and buys path precision.
* **Handler matching is over-approximated.**  A raising statement gets
  an edge to *every* handler of the enclosing ``try`` and — unless some
  handler is catch-all (bare ``except``, ``except Exception`` /
  ``BaseException``) — an edge onward to the outer target too.

``with`` bodies are modeled as plain sequences whose exceptions
propagate (context managers that *suppress* exceptions are not
modeled; none of the analyzed code relies on suppression).
"""

from __future__ import annotations

import ast
from typing import Optional, Union

__all__ = [
    "CFG",
    "Block",
    "Edge",
    "EXCEPTION",
    "FALLTHROUGH",
    "NORMAL",
    "RETURN",
    "NON_RAISING_CALLS",
    "build_cfg",
    "statement_can_raise",
]

# Edge kinds.  The dataflow engine only distinguishes EXCEPTION (which
# carries the pre-state of the source statement) from everything else;
# the rest are kept distinct for reporting and tests.
NORMAL = "normal"
TRUE = "true"
FALSE = "false"
LOOP = "loop"
EXCEPTION = "exception"
RETURN = "return"
FALLTHROUGH = "fallthrough"
BREAK = "break"
CONTINUE = "continue"

#: Call targets (by terminal name) assumed never to raise in practice.
#: Deliberately small: container/builtin plumbing plus the two
#: bookkeeping calls of the reservation protocol whose failure modes
#: are not leak-relevant.  Everything else gets an exception edge.
NON_RAISING_CALLS = frozenset(
    {
        "append",
        "extend",
        "add",
        "discard",
        "clear",
        "items",
        "values",
        "get",
        "keys",
        "len",
        "abs",
        "bool",
        "float",
        "int",
        "str",
        "repr",
        "format",
        "isinstance",
        "hasattr",
        "range",
        "zip",
        "enumerate",
        "print",
        "id",
        "holds",
        # Lease bookkeeping: `leases.register(key, link)` is itself the
        # leak *mitigation*; modeling a raise inside it would flag
        # every registration site.
        "register",
        "drop_link",
        "refresh",
        "cancel",
    }
)

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class Edge:
    """A directed control-flow edge with a kind label."""

    __slots__ = ("target", "kind")

    def __init__(self, target: "Block", kind: str) -> None:
        self.target = target
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Edge(->{self.target.id}, {self.kind})"


class Block:
    """A CFG node anchoring at most one statement."""

    __slots__ = ("id", "stmt", "label", "succ", "loop_depth")

    def __init__(
        self,
        block_id: int,
        stmt: Optional[ast.stmt] = None,
        label: str = "",
        loop_depth: int = 0,
    ) -> None:
        self.id = block_id
        self.stmt = stmt
        self.label = label
        self.succ: list[Edge] = []
        self.loop_depth = loop_depth

    def edge_to(self, target: "Block", kind: str = NORMAL) -> None:
        """Append an edge, skipping exact duplicates."""
        for edge in self.succ:
            if edge.target is target and edge.kind == kind:
                return
        self.succ.append(Edge(target, kind))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = ast.dump(self.stmt)[:30] if self.stmt is not None else self.label
        return f"Block({self.id}, {what})"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, name: str, lineno: int) -> None:
        self.name = name
        self.lineno = lineno
        self.blocks: list[Block] = []
        self.entry = self.new_block(label="entry")
        self.exit = self.new_block(label="exit")
        self.raise_exit = self.new_block(label="raise_exit")

    def new_block(
        self, stmt: Optional[ast.stmt] = None, label: str = "", loop_depth: int = 0
    ) -> Block:
        """Allocate a block registered with this graph."""
        block = Block(len(self.blocks), stmt, label, loop_depth)
        self.blocks.append(block)
        return block

    def statement_blocks(self) -> list[Block]:
        """Blocks anchoring a real statement, in allocation order."""
        return [block for block in self.blocks if block.stmt is not None]


def _call_may_raise(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr not in NON_RAISING_CALLS
    if isinstance(func, ast.Name):
        return func.id not in NON_RAISING_CALLS
    return True  # computed callee: assume it can raise


def statement_can_raise(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` gets an edge to the active exception target.

    ``raise`` and ``assert`` always can; otherwise the statement can
    raise iff it contains a call to something outside
    :data:`NON_RAISING_CALLS`.  Nested function bodies do not count —
    defining a closure raises nothing.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A def/lambda *statement* only binds the function object;
            # its body runs later.  ast.walk has no pruning, so this
            # coarse check skips whole nested defs when the nested def
            # IS the statement; for calls nested deeper we accept the
            # over-approximation.
            if node is stmt or getattr(stmt, "value", None) is node:
                return False
        if isinstance(node, ast.Call) and _call_may_raise(node):
            return True
    return False


class _Builder:
    """Recursive-descent CFG construction with continuation stacks."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        # Where an escaping exception goes (innermost first).
        self.raise_target: Block = cfg.raise_exit
        # Where `return` goes (intercepted by try/finally).
        self.return_target: Block = cfg.exit
        # (continue_target, break_target) per enclosing loop.
        self.loop_stack: list[tuple[Block, Block]] = []
        self.loop_depth = 0

    # -- plumbing ------------------------------------------------------
    def _block(self, stmt: Optional[ast.stmt] = None, label: str = "") -> Block:
        return self.cfg.new_block(stmt, label, loop_depth=self.loop_depth)

    def _add_raise_edge(self, block: Block) -> None:
        block.edge_to(self.raise_target, EXCEPTION)

    # -- statement sequencing ------------------------------------------
    def build_body(self, stmts: list[ast.stmt], current: Block) -> Optional[Block]:
        """Wire ``stmts`` starting after ``current``.

        Returns the block control falls out of, or ``None`` when every
        path diverts (returns, raises, breaks...).
        """
        cursor: Optional[Block] = current
        for stmt in stmts:
            if cursor is None:
                break  # unreachable code after a diverting statement
            cursor = self.build_stmt(stmt, cursor)
        return cursor

    def build_stmt(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        handler = getattr(self, f"_build_{type(stmt).__name__}", None)
        if handler is not None:
            result: Optional[Block] = handler(stmt, current)
            return result
        return self._build_simple(stmt, current)

    # -- simple statements ---------------------------------------------
    def _build_simple(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        block = self._block(stmt)
        current.edge_to(block)
        if statement_can_raise(stmt):
            self._add_raise_edge(block)
        return block

    def _build_Return(self, stmt: ast.Return, current: Block) -> Optional[Block]:
        block = self._block(stmt)
        current.edge_to(block)
        if stmt.value is not None and statement_can_raise(stmt):
            self._add_raise_edge(block)
        block.edge_to(self.return_target, RETURN)
        return None

    def _build_Raise(self, stmt: ast.Raise, current: Block) -> Optional[Block]:
        block = self._block(stmt)
        current.edge_to(block)
        block.edge_to(self.raise_target, EXCEPTION)
        return None

    def _build_Break(self, stmt: ast.Break, current: Block) -> Optional[Block]:
        block = self._block(stmt)
        current.edge_to(block)
        if self.loop_stack:
            block.edge_to(self.loop_stack[-1][1], BREAK)
        return None

    def _build_Continue(self, stmt: ast.Continue, current: Block) -> Optional[Block]:
        block = self._block(stmt)
        current.edge_to(block)
        if self.loop_stack:
            block.edge_to(self.loop_stack[-1][0], CONTINUE)
        return None

    def _build_Assert(self, stmt: ast.Assert, current: Block) -> Optional[Block]:
        block = self._block(stmt)
        current.edge_to(block)
        self._add_raise_edge(block)
        return block

    # -- branches ------------------------------------------------------
    def _build_If(self, stmt: ast.If, current: Block) -> Optional[Block]:
        test_block = self._block(stmt, label="if")
        current.edge_to(test_block)
        if statement_can_raise(ast.Expr(value=stmt.test)):
            self._add_raise_edge(test_block)
        after = self._block(label="after-if")
        then_end = self.build_body(stmt.body, test_block)
        if then_end is not None:
            then_end.edge_to(after, TRUE)
        if stmt.orelse:
            else_end = self.build_body(stmt.orelse, test_block)
            if else_end is not None:
                else_end.edge_to(after, FALSE)
        else:
            test_block.edge_to(after, FALSE)
        # Mark branch entries with distinct kinds for readability.
        self._relabel_branch_edges(test_block, stmt)
        if not after.succ and not self._has_preds(after):
            return None
        return after

    def _relabel_branch_edges(self, test_block: Block, stmt: ast.If) -> None:
        body_first = {id(s) for s in stmt.body[:1]}
        else_first = {id(s) for s in stmt.orelse[:1]}
        for edge in test_block.succ:
            anchor = edge.target.stmt
            if anchor is not None and edge.kind == NORMAL:
                if id(anchor) in body_first:
                    edge.kind = TRUE
                elif id(anchor) in else_first:
                    edge.kind = FALSE

    def _has_preds(self, target: Block) -> bool:
        return any(
            edge.target is target
            for block in self.cfg.blocks
            for edge in block.succ
        )

    # -- loops ---------------------------------------------------------
    def _build_loop(
        self, stmt: Union[ast.For, ast.While, ast.AsyncFor], current: Block
    ) -> Optional[Block]:
        header = self._block(stmt, label="loop-header")
        current.edge_to(header)
        if statement_can_raise(stmt_header_probe(stmt)):
            self._add_raise_edge(header)
        after = self._block(label="after-loop")
        self.loop_stack.append((header, after))
        self.loop_depth += 1
        body_end = self.build_body(stmt.body, header)
        self.loop_depth -= 1
        self.loop_stack.pop()
        if body_end is not None:
            body_end.edge_to(header, LOOP)
        if stmt.orelse:
            else_end = self.build_body(stmt.orelse, header)
            if else_end is not None:
                else_end.edge_to(after, FALSE)
        else:
            header.edge_to(after, FALSE)
        return after

    _build_For = _build_loop
    _build_AsyncFor = _build_loop
    _build_While = _build_loop

    # -- with ----------------------------------------------------------
    def _build_With(
        self, stmt: Union[ast.With, ast.AsyncWith], current: Block
    ) -> Optional[Block]:
        enter = self._block(stmt, label="with")
        current.edge_to(enter)
        self._add_raise_edge(enter)  # the context expression may raise
        return self.build_body(stmt.body, enter)

    _build_AsyncWith = _build_With

    # -- try/except/else/finally ---------------------------------------
    def _build_Try(self, stmt: ast.Try, current: Block) -> Optional[Block]:
        outer_raise = self.raise_target
        outer_return = self.return_target
        outer_loop = self.loop_stack[-1] if self.loop_stack else None

        after = self._block(label="after-try")

        def finally_copy(continuation: Block, kind: str) -> Block:
            """A fresh copy of the finally body flowing to ``continuation``."""
            if not stmt.finalbody:
                return continuation
            entry = self._block(label=f"finally-{kind}")
            end = self.build_body(stmt.finalbody, entry)
            if end is not None:
                # Completing the finally body is *normal* execution even
                # on the exceptional copy (the re-raise happens after),
                # so the edge must carry the post-state, not the
                # exception pre-state — hence never kind EXCEPTION here.
                end.edge_to(continuation, NORMAL if kind == EXCEPTION else kind)
            return entry

        # Continuations as seen from inside the try body: every way out
        # is routed through its own finally copy.
        raise_cont = finally_copy(outer_raise, EXCEPTION)
        return_cont = finally_copy(outer_return, RETURN)
        if outer_loop is not None and stmt.finalbody:
            loop_cont = (
                finally_copy(outer_loop[0], CONTINUE),
                finally_copy(outer_loop[1], BREAK),
            )
        else:
            loop_cont = outer_loop
        normal_cont = finally_copy(after, NORMAL)

        # Handler entry dispatch: raising statements in the try body
        # route here, then into every handler (match is static-unknown)
        # and — without a catch-all — onward through finally to outer.
        handler_entries: list[Block] = []
        catch_all = False
        for handler in stmt.handlers:
            if handler.type is None or _is_catch_all(handler.type):
                catch_all = True

        if stmt.handlers:
            dispatch = self._block(label="except-dispatch")
        else:
            dispatch = raise_cont

        # Body of the try: exceptions go to the dispatch point.
        self.raise_target = dispatch
        self.return_target = return_cont if stmt.finalbody else outer_return
        if loop_cont is not None and stmt.finalbody:
            self.loop_stack.append(loop_cont)
        body_end = self.build_body(stmt.body, current)
        if loop_cont is not None and stmt.finalbody:
            self.loop_stack.pop()
        self.raise_target = outer_raise
        self.return_target = outer_return

        # else clause runs after normal body completion, with ordinary
        # (outer) exception routing but finally interception kept.
        if body_end is not None:
            tail: Optional[Block] = body_end
            if stmt.orelse:
                self.raise_target = raise_cont
                self.return_target = return_cont if stmt.finalbody else outer_return
                tail = self.build_body(stmt.orelse, body_end)
                self.raise_target = outer_raise
                self.return_target = outer_return
            if tail is not None:
                tail.edge_to(normal_cont)

        # Handlers: exceptions inside a handler escape through finally.
        if stmt.handlers:
            for handler in stmt.handlers:
                entry = self._block(label="except")
                handler_entries.append(entry)
                dispatch.edge_to(entry, EXCEPTION)
                self.raise_target = raise_cont
                self.return_target = return_cont if stmt.finalbody else outer_return
                if loop_cont is not None and stmt.finalbody:
                    self.loop_stack.append(loop_cont)
                handler_end = self.build_body(handler.body, entry)
                if loop_cont is not None and stmt.finalbody:
                    self.loop_stack.pop()
                self.raise_target = outer_raise
                self.return_target = outer_return
                if handler_end is not None:
                    handler_end.edge_to(normal_cont)
            if not catch_all:
                dispatch.edge_to(raise_cont, EXCEPTION)

        if not self._has_preds(after):
            return None
        return after


def _is_catch_all(annotation: ast.expr) -> bool:
    names = set()
    if isinstance(annotation, ast.Tuple):
        items = annotation.elts
    else:
        items = [annotation]
    for item in items:
        if isinstance(item, ast.Name):
            names.add(item.id)
        elif isinstance(item, ast.Attribute):
            names.add(item.attr)
    return bool(names & {"Exception", "BaseException"})


def stmt_header_probe(stmt: Union[ast.For, ast.While, ast.AsyncFor]) -> ast.stmt:
    """The header expression of a loop, wrapped for can-raise probing."""
    if isinstance(stmt, ast.While):
        return ast.Expr(value=stmt.test)
    return ast.Expr(value=stmt.iter)


def build_cfg(func: FuncDef) -> CFG:
    """Build the CFG of one function definition."""
    cfg = CFG(func.name, func.lineno)
    builder = _Builder(cfg)
    end = builder.build_body(func.body, cfg.entry)
    if end is not None:
        end.edge_to(cfg.exit, FALLTHROUGH)
    return cfg


def iter_function_defs(tree: ast.AST) -> list[FuncDef]:
    """Every function/method definition in ``tree``, outermost first.

    Nested definitions are returned as their own entries (they get
    their own CFGs); the enclosing function's CFG treats the nested
    ``def`` as one non-raising statement.
    """
    found: list[FuncDef] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append(node)
    found.sort(key=lambda node: (node.lineno, node.col_offset))
    return found
