"""Flow-sensitive rules R5-R7 on top of the CFG/dataflow engine.

``R5`` — reservation pairing.  An abstract-interpretation pass over
each function in ``network/``, ``signaling/`` and
``core/admission.py``: every ``X.reserve(...)`` /
``X.reserve_links(...)`` / ``X.reserve_path(...)`` call site mints an
abstract reservation token keyed by the receiver expression.  The
token dies when the same receiver is released
(``release``/``release_path``/``release_links``/``release_if_held``),
or when the receiver *escapes* — passed to another call (lease
registration, list append), stored into a structure, captured by a
closure, returned.  Any token still live at the function's normal exit
(unless the function is itself an acquisition primitive, name
containing ``reserve``/``acquire``) or at its exceptional exit is a
leak candidate.  Exception edges commit kills but not acquires, so
"``reserve`` raised → nothing held" and "``release`` raised (KeyError:
was not held) → token dead either way" are both exact.  A companion
check (same code, R5) flags *fragile sweeps*:
a strict ``X.release(...)`` inside a loop whose exception can escape
the function — one missing leg (fault, lease GC) raises ``KeyError``
mid-sweep and strands every remaining reservation.  A release guarded
by the same receiver's ``.holds(...)`` test is exempt.

``R6`` — signaling-handler discipline, for ``signaling/rsvp.py`` and
``signaling/channel.py``: (a) no minting of randomness sources
(``StreamFactory``/``.stream()``/``Random``/``default_rng``) — named
streams are injected, never created, inside the signaling plane;
(b) no direct access to ``LinkStateArrays`` columns (``.reserved`` /
``.capacity``) — the Link API is the only sanctioned window onto
bandwidth state; (c) no ``schedule_at`` (absolute timestamps cannot be
proven monotone) and no ``schedule`` whose delay argument
constant-propagates to a negative number — the latter runs a genuine
dataflow analysis (:class:`_ConstEnvAnalysis`) over the CFG.

``R7`` — pool purity, for ``experiments/parallel.py``: every callable
crossing a multiprocessing boundary (``pool.map`` et al.) is resolved
through the project :class:`~repro.lint.callgraph.CallGraph`; every
function reachable from it must neither mutate module-level mutable
state nor draw unseeded randomness, otherwise results depend on the
worker-process schedule.  Lambdas cannot cross at all.

All three report through the ordinary :class:`~repro.lint.rules.Violation`
channel, honor ``# repro-lint: disable=RX`` suppressions, and run from
``lint_file``/``lint_paths`` next to R1-R4.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterable, Optional, Union

from repro.lint import cfg as _cfg
from repro.lint.callgraph import CallGraph, build_callgraph, module_name_for
from repro.lint.dataflow import ForwardAnalysis, run_forward
from repro.lint.rules import Violation, rules_for_path, suppressions_by_line

__all__ = ["FLOW_RULES", "check_flow_source"]

#: The rule codes implemented by this module.
FLOW_RULES = frozenset({"R5", "R6", "R7"})

_ACQUIRE_ATTRS = frozenset({"reserve", "reserve_links", "reserve_path"})
_RELEASE_ATTRS = frozenset(
    {"release", "release_links", "release_path", "release_if_held"}
)
#: Methods that ship a callable to another process.
_POOL_METHODS = frozenset(
    {
        "map",
        "imap",
        "imap_unordered",
        "starmap",
        "apply",
        "apply_async",
        "map_async",
        "starmap_async",
        "submit",
    }
)
_STREAM_MINTERS = frozenset(
    {"StreamFactory", "Random", "RandomState", "default_rng", "SeedSequence"}
)
_COLUMN_ATTRS = frozenset({"reserved", "capacity"})
#: The one module allowed to construct randomness (R7 fact exemption).
_RNG_AUTHORITY_PREFIX = "repro.sim.random_streams."

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _walk_pruned(root: ast.AST) -> Iterable[ast.AST]:
    """Walk ``root`` without descending into nested function/class scopes."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _NESTED_SCOPES):
                continue
            stack.append(child)


def _scan_roots(stmt: ast.stmt) -> list[ast.AST]:
    """The parts of ``stmt`` executed *at* its CFG block.

    Compound statements anchor their whole AST node in one block while
    their bodies live in other blocks; scanning the full node would
    double-count every nested call.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, _NESTED_SCOPES):
        return []
    return [stmt]


def _binding_names(stmt: ast.stmt) -> set[str]:
    """Names (re)bound by ``stmt`` itself (not by its nested body)."""
    names: set[str] = set()
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [
            item.optional_vars for item in stmt.items if item.optional_vars
        ]
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


# ---------------------------------------------------------------------------
# R5: reservation pairing
# ---------------------------------------------------------------------------
#: token = (receiver source text, acquire line, acquire col)
_Token = tuple[str, int, int]


class _StmtFacts:
    """What one statement does to the abstract reservation state."""

    __slots__ = ("acquires", "kills", "escapes", "rebinds")

    def __init__(self) -> None:
        self.acquires: list[_Token] = []
        self.kills: set[str] = set()
        self.escapes: set[str] = set()
        self.rebinds: set[str] = set()


def _is_cps_acquire(call: ast.Call) -> bool:
    """Reserve calls taking a completion callback delegate ownership."""
    args = list(call.args) + [kw.value for kw in call.keywords]
    return any(isinstance(arg, ast.Lambda) for arg in args)


def _collect_stmt_facts(stmt: ast.stmt) -> _StmtFacts:
    facts = _StmtFacts()
    facts.rebinds |= _binding_names(stmt)
    for root in _scan_roots(stmt):
        for node in _walk_pruned(root):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    receiver = ast.unparse(func.value)
                    if node_attr_in(func, _ACQUIRE_ATTRS) and not _is_cps_acquire(
                        node
                    ):
                        facts.acquires.append(
                            (receiver, node.lineno, node.col_offset)
                        )
                    elif node_attr_in(func, _RELEASE_ATTRS):
                        facts.kills.add(receiver)
                # Any receiver handed to another call escapes: the
                # callee (lease table, rollback list...) now co-owns
                # the reservation's lifecycle.
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    inner = arg.value if isinstance(arg, ast.Starred) else arg
                    if isinstance(inner, (ast.Name, ast.Attribute)):
                        facts.escapes.add(ast.unparse(inner))
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None:
                    for sub in ast.walk(value):
                        if isinstance(sub, (ast.Name, ast.Attribute)):
                            facts.escapes.add(ast.unparse(sub))
            elif isinstance(node, ast.Assign):
                # Storing a receiver into an attribute/subscript
                # publishes it; the structure's owner releases later.
                if any(
                    not isinstance(target, ast.Name) for target in node.targets
                ):
                    for sub in ast.walk(node.value):
                        if isinstance(sub, (ast.Name, ast.Attribute)):
                            facts.escapes.add(ast.unparse(sub))
            elif isinstance(node, _NESTED_SCOPES):
                # A closure capturing the receiver escapes it.
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Load
                    ):
                        facts.escapes.add(sub.id)
    return facts


def node_attr_in(func: ast.Attribute, names: frozenset[str]) -> bool:
    return func.attr in names


class _ReservationAnalysis(ForwardAnalysis):
    """Forward may-hold analysis over reservation tokens."""

    def __init__(self) -> None:
        self._facts: dict[int, _StmtFacts] = {}

    def facts_for(self, block: _cfg.Block) -> _StmtFacts:
        cached = self._facts.get(block.id)
        if cached is None:
            assert block.stmt is not None
            cached = _collect_stmt_facts(block.stmt)
            self._facts[block.id] = cached
        return cached

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def transfer(self, block: _cfg.Block, state: frozenset) -> frozenset:
        facts = self.facts_for(block)
        dead = facts.kills | facts.escapes | facts.rebinds
        survivors = {token for token in state if token[0] not in dead}
        survivors.update(facts.acquires)
        return frozenset(survivors)

    def transfer_exception(self, block: _cfg.Block, state: frozenset) -> frozenset:
        # An exception commits kills but not acquires: `reserve`
        # raising means nothing was acquired, while `release` raising
        # (KeyError: not held) means the token is dead either way —
        # otherwise the canonical try/finally release pattern would
        # itself be flagged.  Escapes/rebinds are *not* applied: the
        # raise may precede them.
        facts = self.facts_for(block)
        return frozenset(
            token for token in state if token[0] not in facts.kills
        )


def _exempt_at_normal_exit(name: str) -> bool:
    lowered = name.lower()
    return "reserve" in lowered or "acquire" in lowered


def _exception_escapes(block: _cfg.Block, graph: _cfg.CFG) -> bool:
    """Whether an exception raised at ``block`` can leave the function.

    Follows the exception edge through ``except-dispatch`` chains; a
    path into a ``finally-exception`` copy re-raises at its end, a path
    into a handler body is treated as caught.
    """
    for edge in block.succ:
        if edge.kind != _cfg.EXCEPTION:
            continue
        stack = [edge.target]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node is graph.raise_exit:
                return True
            if node.id in seen:
                continue
            seen.add(node.id)
            if node.label.startswith("finally-exception"):
                return True
            if node.label == "except-dispatch":
                stack.extend(
                    out.target
                    for out in node.succ
                    if out.kind == _cfg.EXCEPTION and out.target.label != "except"
                )
    return False


class _GuardIndex(ast.NodeVisitor):
    """Which ``.release()`` calls sit under a matching ``.holds()`` guard."""

    def __init__(self) -> None:
        self.guarded: set[int] = set()
        self._active: list[str] = []

    def visit_If(self, node: ast.If) -> None:
        test = node.test
        guard: Optional[str] = None
        if (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Attribute)
            and test.func.attr == "holds"
        ):
            guard = ast.unparse(test.func.value)
        if guard is not None:
            self._active.append(guard)
        for stmt in node.body:
            self.visit(stmt)
        if guard is not None:
            self._active.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
            and ast.unparse(node.func.value) in self._active
        ):
            self.guarded.add(id(node))
        self.generic_visit(node)


def _check_r5(tree: ast.Module, path: str, sink: list[Violation]) -> None:
    for func in _cfg.iter_function_defs(tree):
        graph = _cfg.build_cfg(func)
        analysis = _ReservationAnalysis()
        result = run_forward(graph, analysis)

        reported: set[_Token] = set()
        raise_state = result.raise_state or frozenset()
        for token in sorted(raise_state):
            reported.add(token)
            sink.append(
                Violation(
                    path,
                    token[1],
                    token[2],
                    "R5",
                    f"reservation acquired on {token[0]!r} can still be "
                    f"held when {func.name!r} exits on an exception path; "
                    "release it in a finally, register a lease, or hand "
                    "it off before anything after it can raise",
                )
            )
        if not _exempt_at_normal_exit(func.name):
            exit_state = result.exit_state or frozenset()
            for token in sorted(exit_state):
                if token in reported:
                    continue
                sink.append(
                    Violation(
                        path,
                        token[1],
                        token[2],
                        "R5",
                        f"reservation acquired on {token[0]!r} is still "
                        f"held when {func.name!r} returns, with no "
                        "release, lease registration, or hand-off on "
                        "that path",
                    )
                )

        # Fragile sweep: strict release in a loop whose exception
        # escapes — one missing leg strands the rest of the sweep.
        guards = _GuardIndex()
        for stmt in func.body:
            guards.visit(stmt)
        for block in graph.statement_blocks():
            if block.loop_depth < 1:
                continue
            if not _exception_escapes(block, graph):
                continue
            for root in _scan_roots(block.stmt):  # type: ignore[arg-type]
                for node in _walk_pruned(root):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "release"
                        and id(node) not in guards.guarded
                    ):
                        sink.append(
                            Violation(
                                path,
                                node.lineno,
                                node.col_offset,
                                "R5",
                                "strict release inside a sweep loop: a "
                                "KeyError on one missing leg strands every "
                                "remaining reservation; use release_if_held "
                                "or guard with .holds()",
                            )
                        )


# ---------------------------------------------------------------------------
# R6: signaling-handler discipline
# ---------------------------------------------------------------------------
class _ConstEnvAnalysis(ForwardAnalysis):
    """Constant propagation: which locals hold known numbers where.

    State is a frozenset of ``(name, value)`` pairs; join is
    intersection (a name must agree on every incoming path to stay
    known).  Only simple straight-line assignments update the
    environment — everything else just invalidates what it rebinds.
    """

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left & right

    def transfer(self, block: _cfg.Block, state: frozenset) -> frozenset:
        stmt = block.stmt
        assert stmt is not None
        env = dict(state)
        for name in _binding_names(stmt):
            env.pop(name, None)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                value = _const_eval(stmt.value, dict(state))
                if value is not None:
                    env[target.id] = value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                value = _const_eval(stmt.value, dict(state))
                if value is not None:
                    env[stmt.target.id] = value
        elif isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            previous = dict(state).get(stmt.target.id)
            delta = _const_eval(stmt.value, dict(state))
            if previous is not None and delta is not None:
                combined = _apply_binop(stmt.op, previous, delta)
                if combined is not None:
                    env[stmt.target.id] = combined
        return frozenset(env.items())


def _apply_binop(op: ast.operator, left: float, right: float) -> Optional[float]:
    if isinstance(op, ast.Add):
        return left + right
    if isinstance(op, ast.Sub):
        return left - right
    if isinstance(op, ast.Mult):
        return left * right
    if isinstance(op, ast.Div):
        return left / right if right != 0 else None
    return None


def _const_eval(node: ast.expr, env: dict[str, float]) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.UnaryOp):
        inner = _const_eval(node.operand, env)
        if inner is None:
            return None
        if isinstance(node.op, ast.USub):
            return -inner
        if isinstance(node.op, ast.UAdd):
            return inner
        return None
    if isinstance(node, ast.BinOp):
        left = _const_eval(node.left, env)
        right = _const_eval(node.right, env)
        if left is None or right is None:
            return None
        return _apply_binop(node.op, left, right)
    return None


def _callee_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _check_r6(tree: ast.Module, path: str, sink: list[Violation]) -> None:
    # (a) stream minting and (b) column access: syntactic, whole file.
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            callee = _callee_name(node.func)
            if callee in _STREAM_MINTERS or callee == "stream":
                sink.append(
                    Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "R6",
                        f"signaling code mints a randomness source "
                        f"({callee}); named streams are injected by the "
                        "harness, never created in the signaling plane",
                    )
                )
            elif callee == "schedule_at":
                sink.append(
                    Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "R6",
                        "absolute-time scheduling in the signaling plane; "
                        "use relative schedule(delay, ...) so timestamps "
                        "stay monotone by construction",
                    )
                )
        elif isinstance(node, ast.Attribute) and node.attr in _COLUMN_ATTRS:
            sink.append(
                Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "R6",
                    f"direct LinkStateArrays column access (.{node.attr}); "
                    "the signaling plane reads bandwidth only through the "
                    "Link / BandwidthView API",
                )
            )

    # (c) negative constant-derived delays: dataflow per function.
    for func in _cfg.iter_function_defs(tree):
        graph = _cfg.build_cfg(func)
        result = run_forward(graph, _ConstEnvAnalysis())
        for block in graph.statement_blocks():
            state = result.state_at(block)
            if state is None:
                continue
            env = dict(state)
            for root in _scan_roots(block.stmt):  # type: ignore[arg-type]
                for node in _walk_pruned(root):
                    if (
                        isinstance(node, ast.Call)
                        and _callee_name(node.func) == "schedule"
                        and node.args
                    ):
                        delay = _const_eval(node.args[0], env)
                        if delay is not None and delay < 0:
                            sink.append(
                                Violation(
                                    path,
                                    node.lineno,
                                    node.col_offset,
                                    "R6",
                                    f"event scheduled with a constant-"
                                    f"derived negative delay ({delay:g}); "
                                    "simulation time would run backwards",
                                )
                            )


# ---------------------------------------------------------------------------
# R7: pool purity
# ---------------------------------------------------------------------------
def _resolve_boundary_roots(
    target: ast.expr, module: str, graph: CallGraph
) -> list[str]:
    if isinstance(target, ast.Name):
        own = f"{module}.{target.id}"
        if graph.lookup(own) is not None:
            return [own]
        return graph.methods_named(target.id)
    if isinstance(target, ast.Attribute):
        return graph.methods_named(target.attr)
    return []


def _check_r7(
    tree: ast.Module, path: str, graph: CallGraph, sink: list[Violation]
) -> None:
    module = module_name_for(path)
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_METHODS
            and node.args
        ):
            continue
        target = node.args[0]
        if isinstance(target, ast.Lambda):
            sink.append(
                Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "R7",
                    "lambda crosses the multiprocessing boundary; use a "
                    "named module-level function (picklable, auditable)",
                )
            )
            continue
        roots = _resolve_boundary_roots(target, module, graph)
        flagged: set[str] = set()
        for qualname in graph.reachable(roots):
            if qualname in flagged:
                continue
            info = graph.lookup(qualname)
            if info is None or qualname.startswith(_RNG_AUTHORITY_PREFIX):
                continue
            if info.mutates_module_state:
                name, line = info.mutates_module_state[0]
                flagged.add(qualname)
                sink.append(
                    Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "R7",
                        f"{qualname} (reachable across this pool boundary) "
                        f"mutates module-level state {name!r} at "
                        f"{info.path}:{line}; workers must be pure",
                    )
                )
            elif info.unseeded_rng:
                dotted, line = info.unseeded_rng[0]
                flagged.add(qualname)
                sink.append(
                    Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "R7",
                        f"{qualname} (reachable across this pool boundary) "
                        f"draws unseeded randomness ({dotted}) at "
                        f"{info.path}:{line}; workers must be pure",
                    )
                )


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def check_flow_source(
    source: str,
    path: Union[str, PurePath],
    rules: Optional[set[str]] = None,
    graph: Optional[CallGraph] = None,
) -> list[Violation]:
    """Run the flow rules on one file; returns surviving violations.

    ``graph`` is the project call graph for R7; without one, a
    single-file graph is built on the fly (cross-module reachability
    is then invisible — ``lint_paths`` passes the full graph).
    Syntax errors yield no findings here: the per-file pass already
    reports them as E999.
    """
    path_text = str(path)
    if rules is None:
        rules = rules_for_path(path_text)
    active = set(rules) & FLOW_RULES
    if not active:
        return []
    try:
        tree = ast.parse(source, filename=path_text)
    except SyntaxError:
        return []
    found: list[Violation] = []
    if "R5" in active:
        _check_r5(tree, path_text, found)
    if "R6" in active:
        _check_r6(tree, path_text, found)
    if "R7" in active:
        if graph is None:
            graph = build_callgraph({path_text: source})
        _check_r7(tree, path_text, graph, found)
    suppressed = suppressions_by_line(source)
    kept = [
        violation
        for violation in found
        if violation.rule not in suppressed.get(violation.line, ())
    ]
    kept.sort(key=lambda violation: (violation.line, violation.col, violation.rule))
    return kept
