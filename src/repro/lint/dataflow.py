"""A worklist dataflow engine over :mod:`repro.lint.cfg` graphs.

Forward analyses plug in by subclassing :class:`ForwardAnalysis`:
define the initial state, a join, and a per-statement transfer
function; :func:`run_forward` iterates edges to a fixed point with a
deterministic worklist (block-id order, no set iteration) and returns
the state observed at every block entry and at the two exits.

Exception edges are the one piece of built-in semantics: an edge of
kind :data:`repro.lint.cfg.EXCEPTION` out of a statement propagates
:meth:`ForwardAnalysis.transfer_exception` — by default the statement's
*pre*-state, because an exception raised inside a call happens before
the call's effect commits.  That is exactly what makes the reservation
analysis (R5) see "``link.reserve`` raised, so nothing is held" on the
``except`` path (it overrides the hook to also commit releases, whose
failure mode — KeyError, not held — kills the token either way).

States must be hashable-free plain values supporting ``==``; analyses
here use ``frozenset``s.  The engine bounds iteration at
``max_passes * len(blocks)`` edge relaxations as a belt-and-braces
guard against a non-monotone transfer function (it raises rather than
spins).
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

from repro.lint.cfg import CFG, EXCEPTION, Block

__all__ = ["DataflowResult", "ForwardAnalysis", "run_forward"]

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Base class for forward dataflow analyses.

    Subclasses override :meth:`initial`, :meth:`join` and
    :meth:`transfer`; :meth:`transfer_exception` defaults to returning
    the pre-state.
    """

    def initial(self) -> S:
        """State at function entry."""
        raise NotImplementedError

    def join(self, left: S, right: S) -> S:
        """Least upper bound of two states."""
        raise NotImplementedError

    def transfer(self, block: Block, state: S) -> S:
        """State after ``block``'s statement executes normally."""
        raise NotImplementedError

    def transfer_exception(self, block: Block, state: S) -> S:
        """State carried by ``block``'s exception edge (default: pre)."""
        return state


class DataflowResult(Generic[S]):
    """Fixed-point states, queryable per block."""

    def __init__(self, cfg: CFG, states: dict[int, S]) -> None:
        self._cfg = cfg
        self._states = states

    def state_at(self, block: Block) -> Optional[S]:
        """The join of all states reaching ``block`` (None = unreachable)."""
        return self._states.get(block.id)

    @property
    def exit_state(self) -> Optional[S]:
        """State at the normal exit (returns and fall-through)."""
        return self.state_at(self._cfg.exit)

    @property
    def raise_state(self) -> Optional[S]:
        """State at the exceptional exit (escaping exceptions)."""
        return self.state_at(self._cfg.raise_exit)


def run_forward(
    cfg: CFG, analysis: ForwardAnalysis[S], max_passes: int = 64
) -> DataflowResult[S]:
    """Iterate ``analysis`` over ``cfg`` to a fixed point."""
    states: dict[int, S] = {cfg.entry.id: analysis.initial()}
    # Deterministic worklist: a FIFO of block ids with a membership
    # list (not a set — the linter's own determinism rules apply to
    # the linter).
    worklist: list[int] = [cfg.entry.id]
    queued = [False] * len(cfg.blocks)
    queued[cfg.entry.id] = True
    by_id = {block.id: block for block in cfg.blocks}
    budget = max_passes * max(1, len(cfg.blocks)) * max(
        1, sum(len(block.succ) for block in cfg.blocks)
    )
    steps = 0
    while worklist:
        steps += 1
        if steps > budget:
            raise RuntimeError(
                f"dataflow did not converge on {cfg.name!r} "
                f"(non-monotone transfer function?)"
            )
        block = by_id[worklist.pop(0)]
        queued[block.id] = False
        in_state = states[block.id]
        if block.stmt is not None:
            out_normal = analysis.transfer(block, in_state)
            out_exception = analysis.transfer_exception(block, in_state)
        else:
            out_normal = in_state
            out_exception = in_state
        for edge in block.succ:
            carried = out_exception if edge.kind == EXCEPTION else out_normal
            target = edge.target
            previous = states.get(target.id)
            merged = carried if previous is None else analysis.join(previous, carried)
            if previous is None or merged != previous:
                states[target.id] = merged
                if not queued[target.id]:
                    worklist.append(target.id)
                    queued[target.id] = True
    return DataflowResult(cfg, states)
