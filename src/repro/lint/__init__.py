"""Project determinism linter: ``python -m repro.lint [paths...]``.

A small AST-based static-analysis pass enforcing the determinism
contract of this reproduction (rules R1-R4; see
:mod:`repro.lint.rules` and CONTRIBUTING.md).  Zero dependencies
beyond the standard library, so it runs anywhere the package does.

Output is one ``path:line:col: CODE message`` line per finding; the
process exits 0 when the tree is clean and 1 otherwise.  A finding is
silenced for one line with a trailing ``# repro-lint: disable=RX``
comment (comma-separate codes to disable several).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.lint.rules import (
    ALL_RULES,
    Violation,
    check_source,
    rules_for_path,
    suppressions_by_line,
)

__all__ = [
    "ALL_RULES",
    "Violation",
    "check_source",
    "lint_file",
    "lint_paths",
    "main",
    "rules_for_path",
    "suppressions_by_line",
]


def lint_file(
    path: Union[str, Path], source: Optional[str] = None
) -> list[Violation]:
    """Lint one file (reading it unless ``source`` is given)."""
    if source is None:
        source = Path(path).read_text(encoding="utf-8")
    return check_source(source, path)


def _collect_files(paths: Iterable[Union[str, Path]]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(paths: Iterable[Union[str, Path]]) -> list[Violation]:
    """Lint files and directory trees; returns all findings, sorted."""
    violations: list[Violation] = []
    for file_path in _collect_files(paths):
        violations.extend(lint_file(file_path))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism linter for the repro package (rules R1-R4).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule codes and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for code in sorted(ALL_RULES):
            print(f"{code}  {ALL_RULES[code]}")
        return 0
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2
    violations = lint_paths(args.paths)
    for violation in violations:
        print(violation.format())
    if violations:
        print(
            f"repro-lint: {len(violations)} violation"
            f"{'s' if len(violations) != 1 else ''} found",
            file=sys.stderr,
        )
        return 1
    return 0
