"""Project static analysis: ``python -m repro.lint [paths...]``.

Two layers share one driver (see CONTRIBUTING.md):

* rules R1-R4 — per-file AST determinism rules
  (:mod:`repro.lint.rules`);
* rules R5-R7 — flow-sensitive analyses over the CFG/dataflow engine
  (:mod:`repro.lint.flowrules`), with a project-wide call graph
  (:mod:`repro.lint.callgraph`) behind R7.

Findings print as ``path:line:col: CODE message`` (``--format text``,
optionally with ``--show-source`` snippets), as a JSON array
(``--format json``), or as SARIF 2.1.0 (``--format sarif``) for CI
annotation upload.  ``--select``/``--ignore`` narrow the rule set
(both intersect with per-path scoping; an unknown code is a usage
error).  ``--baseline FILE`` hides grandfathered findings recorded
with ``--update-baseline``.  Exit codes: 0 clean, 1 findings, 2 usage
error.  A finding is silenced for one line with a trailing
``# repro-lint: disable=RX`` comment (comma-separate codes).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.lint.callgraph import CallGraph, build_callgraph
from repro.lint.flowrules import FLOW_RULES, check_flow_source
from repro.lint.rules import (
    ALL_RULES,
    Violation,
    check_source,
    rules_for_path,
    suppressions_by_line,
)

__all__ = [
    "ALL_RULES",
    "Violation",
    "check_source",
    "check_flow_source",
    "lint_file",
    "lint_paths",
    "main",
    "rules_for_path",
    "suppressions_by_line",
]


def lint_file(
    path: Union[str, Path],
    source: Optional[str] = None,
    rules: Optional[set[str]] = None,
    graph: Optional[CallGraph] = None,
) -> list[Violation]:
    """Lint one file (reading it unless ``source`` is given)."""
    if source is None:
        source = Path(path).read_text(encoding="utf-8")
    found = check_source(source, path, rules=rules)
    found.extend(check_flow_source(source, path, rules=rules, graph=graph))
    found.sort(key=lambda v: (v.line, v.col, v.rule))
    return found


def _collect_files(paths: Iterable[Union[str, Path]]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _effective_rules(
    path: Union[str, Path],
    select: Optional[set[str]],
    ignore: Optional[set[str]],
) -> set[str]:
    rules = rules_for_path(str(path))
    if select is not None:
        rules &= select
    if ignore is not None:
        rules -= ignore
    return rules


def lint_paths(
    paths: Iterable[Union[str, Path]],
    select: Optional[set[str]] = None,
    ignore: Optional[set[str]] = None,
    callgraph_cache: Optional[Union[str, Path]] = None,
) -> list[Violation]:
    """Lint files and directory trees; returns all findings, sorted.

    ``select``/``ignore`` intersect with per-path rule scoping.  When
    any linted file needs R7, a call graph spanning every collected
    file is built once (or loaded from ``callgraph_cache`` when its
    per-file digests still match) and shared.
    """
    files = _collect_files(paths)
    sources: dict[str, str] = {}
    per_file_rules: dict[str, set[str]] = {}
    for file_path in files:
        key = str(file_path)
        sources[key] = Path(file_path).read_text(encoding="utf-8")
        per_file_rules[key] = _effective_rules(file_path, select, ignore)

    graph: Optional[CallGraph] = None
    if any("R7" in rules for rules in per_file_rules.values()):
        graph = _load_or_build_graph(sources, callgraph_cache)

    violations: list[Violation] = []
    for file_path in files:
        key = str(file_path)
        violations.extend(
            lint_file(
                file_path,
                source=sources[key],
                rules=per_file_rules[key],
                graph=graph,
            )
        )
    return violations


def _load_or_build_graph(
    sources: dict[str, str], cache_path: Optional[Union[str, Path]]
) -> CallGraph:
    if cache_path is not None:
        cache = Path(cache_path)
        if cache.exists():
            try:
                payload = json.loads(cache.read_text(encoding="utf-8"))
                cached = CallGraph.from_payload(payload)
                if cached.matches_sources(sources):
                    return cached
            except (ValueError, KeyError, TypeError):
                pass  # stale or corrupt cache: rebuild below
    graph = build_callgraph(sources)
    if cache_path is not None:
        Path(cache_path).write_text(
            json.dumps(graph.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return graph


# ---------------------------------------------------------------------------
# baseline (grandfathered findings)
# ---------------------------------------------------------------------------
def _fingerprint(violation: Violation) -> dict:
    return {
        "path": Path(violation.path).as_posix(),
        "line": violation.line,
        "rule": violation.rule,
    }


def load_baseline(path: Union[str, Path]) -> set[tuple[str, int, str]]:
    """The grandfathered-finding fingerprints recorded in ``path``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return {
        (entry["path"], entry["line"], entry["rule"])
        for entry in payload.get("findings", ())
    }


def write_baseline(
    path: Union[str, Path], violations: Sequence[Violation]
) -> None:
    """Record ``violations`` as the new grandfathered baseline."""
    entries = sorted(
        (_fingerprint(violation) for violation in violations),
        key=lambda entry: (entry["path"], entry["line"], entry["rule"]),
    )
    payload = {"version": 1, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _apply_baseline(
    violations: list[Violation], known: set[tuple[str, int, str]]
) -> tuple[list[Violation], int]:
    kept: list[Violation] = []
    hidden = 0
    for violation in violations:
        key = (Path(violation.path).as_posix(), violation.line, violation.rule)
        if key in known:
            hidden += 1
        else:
            kept.append(violation)
    return kept, hidden


# ---------------------------------------------------------------------------
# reporters
# ---------------------------------------------------------------------------
def _render_text(violations: Sequence[Violation], show_source: bool) -> str:
    lines: list[str] = []
    file_cache: dict[str, list[str]] = {}
    for violation in violations:
        lines.append(violation.format())
        if not show_source:
            continue
        if violation.path not in file_cache:
            try:
                file_cache[violation.path] = Path(violation.path).read_text(
                    encoding="utf-8"
                ).splitlines()
            except OSError:
                file_cache[violation.path] = []
        source_lines = file_cache[violation.path]
        if 1 <= violation.line <= len(source_lines):
            snippet = source_lines[violation.line - 1]
            lines.append(f"    {snippet}")
            lines.append(f"    {' ' * violation.col}^")
    return "\n".join(lines)


def _render_json(violations: Sequence[Violation]) -> str:
    return json.dumps(
        [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule,
                "message": violation.message,
            }
            for violation in violations
        ],
        indent=2,
    )


def _render_sarif(violations: Sequence[Violation]) -> str:
    rule_ids = sorted({violation.rule for violation in violations} | set(ALL_RULES))
    sarif = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": ALL_RULES.get(rule_id, rule_id)
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": violation.rule,
                        "level": "error",
                        "message": {"text": violation.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": Path(violation.path).as_posix()
                                    },
                                    "region": {
                                        "startLine": violation.line,
                                        "startColumn": violation.col + 1,
                                    },
                                }
                            }
                        ],
                    }
                    for violation in violations
                ],
            }
        ],
    }
    return json.dumps(sarif, indent=2)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _parse_rule_codes(raw: str, flag: str) -> set[str]:
    codes = {part.strip().upper() for part in raw.split(",") if part.strip()}
    unknown = codes - set(ALL_RULES)
    if unknown:
        raise _UsageError(
            f"{flag}: unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(ALL_RULES))})"
        )
    return codes


class _UsageError(Exception):
    pass


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0/1/2)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis for the repro package (rules R1-R7).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule codes and exit",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (intersects path scoping)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="output_format",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--show-source",
        action="store_true",
        help="print the offending source line under each text finding",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of grandfathered findings to hide",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--callgraph-cache",
        metavar="FILE",
        help="cache the R7 call graph here (reused while file digests match)",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for code in sorted(ALL_RULES):
            print(f"{code}  {ALL_RULES[code]}")
        return 0
    try:
        select = (
            _parse_rule_codes(args.select, "--select") if args.select else None
        )
        ignore = (
            _parse_rule_codes(args.ignore, "--ignore") if args.ignore else None
        )
        if args.update_baseline and not args.baseline:
            raise _UsageError("--update-baseline requires --baseline FILE")
    except _UsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2

    violations = lint_paths(
        args.paths,
        select=select,
        ignore=ignore,
        callgraph_cache=args.callgraph_cache,
    )

    if args.update_baseline:
        write_baseline(args.baseline, violations)
        print(
            f"repro-lint: baseline updated with {len(violations)} finding"
            f"{'s' if len(violations) != 1 else ''}",
            file=sys.stderr,
        )
        return 0

    hidden = 0
    if args.baseline and Path(args.baseline).exists():
        violations, hidden = _apply_baseline(
            violations, load_baseline(args.baseline)
        )

    if args.output_format == "json":
        print(_render_json(violations))
    elif args.output_format == "sarif":
        print(_render_sarif(violations))
    elif violations:
        print(_render_text(violations, args.show_source))

    if violations:
        summary = (
            f"repro-lint: {len(violations)} violation"
            f"{'s' if len(violations) != 1 else ''} found"
        )
        if hidden:
            summary += f" ({hidden} baselined finding{'s' if hidden != 1 else ''} hidden)"
        print(summary, file=sys.stderr)
        return 1
    if hidden:
        print(
            f"repro-lint: clean ({hidden} baselined finding"
            f"{'s' if hidden != 1 else ''} hidden)",
            file=sys.stderr,
        )
    return 0
