"""Module entry point: ``python -m repro.lint``."""

import os
import sys

from repro.lint import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early; the
        # findings that mattered were already delivered downstream.
        # Point stdout at devnull so the interpreter's shutdown flush
        # does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(1)
