"""The DAC procedure driven by asynchronous RSVP-lite signalling.

:class:`repro.core.admission.ACRouter` decides instantly because its
reservation engine is atomic — the abstraction the paper's simulation
uses.  This module runs the *same* Figure 1 loop on top of
:class:`repro.signaling.rsvp.SignalledReservationEngine`, where every
attempt costs a PATH/RESV round trip of simulated time.  That yields
the quantities the paper's overhead discussion appeals to but never
measures directly:

* **admission latency** — arrival to final decision, growing with each
  retrial by a full signalling round trip;
* **message count** — PATH/RESV/PATH_ERR transmissions per request.

The selection/retrial semantics match the synchronous AC-router
exactly; with no concurrent signalling races the decisions are
identical (a property the test suite asserts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.core.admission import AdmissionResult
from repro.core.retrial import RetrialPolicy
from repro.core.selection import DestinationSelector
from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.group import AnycastGroup
from repro.network.routing import RouteTable
from repro.network.topology import Network
from repro.signaling.rsvp import ReservationOutcome, SignalledReservationEngine
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStream

NodeId = Hashable


@dataclass(frozen=True)
class SignalledAdmissionResult:
    """An :class:`AdmissionResult` plus its signalling costs.

    Attributes
    ----------
    result:
        The ordinary admission outcome.
    latency_s:
        Simulated time from request submission to the decision.
    messages:
        Total signalling messages across all attempts.
    """

    result: AdmissionResult
    latency_s: float
    messages: int
    #: Reservation key the links were reserved under (robust mode uses
    #: per-attempt keys; ``None`` means the plain flow id was used).
    reservation_key: Optional[Hashable] = None

    @property
    def admitted(self) -> bool:
        """Whether the flow was established."""
        return self.result.admitted


class SignalledACRouter:
    """An AC-router whose reservations take signalling time.

    Decisions are delivered through a callback because they complete
    only after the (simulated) PATH/RESV exchanges.

    Parameters mirror :class:`repro.core.admission.ACRouter`; the
    reservation engine is the message-level one.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        source: NodeId,
        group: AnycastGroup,
        selector: DestinationSelector,
        retrial_policy: RetrialPolicy,
        rng: RandomStream,
        engine: Optional[SignalledReservationEngine] = None,
    ):
        self.simulator = simulator
        self.network = network
        self.source = source
        self.group = group
        self.selector = selector
        self.retrial_policy = retrial_policy
        self.rng = rng
        self.engine = engine or SignalledReservationEngine(simulator, network)
        self.routes = RouteTable(network, source, group.members)
        self.requests_seen = 0
        self.requests_admitted = 0
        # Robust mode reserves under per-attempt keys so the orphans
        # of a timed-out attempt can never collide with (or be torn
        # down by) a later attempt of the same flow.  This maps an
        # admitted flow to the key its links are actually held under.
        self._reservation_keys: dict[Hashable, Hashable] = {}

    def admit(
        self,
        request: FlowRequest,
        on_decision: Callable[[SignalledAdmissionResult], None],
    ) -> None:
        """Start the DAC loop; ``on_decision`` fires when it concludes."""
        if request.source != self.source:
            raise ValueError(
                f"request source {request.source!r} does not match "
                f"router source {self.source!r}"
            )
        if request.group != self.group:
            raise ValueError(
                f"request group {request.group.address!r} does not match "
                f"router group {self.group.address!r}"
            )
        self.requests_seen += 1
        started_at = self.simulator.now
        state = {
            "attempts": 0,
            "tried": [],
            "excluded": set(),
            "messages": 0,
            "key": None,
        }

        robust = self.engine.robust

        def attempt() -> None:
            destination = self.selector.select(
                self.rng, exclude=frozenset(state["excluded"])
            )
            state["attempts"] += 1
            state["tried"].append(destination)
            route = self.routes.route_to(destination)
            key = (
                (request.flow_id, state["attempts"]) if robust else request.flow_id
            )
            state["key"] = key
            self.engine.reserve(
                route,
                key,
                request.bandwidth_bps,
                lambda outcome: conclude_or_retry(destination, route, outcome),
            )

        def conclude_or_retry(destination, route, outcome: ReservationOutcome):
            state["messages"] += outcome.messages
            self.selector.observe(destination, outcome.success)
            if outcome.success:
                self.requests_admitted += 1
                flow = AdmittedFlow(
                    request=request,
                    destination=destination,
                    path=route.path,
                    admitted_at=self.simulator.now,
                    attempts=state["attempts"],
                )
                self._reservation_keys[request.flow_id] = state["key"]
                finish(flow)
                return
            state["excluded"].add(destination)
            keep_going = self.retrial_policy.should_retry(
                attempts_made=state["attempts"],
                distinct_tried=len(state["excluded"]),
                group_size=self.group.size,
            )
            if keep_going:
                attempt()
            else:
                finish(None)

        def finish(flow: Optional[AdmittedFlow]) -> None:
            result = AdmissionResult(
                request=request,
                flow=flow,
                attempts=state["attempts"],
                tried=tuple(state["tried"]),
                decided_at=self.simulator.now,
            )
            on_decision(
                SignalledAdmissionResult(
                    result=result,
                    latency_s=self.simulator.now - started_at,
                    messages=state["messages"],
                    reservation_key=state["key"] if flow is not None else None,
                )
            )

        attempt()

    def reservation_key_for(self, flow: AdmittedFlow) -> Hashable:
        """The key ``flow``'s links are reserved under."""
        return self._reservation_keys.get(flow.flow_id, flow.flow_id)

    def release(self, flow: AdmittedFlow) -> None:
        """Tear down an admitted flow (TEAR messages charged)."""
        if flow.released:
            return
        key = self._reservation_keys.pop(flow.flow_id, flow.flow_id)
        self.engine.release(flow.path, key)
        flow.released = True
