"""Soft-state reservation leases with an orphan garbage collector.

Hard-state reservations leak: when a ``Resv`` is installed but the
confirmation is lost (the sender times out and walks away), or a
``Tear`` is dropped in transit, bandwidth stays reserved on links that
no live flow owns — forever.  RSVP's answer is *soft state*: every
installed reservation is a lease that must be refreshed, and a
periodic collector expires whatever stopped being refreshed.

:class:`LeaseTable` implements that contract for the RSVP-lite layer:

* each successful per-link ``Resv`` installation registers the link
  under the reservation's key and (re)arms the key's lease for
  ``ttl_s`` seconds;
* delivered ``Tear`` messages drop individual links from the lease as
  the teardown sweeps the path (a completed teardown removes the key);
* the owner of an admitted flow refreshes its lease periodically;
* a sweep every ``sweep_interval_s`` releases every link of every
  expired lease (``release_if_held``, since a fault or competing tear
  may already have dropped some legs) and counts the reclaimed
  bandwidth.

The sweep is **self-quiescing**: it re-arms itself only while leases
exist, and registration re-arms it on demand.  An idle table therefore
keeps no pending event, so an unbounded ``simulator.run()`` used to
drain a finished scenario still terminates — the same design as
:meth:`repro.network.faults.FaultInjector.stop`, without needing an
explicit stop call.

Iteration during the sweep walks the insertion-ordered lease dict, so
collection order — and with it every downstream event sequence — is
deterministic.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro import invariants as _invariants
from repro.network.link import Link
from repro.network.topology import Network
from repro.sim.engine import Event, Simulator

#: A reservation key: the flow id itself, or a per-attempt tuple when
#: the robust signalling mode isolates attempts from each other.
LeaseKey = Hashable


class _Lease:
    """Links held under one reservation key, plus its expiry time."""

    __slots__ = ("links", "expires_at")

    def __init__(self, expires_at: float) -> None:
        self.links: list[Link] = []
        self.expires_at = expires_at


class LeaseTable:
    """Tracks reservation leases and collects expired orphans.

    Parameters
    ----------
    simulator:
        Event engine for the periodic sweep.
    network:
        The network whose links the leases cover (used only by the
        soft-state invariant check).
    ttl_s:
        Lease lifetime granted by each register/refresh.
    sweep_interval_s:
        Period of the garbage-collection sweep while leases exist.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        ttl_s: float,
        sweep_interval_s: float,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"lease TTL must be positive, got {ttl_s}")
        if sweep_interval_s <= 0:
            raise ValueError(
                f"sweep interval must be positive, got {sweep_interval_s}"
            )
        self._simulator = simulator
        self._network = network
        self.ttl_s = ttl_s
        self.sweep_interval_s = sweep_interval_s
        self._entries: dict[LeaseKey, _Lease] = {}
        self._sweep_event: Optional[Event] = None
        #: expired leases collected (each may span several links)
        self.orphans_collected = 0
        #: total bandwidth reclaimed from expired leases
        self.reclaimed_bps = 0.0
        #: sweeps executed
        self.sweeps = 0

    # ------------------------------------------------------------------
    # lease lifecycle
    # ------------------------------------------------------------------
    def register(self, key: LeaseKey, link: Link) -> None:
        """Record that ``key`` reserved ``link``; (re)arm its lease."""
        lease = self._entries.get(key)
        if lease is None:
            lease = _Lease(self._simulator.now + self.ttl_s)
            self._entries[key] = lease
        else:
            lease.expires_at = self._simulator.now + self.ttl_s
        if link not in lease.links:
            lease.links.append(link)
        self._ensure_sweep()

    def refresh(self, key: LeaseKey) -> bool:
        """Extend ``key``'s lease by the TTL; ``False`` if unknown."""
        lease = self._entries.get(key)
        if lease is None:
            return False
        lease.expires_at = self._simulator.now + self.ttl_s
        return True

    def drop_link(self, key: LeaseKey, link: Link) -> None:
        """Forget ``link`` from ``key``'s lease (a delivered Tear leg).

        The caller releases the link itself; this only updates the
        lease so the collector will not release it a second time.  The
        lease disappears once its last link is dropped.
        """
        lease = self._entries.get(key)
        if lease is None:
            return
        if link in lease.links:
            lease.links.remove(link)
        if not lease.links:
            del self._entries[key]

    def revoke(self, key: LeaseKey) -> None:
        """Forget ``key`` entirely without touching the links."""
        self._entries.pop(key, None)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def covers(self, key: LeaseKey, link: Link) -> bool:
        """Whether ``key`` holds a lease covering ``link``."""
        lease = self._entries.get(key)
        return lease is not None and link in lease.links

    def live_leases(self) -> int:
        """Number of keys currently holding a lease."""
        return len(self._entries)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def _ensure_sweep(self) -> None:
        if self._sweep_event is None:
            self._sweep_event = self._simulator.schedule(
                self.sweep_interval_s, self._sweep
            )

    def _sweep(self) -> None:
        self._sweep_event = None
        self.sweeps += 1
        if _invariants.enabled:
            _invariants.check_soft_state(self._network, self)
        now = self._simulator.now
        expired = [
            key
            for key, lease in self._entries.items()
            if lease.expires_at <= now
        ]
        for key in expired:
            lease = self._entries.pop(key)
            freed = 0.0
            for link in lease.links:
                freed += link.release_if_held(key)
            self.orphans_collected += 1
            self.reclaimed_bps += freed
        if self._entries:
            self._ensure_sweep()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LeaseTable(ttl={self.ttl_s:g}s, live={len(self._entries)}, "
            f"collected={self.orphans_collected})"
        )
