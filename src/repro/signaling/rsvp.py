"""Hop-by-hop RSVP-lite reservation sessions.

One :class:`RsvpSession` performs one check-and-reserve attempt along
a fixed route in simulated time:

1. a PATH message travels source → destination, advisorily checking
   available bandwidth at each hop (failing fast where bandwidth is
   already missing);
2. at the destination it turns around as a RESV message that travels
   destination → source, *actually* reserving bandwidth on each link
   (in the upstream direction of data flow) and accumulating the
   bottleneck available bandwidth — the route-bandwidth feedback the
   WD/D+B algorithm needs RESV to carry;
3. if a link refuses (a competing session won the race since the PATH
   probe), the partial reservations are rolled back and a PATH_ERR is
   charged for the remaining distance to the source.

Message counts and latency are recorded so the experiment harness can
report the true signalling cost of retrials.  Admission probabilities
are unaffected relative to the atomic engine except for rare races,
which tests quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Sequence

from repro.network.link import InsufficientBandwidthError
from repro.network.routing import Route
from repro.network.topology import Network
from repro.sim.engine import Simulator

FlowId = Hashable

#: Per-hop message processing time (seconds); propagation delay comes
#: from each link.  Matches small-router forwarding-plane latencies.
DEFAULT_PROCESSING_DELAY_S = 0.0002


@dataclass
class ReservationOutcome:
    """Result of one signalled reservation attempt.

    Attributes
    ----------
    success:
        Whether the route is now reserved for the flow.
    bottleneck_bps:
        Minimum available bandwidth observed by the RESV sweep
        (``inf`` if the PATH probe failed before turning around).
    messages:
        Total messages transmitted (PATH + RESV + PATH_ERR hops).
    latency_s:
        Wall-clock simulated time from start to decision.
    failed_link:
        The ``(u, v)`` pair that refused, if any.
    """

    success: bool
    bottleneck_bps: float
    messages: int
    latency_s: float
    failed_link: Optional[tuple] = None


class RsvpSession:
    """One PATH/RESV exchange for one flow over one route."""

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        route: Route,
        flow_id: FlowId,
        bandwidth_bps: float,
        on_complete: Callable[[ReservationOutcome], None],
        processing_delay_s: float = DEFAULT_PROCESSING_DELAY_S,
    ):
        if bandwidth_bps < 0:
            raise ValueError(f"bandwidth must be non-negative, got {bandwidth_bps}")
        self._simulator = simulator
        self._network = network
        self._route = route
        self._flow_id = flow_id
        self._bandwidth = bandwidth_bps
        self._on_complete = on_complete
        self._processing_delay = processing_delay_s
        self._messages = 0
        self._started_at = simulator.now
        self._reserved_links: list = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the PATH probe from the source."""
        path = self._route.path
        if len(path) < 2:
            # Degenerate zero-hop route: nothing to reserve.
            self._finish(success=True, bottleneck=float("inf"))
            return
        self._advance_path(hop_index=0)

    # ------------------------------------------------------------------
    # PATH phase: source -> destination, advisory checks
    # ------------------------------------------------------------------
    def _advance_path(self, hop_index: int) -> None:
        path = self._route.path
        link = self._network.link(path[hop_index], path[hop_index + 1])
        if not link.can_admit(self._bandwidth):
            # Fail fast: charge the hops travelled so far plus an error
            # message back to the source.
            self._messages += hop_index  # PATH_ERR retraces hop_index links
            self._finish(
                success=False,
                bottleneck=float("inf"),
                failed_link=(link.source, link.target),
            )
            return
        self._messages += 1
        delay = link.propagation_delay_s + self._processing_delay
        if hop_index + 1 == len(path) - 1:
            # PATH reached the destination: turn around as RESV.
            self._simulator.schedule(
                delay, lambda: self._advance_resv(len(path) - 1, float("inf"))
            )
        else:
            self._simulator.schedule(
                delay, lambda: self._advance_path(hop_index + 1)
            )

    # ------------------------------------------------------------------
    # RESV phase: destination -> source, actual reservation
    # ------------------------------------------------------------------
    def _advance_resv(self, node_index: int, bottleneck: float) -> None:
        path = self._route.path
        if node_index == 0:
            self._finish(success=True, bottleneck=bottleneck)
            return
        link = self._network.link(path[node_index - 1], path[node_index])
        available_before = link.available_bps
        try:
            link.reserve(self._flow_id, self._bandwidth)
        except InsufficientBandwidthError:
            # Race lost: roll back what this session already reserved
            # and charge PATH_ERR messages back to the source.
            for reserved in self._reserved_links:
                reserved.release(self._flow_id)
            self._reserved_links.clear()
            self._messages += node_index  # PATH_ERR to the source
            self._finish(
                success=False,
                bottleneck=bottleneck,
                failed_link=(link.source, link.target),
            )
            return
        self._reserved_links.append(link)
        bottleneck = min(bottleneck, available_before)
        self._messages += 1
        delay = link.propagation_delay_s + self._processing_delay
        self._simulator.schedule(
            delay, lambda: self._advance_resv(node_index - 1, bottleneck)
        )

    # ------------------------------------------------------------------
    def _finish(
        self,
        success: bool,
        bottleneck: float,
        failed_link: Optional[tuple] = None,
    ) -> None:
        outcome = ReservationOutcome(
            success=success,
            bottleneck_bps=bottleneck,
            messages=self._messages,
            latency_s=self._simulator.now - self._started_at,
            failed_link=failed_link,
        )
        self._on_complete(outcome)


class SignalledReservationEngine:
    """Asynchronous reservation engine driving RSVP-lite sessions.

    The message-level sibling of
    :class:`repro.core.reservation.AtomicReservationEngine`: same
    check-and-reserve semantics, but the decision arrives after the
    round-trip signalling delay, and message/latency totals accumulate
    for overhead reporting.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        processing_delay_s: float = DEFAULT_PROCESSING_DELAY_S,
    ):
        self.simulator = simulator
        self.network = network
        self.processing_delay_s = processing_delay_s
        self.attempts = 0
        self.failures = 0
        self.total_messages = 0
        self.total_latency_s = 0.0

    def reserve(
        self,
        route: Route,
        flow_id: FlowId,
        bandwidth_bps: float,
        on_complete: Callable[[ReservationOutcome], None],
    ) -> None:
        """Start a reservation attempt; ``on_complete`` fires later."""
        self.attempts += 1

        def record_and_forward(outcome: ReservationOutcome) -> None:
            if not outcome.success:
                self.failures += 1
            self.total_messages += outcome.messages
            self.total_latency_s += outcome.latency_s
            on_complete(outcome)

        session = RsvpSession(
            self.simulator,
            self.network,
            route,
            flow_id,
            bandwidth_bps,
            record_and_forward,
            processing_delay_s=self.processing_delay_s,
        )
        session.start()

    def release(self, path: Sequence, flow_id: FlowId) -> None:
        """Tear down a reservation; TEAR messages are charged."""
        self.network.release_path(path, flow_id)
        self.total_messages += max(0, len(path) - 1)

    @property
    def mean_latency_s(self) -> float:
        """Average signalling latency per attempt (0 when untried)."""
        if self.attempts == 0:
            return 0.0
        return self.total_latency_s / self.attempts

    @property
    def mean_messages(self) -> float:
        """Average messages per attempt (0 when untried)."""
        if self.attempts == 0:
            return 0.0
        return self.total_messages / self.attempts
