"""Hop-by-hop RSVP-lite reservation sessions.

One :class:`RsvpSession` performs one check-and-reserve attempt along
a fixed route in simulated time:

1. a PATH message travels source → destination, advisorily checking
   available bandwidth at each hop (failing fast where bandwidth is
   already missing);
2. at the destination it turns around as a RESV message that travels
   destination → source, *actually* reserving bandwidth on each link
   (in the upstream direction of data flow) and accumulating the
   bottleneck available bandwidth — the route-bandwidth feedback the
   WD/D+B algorithm needs RESV to carry;
3. if a link refuses (a competing session won the race since the PATH
   probe), the partial reservations are rolled back and a PATH_ERR is
   charged for the remaining distance to the source.

Message counts and latency are recorded so the experiment harness can
report the true signalling cost of retrials.  Admission probabilities
are unaffected relative to the atomic engine except for rare races,
which tests quantify.

Robust mode
-----------
By default every transfer is delivered reliably and instantly trusted
— the idealization the paper works in.  Passing a
:class:`repro.signaling.channel.SignalingChannel`, a
:class:`repro.signaling.channel.RetransmitPolicy` and/or a
:class:`repro.signaling.softstate.LeaseTable` switches a session into
*robust mode*:

* each hop transfer is guarded by a timer; undelivered messages are
  retransmitted with exponential backoff up to a cap, and receivers
  deduplicate late or duplicated copies;
* when a transfer exhausts its retransmissions the session gives up:
  a PATH-phase loss behaves like a fail-fast PATH_ERR, a RESV-phase
  loss additionally starts a TEAR sweeping downstream to release the
  partial reservations — through the same unreliable channel, so a
  lost TEAR leaves orphans (which the lease collector later reclaims);
* every installed per-link reservation registers a soft-state lease.

Defaults leave every legacy behaviour bit-identical: without channel,
retransmit policy or lease table, a session performs exactly the same
schedule calls and synchronous race rollback as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Sequence

from repro.network.link import InsufficientBandwidthError
from repro.network.routing import Route
from repro.network.topology import Network
from repro.signaling.channel import RetransmitPolicy, SignalingChannel
from repro.signaling.softstate import LeaseTable
from repro.sim.engine import Event, Simulator

FlowId = Hashable

#: Per-hop message processing time (seconds); propagation delay comes
#: from each link.  Matches small-router forwarding-plane latencies.
DEFAULT_PROCESSING_DELAY_S = 0.0002


@dataclass
class ReservationOutcome:
    """Result of one signalled reservation attempt.

    Attributes
    ----------
    success:
        Whether the route is now reserved for the flow.
    bottleneck_bps:
        Minimum available bandwidth observed by the RESV sweep
        (``inf`` if the PATH probe failed before turning around).
    messages:
        Total messages transmitted (PATH + RESV + PATH_ERR hops,
        including retransmissions; TEAR messages are counted by the
        engine because teardown outlives the attempt).
    latency_s:
        Wall-clock simulated time from start to decision.
    failed_link:
        The ``(u, v)`` pair that refused, if any.
    timed_out:
        Whether the attempt failed because a hop transfer exhausted
        its retransmissions (robust mode only).
    retransmissions:
        Retransmitted messages within the attempt (robust mode only).
    """

    success: bool
    bottleneck_bps: float
    messages: int
    latency_s: float
    failed_link: Optional[tuple] = None
    timed_out: bool = False
    retransmissions: int = 0


class _TearSweep:
    """One TEAR propagating source → destination along a path.

    Each delivered hop releases the upstream link it arrived over and
    drops it from the flow's lease, then forwards the TEAR while the
    next downstream link is still held.  The sweep travels through the
    (possibly lossy) channel with *no* retransmission — RSVP tears are
    unacknowledged — so a lost TEAR strands the remaining links until
    their lease expires.
    """

    __slots__ = (
        "_simulator",
        "_network",
        "_channel",
        "_path",
        "_flow_id",
        "_processing_delay",
        "_leases",
        "_on_message",
    )

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        channel: Optional[SignalingChannel],
        path: Sequence,
        flow_id: FlowId,
        processing_delay_s: float,
        leases: Optional[LeaseTable],
        on_message: Callable[[], None],
    ) -> None:
        self._simulator = simulator
        self._network = network
        self._channel = channel
        self._path = tuple(path)
        self._flow_id = flow_id
        self._processing_delay = processing_delay_s
        self._leases = leases
        self._on_message = on_message

    def start_from(self, node_index: int) -> None:
        """Begin the sweep at ``path[node_index]`` (holds no upstream leg)."""
        self._forward(node_index)

    def release_and_forward(self, node_index: int) -> None:
        """Release the upstream link at ``path[node_index]``, then forward."""
        path = self._path
        link = self._network.link(path[node_index - 1], path[node_index])
        link.release_if_held(self._flow_id)
        if self._leases is not None:
            self._leases.drop_link(self._flow_id, link)
        self._forward(node_index)

    def _forward(self, node_index: int) -> None:
        path = self._path
        if node_index >= len(path) - 1:
            return
        link = self._network.link(path[node_index], path[node_index + 1])
        if not link.holds(self._flow_id):
            # Nothing further downstream to tear (never installed, or
            # already collected); the sweep ends here.
            return
        self._on_message()
        delay = link.propagation_delay_s + self._processing_delay
        deliver = lambda: self.release_and_forward(node_index + 1)  # noqa: E731
        if self._channel is None:
            self._simulator.schedule(delay, deliver)
        else:
            self._channel.send(delay, deliver)


class RsvpSession:
    """One PATH/RESV exchange for one flow over one route.

    Parameters
    ----------
    simulator, network, route, flow_id, bandwidth_bps, on_complete:
        As before; ``flow_id`` doubles as the reservation key on every
        link (callers running retries over an unreliable plane pass a
        per-attempt key so a timed-out attempt's orphans never collide
        with a later attempt).
    processing_delay_s:
        Per-hop message processing time.
    channel:
        Optional unreliable delivery substrate.  A channel with loss
        or duplication requires ``retransmit`` (timers provide both
        recovery and receiver-side deduplication).
    retransmit:
        Optional per-hop timeout/retransmission policy.
    leases:
        Optional soft-state lease table; every installed per-link
        reservation is registered under ``flow_id``.
    on_tear_message:
        Invoked once per TEAR transmission (teardown outlives the
        attempt, so these are not in ``ReservationOutcome.messages``).
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        route: Route,
        flow_id: FlowId,
        bandwidth_bps: float,
        on_complete: Callable[[ReservationOutcome], None],
        processing_delay_s: float = DEFAULT_PROCESSING_DELAY_S,
        channel: Optional[SignalingChannel] = None,
        retransmit: Optional[RetransmitPolicy] = None,
        leases: Optional[LeaseTable] = None,
        on_tear_message: Optional[Callable[[], None]] = None,
    ):
        if bandwidth_bps < 0:
            raise ValueError(f"bandwidth must be non-negative, got {bandwidth_bps}")
        if (
            channel is not None
            and retransmit is None
            and (channel.loss_rate > 0.0 or channel.duplicate_rate > 0.0)
        ):
            raise ValueError(
                "a channel with loss or duplication requires a "
                "RetransmitPolicy (timers recover losses and receivers "
                "deduplicate copies)"
            )
        self._simulator = simulator
        self._network = network
        self._route = route
        self._flow_id = flow_id
        self._bandwidth = bandwidth_bps
        self._on_complete = on_complete
        self._processing_delay = processing_delay_s
        self._channel = channel
        self._retransmit = retransmit
        self._leases = leases
        self._on_tear_message = on_tear_message
        self._robust = (
            channel is not None or retransmit is not None or leases is not None
        )
        self._messages = 0
        self._retransmissions = 0
        self._started_at = simulator.now
        self._reserved_links: list = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the PATH probe from the source."""
        path = self._route.path
        if len(path) < 2:
            # Degenerate zero-hop route: nothing to reserve.
            self._finish(success=True, bottleneck=float("inf"))
            return
        self._advance_path(hop_index=0)

    # ------------------------------------------------------------------
    # transfer primitive: one hop, reliable or guarded by timers
    # ------------------------------------------------------------------
    def _send(self, delay_s: float, deliver: Callable[[], None]) -> None:
        if self._channel is None:
            self._simulator.schedule(delay_s, deliver)
        else:
            self._channel.send(delay_s, deliver)

    def _transfer(
        self,
        delay_s: float,
        deliver: Callable[[], None],
        on_lost: Callable[[], None],
    ) -> None:
        """Move one message across one hop.

        Without a retransmit policy this is a single (possibly lossy)
        transmission.  With one, the sender arms a backoff timer per
        transmission and retransmits until delivery or the cap;
        ``on_lost`` fires when the cap is exhausted.  The receiver
        side deduplicates, so duplicated or straggling copies cannot
        advance the protocol twice.
        """
        self._messages += 1
        policy = self._retransmit
        if policy is None:
            self._send(delay_s, deliver)
            return
        state = {"done": False, "tries": 0}
        timer_box: list[Optional[Event]] = [None]

        def arrive() -> None:
            if state["done"]:
                return  # duplicate or late copy
            state["done"] = True
            timer = timer_box[0]
            if timer is not None:
                timer.cancel()
                timer_box[0] = None
            deliver()

        def timed_out() -> None:
            if state["done"]:
                return
            if state["tries"] >= policy.max_retransmits:
                # Give up; suppress any straggler copies still in flight.
                state["done"] = True
                on_lost()
                return
            state["tries"] += 1
            self._messages += 1
            self._retransmissions += 1
            transmit()

        def transmit() -> None:
            timer_box[0] = self._simulator.schedule(
                policy.timeout(state["tries"]), timed_out
            )
            self._send(delay_s, arrive)

        transmit()

    # ------------------------------------------------------------------
    # PATH phase: source -> destination, advisory checks
    # ------------------------------------------------------------------
    def _advance_path(self, hop_index: int) -> None:
        path = self._route.path
        link = self._network.link(path[hop_index], path[hop_index + 1])
        if not link.can_admit(self._bandwidth):
            # Fail fast: charge the hops travelled so far plus an error
            # message back to the source.
            self._messages += hop_index  # PATH_ERR retraces hop_index links
            self._finish(
                success=False,
                bottleneck=float("inf"),
                failed_link=(link.source, link.target),
            )
            return
        delay = link.propagation_delay_s + self._processing_delay
        if hop_index + 1 == len(path) - 1:
            # PATH reached the destination: turn around as RESV.
            deliver = lambda: self._advance_resv(  # noqa: E731
                len(path) - 1, float("inf")
            )
        else:
            deliver = lambda: self._advance_path(hop_index + 1)  # noqa: E731
        self._transfer(delay, deliver, lambda: self._path_lost(hop_index))

    def _path_lost(self, hop_index: int) -> None:
        """The PATH transfer out of ``path[hop_index]`` exhausted retries."""
        path = self._route.path
        self._messages += hop_index  # PATH_ERR retraces hop_index links
        self._finish(
            success=False,
            bottleneck=float("inf"),
            failed_link=(path[hop_index], path[hop_index + 1]),
            timed_out=True,
        )

    # ------------------------------------------------------------------
    # RESV phase: destination -> source, actual reservation
    # ------------------------------------------------------------------
    def _advance_resv(self, node_index: int, bottleneck: float) -> None:
        path = self._route.path
        if node_index == 0:
            self._finish(success=True, bottleneck=bottleneck)
            return
        link = self._network.link(path[node_index - 1], path[node_index])
        available_before = link.available_bps
        try:
            link.reserve(self._flow_id, self._bandwidth)
        except InsufficientBandwidthError:
            if self._robust:
                # Race lost mid-sweep: tear the downstream partial
                # reservations hop by hop (the TEAR itself may be
                # lost; leases then cover the orphans) and charge
                # PATH_ERR messages back to the source.
                self._messages += node_index
                if self._reserved_links:
                    self._reserved_links.clear()
                    self._start_tear().start_from(node_index)
                self._finish(
                    success=False,
                    bottleneck=bottleneck,
                    failed_link=(link.source, link.target),
                )
                return
            # Legacy mode: roll back synchronously.  A fault may have
            # collected one of our legs while the RESV sweep was in
            # flight, so the rollback must tolerate already-released
            # links — a strict release would KeyError mid-sweep and
            # strand every leg after the hole.
            for reserved in self._reserved_links:
                reserved.release_if_held(self._flow_id)
            self._reserved_links.clear()
            self._messages += node_index  # PATH_ERR to the source
            self._finish(
                success=False,
                bottleneck=bottleneck,
                failed_link=(link.source, link.target),
            )
            return
        self._reserved_links.append(link)
        if self._leases is not None:
            self._leases.register(self._flow_id, link)
        bottleneck = min(bottleneck, available_before)
        delay = link.propagation_delay_s + self._processing_delay
        self._transfer(
            delay,
            lambda: self._advance_resv(node_index - 1, bottleneck),
            lambda: self._resv_lost(node_index, bottleneck),
        )

    def _resv_lost(self, node_index: int, bottleneck: float) -> None:
        """The RESV transfer out of ``path[node_index]`` exhausted retries.

        The node releases its own upstream leg immediately (it knows
        the exchange is dead) and tears the rest downstream; the
        source-side outcome is a timed-out failure.
        """
        self._reserved_links.clear()
        self._start_tear().release_and_forward(node_index)
        path = self._route.path
        self._finish(
            success=False,
            bottleneck=bottleneck,
            failed_link=(path[node_index - 1], path[node_index]),
            timed_out=True,
        )

    def _start_tear(self) -> _TearSweep:
        on_message = self._on_tear_message
        return _TearSweep(
            self._simulator,
            self._network,
            self._channel,
            self._route.path,
            self._flow_id,
            self._processing_delay,
            self._leases,
            on_message if on_message is not None else lambda: None,
        )

    # ------------------------------------------------------------------
    def _finish(
        self,
        success: bool,
        bottleneck: float,
        failed_link: Optional[tuple] = None,
        timed_out: bool = False,
    ) -> None:
        outcome = ReservationOutcome(
            success=success,
            bottleneck_bps=bottleneck,
            messages=self._messages,
            latency_s=self._simulator.now - self._started_at,
            failed_link=failed_link,
            timed_out=timed_out,
            retransmissions=self._retransmissions,
        )
        self._on_complete(outcome)


class SignalledReservationEngine:
    """Asynchronous reservation engine driving RSVP-lite sessions.

    The message-level sibling of
    :class:`repro.core.reservation.AtomicReservationEngine`: same
    check-and-reserve semantics, but the decision arrives after the
    round-trip signalling delay, and message/latency totals accumulate
    for overhead reporting.

    Passing ``channel``/``retransmit``/``leases`` puts every session
    in robust mode (see the module docstring); releases then travel as
    hop-by-hop TEAR sweeps through the channel instead of the legacy
    synchronous ``release_path``.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        processing_delay_s: float = DEFAULT_PROCESSING_DELAY_S,
        channel: Optional[SignalingChannel] = None,
        retransmit: Optional[RetransmitPolicy] = None,
        leases: Optional[LeaseTable] = None,
    ):
        self.simulator = simulator
        self.network = network
        self.processing_delay_s = processing_delay_s
        self.channel = channel
        self.retransmit = retransmit
        self.leases = leases
        self.attempts = 0
        self.failures = 0
        self.total_messages = 0
        self.total_latency_s = 0.0
        #: retransmitted messages across all attempts (robust mode)
        self.total_retransmissions = 0
        #: attempts abandoned because a hop exhausted its retries
        self.timeouts = 0
        #: TEAR transmissions (teardowns outlive their attempts)
        self.tear_messages = 0

    @property
    def robust(self) -> bool:
        """Whether sessions run with robustness machinery attached."""
        return (
            self.channel is not None
            or self.retransmit is not None
            or self.leases is not None
        )

    def _count_tear_message(self) -> None:
        self.total_messages += 1
        self.tear_messages += 1

    def reserve(
        self,
        route: Route,
        flow_id: FlowId,
        bandwidth_bps: float,
        on_complete: Callable[[ReservationOutcome], None],
    ) -> None:
        """Start a reservation attempt; ``on_complete`` fires later.

        ``flow_id`` is the reservation key on every link; robust-mode
        callers pass a per-attempt key (see
        :class:`repro.signaling.admission.SignalledACRouter`).
        """
        self.attempts += 1

        def record_and_forward(outcome: ReservationOutcome) -> None:
            if not outcome.success:
                self.failures += 1
            self.total_messages += outcome.messages
            self.total_latency_s += outcome.latency_s
            self.total_retransmissions += outcome.retransmissions
            if outcome.timed_out:
                self.timeouts += 1
            on_complete(outcome)

        session = RsvpSession(
            self.simulator,
            self.network,
            route,
            flow_id,
            bandwidth_bps,
            record_and_forward,
            processing_delay_s=self.processing_delay_s,
            channel=self.channel,
            retransmit=self.retransmit,
            leases=self.leases,
            on_tear_message=self._count_tear_message,
        )
        session.start()

    def release(self, path: Sequence, flow_id: FlowId) -> None:
        """Tear down a reservation; TEAR messages are charged.

        Legacy mode releases synchronously (the idealized instant
        teardown).  Robust mode launches a hop-by-hop TEAR sweep
        through the channel: each delivered hop releases its leg, and
        a lost TEAR strands the rest for the lease collector.
        """
        if not self.robust:
            self.network.release_path(path, flow_id)
            self.total_messages += max(0, len(path) - 1)
            return
        _TearSweep(
            self.simulator,
            self.network,
            self.channel,
            path,
            flow_id,
            self.processing_delay_s,
            self.leases,
            self._count_tear_message,
        ).start_from(0)

    @property
    def mean_latency_s(self) -> float:
        """Average signalling latency per attempt (0 when untried)."""
        if self.attempts == 0:
            return 0.0
        return self.total_latency_s / self.attempts

    @property
    def mean_messages(self) -> float:
        """Average messages per attempt (0 when untried)."""
        if self.attempts == 0:
            return 0.0
        return self.total_messages / self.attempts
