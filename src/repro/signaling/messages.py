"""Signalling message types for the RSVP-lite model.

A deliberately small subset of RSVP: enough to measure how many
messages and how much time one admission attempt costs, which is what
the paper's retrial-overhead discussion needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable

FlowId = Hashable


class MessageType(enum.Enum):
    """The RSVP-lite message vocabulary."""

    #: downstream probe carrying the flow spec (RSVP PATH)
    PATH = "PATH"
    #: upstream reservation request (RSVP RESV)
    RESV = "RESV"
    #: upstream failure notification (RSVP PathErr/ResvErr collapsed)
    PATH_ERR = "PATH_ERR"
    #: teardown of an existing reservation (RSVP PathTear/ResvTear)
    TEAR = "TEAR"


@dataclass(frozen=True)
class SignallingMessage:
    """Base class: one message travelling one hop.

    Attributes
    ----------
    flow_id:
        The flow the message concerns.
    route:
        Full node path of the session (source first).
    hop_index:
        Index into ``route`` of the node currently *processing* the
        message.
    bandwidth_bps:
        Bandwidth being requested / reserved / torn down.
    """

    flow_id: FlowId
    route: tuple
    hop_index: int
    bandwidth_bps: float

    def __post_init__(self):
        if not 0 <= self.hop_index < len(self.route):
            raise ValueError(
                f"hop index {self.hop_index} outside route of "
                f"{len(self.route)} nodes"
            )
        if self.bandwidth_bps < 0:
            raise ValueError(
                f"bandwidth must be non-negative, got {self.bandwidth_bps}"
            )

    @property
    def at_node(self):
        """Node currently processing the message."""
        return self.route[self.hop_index]

    @property
    def message_type(self) -> MessageType:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class PathMessage(SignallingMessage):
    """Downstream probe: advisory bandwidth check hop by hop."""

    @property
    def message_type(self) -> MessageType:
        return MessageType.PATH

    @property
    def is_at_destination(self) -> bool:
        """Whether the probe has reached the last node of the route."""
        return self.hop_index == len(self.route) - 1


@dataclass(frozen=True)
class ResvMessage(SignallingMessage):
    """Upstream reservation: actually holds bandwidth on each link.

    ``bottleneck_bps`` accumulates the minimum available bandwidth
    observed so far, which is exactly the route-bandwidth feedback the
    WD/D+B algorithm requires the RESV message to carry (Section 4.3.2).
    """

    bottleneck_bps: float = float("inf")

    @property
    def message_type(self) -> MessageType:
        return MessageType.RESV

    @property
    def is_at_source(self) -> bool:
        """Whether the reservation has propagated back to the source."""
        return self.hop_index == 0


@dataclass(frozen=True)
class PathErrMessage(SignallingMessage):
    """Upstream failure notice; releases partial reservations."""

    #: index of the hop whose link refused the reservation
    failed_hop: int = 0

    @property
    def message_type(self) -> MessageType:
        return MessageType.PATH_ERR


@dataclass(frozen=True)
class TearMessage(SignallingMessage):
    """Downstream teardown releasing the flow's reservations."""

    @property
    def message_type(self) -> MessageType:
        return MessageType.TEAR
