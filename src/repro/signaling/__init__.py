"""RSVP-lite signalling (paper Section 4.4).

The paper delegates resource reservation to "the standard RSVP
protocol": PATH messages probe the route hop by hop, RESV messages
reserve on the way back.  Admission *probabilities* do not depend on
the message mechanics (the paper's simulation treats reservation as
atomic), but the mechanics determine the *overhead* of each retrial —
the very trade-off retrial control balances.

This subpackage implements a small message-level model so reservation
latency and message counts can be measured:

* :mod:`repro.signaling.messages` -- PATH / RESV / PATH_ERR / TEAR
  message types.
* :mod:`repro.signaling.rsvp` -- a hop-by-hop signalling session that
  runs on the discrete-event engine with per-link propagation delays.
"""

from repro.signaling.admission import SignalledACRouter, SignalledAdmissionResult
from repro.signaling.messages import (
    MessageType,
    PathErrMessage,
    PathMessage,
    ResvMessage,
    SignallingMessage,
    TearMessage,
)
from repro.signaling.rsvp import ReservationOutcome, RsvpSession, SignalledReservationEngine

__all__ = [
    "MessageType",
    "PathErrMessage",
    "PathMessage",
    "ReservationOutcome",
    "ResvMessage",
    "RsvpSession",
    "SignalledACRouter",
    "SignalledAdmissionResult",
    "SignalledReservationEngine",
    "SignallingMessage",
    "TearMessage",
]
