"""Unreliable delivery substrate for signalling messages.

Every hop-to-hop transmission of the RSVP-lite protocol goes through a
:class:`SignalingChannel`, which can inject the three classic
control-plane impairments:

* **Bernoulli loss** — each transmission is dropped independently with
  probability ``loss_rate``;
* **extra delay** — each *delivered* copy waits an additional uniform
  ``[0, extra_delay_s)`` on top of propagation + processing, which
  reorders messages of concurrent sessions;
* **duplication** — each delivered transmission spawns a second copy
  with probability ``duplicate_rate`` (its own extra-delay draw, so
  the duplicate may arrive first).

Each impairment draws from its *own* :class:`RandomStream` so enabling
one never perturbs the variate sequences of the others (common random
numbers), and the whole channel is deterministic under a fixed seed.

The perfect channel is the default and is guaranteed bit-identical to
scheduling directly on the simulator: with all rates at zero,
:meth:`SignalingChannel.send` performs exactly one
``simulator.schedule(delay_s, deliver)`` call and **zero** rng draws,
so event sequence numbers and every stream's state match a build
without the channel layer.  The golden determinism tests rest on this.

:class:`RetransmitPolicy` is the sender-side half of reliability: it
bundles a :class:`repro.core.retrial.ExponentialBackoff` timeout
schedule with a retransmission cap.  The channel drops messages; the
policy decides how long to wait for the per-hop acknowledgement and
how many times to retransmit before declaring the transfer lost.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.retrial import ExponentialBackoff
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStream


class SignalingChannel:
    """Lossy, delaying, duplicating hop-to-hop message delivery.

    Parameters
    ----------
    simulator:
        Event engine the deliveries are scheduled on.
    loss_rate:
        Probability each transmission is silently dropped.
    extra_delay_s:
        Upper bound of the per-delivery uniform extra delay (0 = none).
    duplicate_rate:
        Probability a delivered transmission arrives twice.
    loss_rng / delay_rng / duplicate_rng:
        Dedicated random streams, required iff the matching rate is
        positive.  Keeping them separate preserves common random
        numbers across impairment configurations.
    """

    def __init__(
        self,
        simulator: Simulator,
        loss_rate: float = 0.0,
        extra_delay_s: float = 0.0,
        duplicate_rate: float = 0.0,
        loss_rng: Optional[RandomStream] = None,
        delay_rng: Optional[RandomStream] = None,
        duplicate_rng: Optional[RandomStream] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if extra_delay_s < 0.0:
            raise ValueError(
                f"extra delay must be non-negative, got {extra_delay_s}"
            )
        if not 0.0 <= duplicate_rate < 1.0:
            raise ValueError(
                f"duplicate rate must be in [0, 1), got {duplicate_rate}"
            )
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("loss_rate > 0 requires loss_rng")
        if extra_delay_s > 0.0 and delay_rng is None:
            raise ValueError("extra_delay_s > 0 requires delay_rng")
        if duplicate_rate > 0.0 and duplicate_rng is None:
            raise ValueError("duplicate_rate > 0 requires duplicate_rng")
        self._simulator = simulator
        self.loss_rate = loss_rate
        self.extra_delay_s = extra_delay_s
        self.duplicate_rate = duplicate_rate
        self._loss_rng = loss_rng
        self._delay_rng = delay_rng
        self._duplicate_rng = duplicate_rng
        self._impaired = loss_rate > 0.0 or extra_delay_s > 0.0 or duplicate_rate > 0.0
        #: transmissions offered to the channel
        self.sent = 0
        #: transmissions dropped by loss injection
        self.dropped = 0
        #: extra deliveries created by duplication
        self.duplicated = 0

    @property
    def impaired(self) -> bool:
        """Whether any impairment is active."""
        return self._impaired

    def send(self, delay_s: float, deliver: Callable[[], None]) -> None:
        """Transmit one message; ``deliver`` fires on each arrival.

        ``delay_s`` is the nominal propagation + processing delay.  A
        lost message never fires ``deliver``; a duplicated one fires it
        twice (receivers deduplicate).  The perfect channel compiles to
        exactly one ``schedule`` call with no rng draws.
        """
        self.sent += 1
        if not self._impaired:
            self._simulator.schedule(delay_s, deliver)
            return
        if self.loss_rate > 0.0:
            assert self._loss_rng is not None  # enforced by the constructor
            if self._loss_rng.uniform() < self.loss_rate:
                self.dropped += 1
                return
        self._deliver_copy(delay_s, deliver)
        if self.duplicate_rate > 0.0:
            assert self._duplicate_rng is not None
            if self._duplicate_rng.uniform() < self.duplicate_rate:
                self.duplicated += 1
                self._deliver_copy(delay_s, deliver)

    def _deliver_copy(self, delay_s: float, deliver: Callable[[], None]) -> None:
        if self.extra_delay_s > 0.0:
            assert self._delay_rng is not None
            delay_s += self._delay_rng.uniform(0.0, self.extra_delay_s)
        self._simulator.schedule(delay_s, deliver)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SignalingChannel(loss={self.loss_rate:g}, "
            f"extra_delay={self.extra_delay_s:g}s, "
            f"dup={self.duplicate_rate:g}, sent={self.sent}, "
            f"dropped={self.dropped})"
        )


class RetransmitPolicy:
    """Sender-side reliability: timeout schedule plus a retry cap.

    Parameters
    ----------
    backoff:
        The :class:`ExponentialBackoff` giving the wait before each
        retransmission (``backoff.timeout(0)`` guards the initial
        transmission).
    max_retransmits:
        Retransmissions allowed per hop transfer before the sender
        declares it lost; 0 means a single transmission guarded by a
        timeout but never retried.
    """

    def __init__(self, backoff: ExponentialBackoff, max_retransmits: int = 3) -> None:
        if max_retransmits < 0:
            raise ValueError(
                f"max retransmits must be non-negative, got {max_retransmits}"
            )
        self.backoff = backoff
        self.max_retransmits = max_retransmits

    def timeout(self, transmission: int) -> float:
        """Timeout guarding transmission number ``transmission`` (0-based)."""
        return self.backoff.timeout(transmission)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetransmitPolicy({self.backoff!r}, "
            f"max_retransmits={self.max_retransmits})"
        )
