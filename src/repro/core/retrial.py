"""Retrial control (paper Section 4.5).

After a failed reservation the DAC procedure must decide whether to
try an alternative destination.  More retrials raise the admission
probability but cost extra signalling round trips, so the paper uses a
simple counter scheme: a counter ``c`` incremented on every attempt,
with retrial allowed while ``c < R``.  ``R`` is therefore the maximum
number of destinations tried per request; ``R = 1`` means a single
shot with no retry.

The policy is pluggable so ablations can explore alternatives; the
paper's scheme is :class:`CounterRetrialPolicy`.
"""

from __future__ import annotations

from typing import Protocol


class RetrialPolicy(Protocol):
    """Decides whether the DAC loop keeps going after a failure."""

    def should_retry(self, attempts_made: int, distinct_tried: int, group_size: int) -> bool:
        """Return ``True`` to try another destination.

        Parameters
        ----------
        attempts_made:
            Value of the paper's counter ``c``: destinations tried so
            far for this request (>= 1 when consulted).
        distinct_tried:
            Number of *distinct* destinations tried; when selection
            excludes failed destinations this equals ``attempts_made``.
        group_size:
            ``K``; no policy can usefully exceed it when failed
            destinations are excluded.
        """
        ...


class CounterRetrialPolicy:
    """The paper's counter scheme: retry while ``c < R``.

    Parameters
    ----------
    max_attempts:
        ``R``, the total number of destinations that may be tried.
    """

    def __init__(self, max_attempts: int) -> None:
        if max_attempts < 1:
            raise ValueError(f"R must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts

    def should_retry(self, attempts_made: int, distinct_tried: int, group_size: int) -> bool:
        """Retry while the counter is below ``R`` and members remain."""
        if distinct_tried >= group_size:
            return False
        return attempts_made < self.max_attempts

    def __repr__(self) -> str:
        return f"CounterRetrialPolicy(R={self.max_attempts})"


class AlwaysRetryPolicy:
    """Ablation: exhaust every distinct destination (R = K).

    Equivalent to ``CounterRetrialPolicy(group_size)`` for any request;
    provided for readability in ablation configs.
    """

    def should_retry(self, attempts_made: int, distinct_tried: int, group_size: int) -> bool:
        """Retry until every member has been tried."""
        return distinct_tried < group_size

    def __repr__(self) -> str:
        return "AlwaysRetryPolicy()"


class NeverRetryPolicy:
    """Ablation: single-shot admission, identical to ``R = 1``."""

    def should_retry(self, attempts_made: int, distinct_tried: int, group_size: int) -> bool:
        """Never retry."""
        return False

    def __repr__(self) -> str:
        return "NeverRetryPolicy()"
