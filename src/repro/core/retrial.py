"""Retrial control (paper Section 4.5).

After a failed reservation the DAC procedure must decide whether to
try an alternative destination.  More retrials raise the admission
probability but cost extra signalling round trips, so the paper uses a
simple counter scheme: a counter ``c`` incremented on every attempt,
with retrial allowed while ``c < R``.  ``R`` is therefore the maximum
number of destinations tried per request; ``R = 1`` means a single
shot with no retry.

The policy is pluggable so ablations can explore alternatives; the
paper's scheme is :class:`CounterRetrialPolicy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.random_streams import RandomStream


class RetrialPolicy(Protocol):
    """Decides whether the DAC loop keeps going after a failure."""

    def should_retry(self, attempts_made: int, distinct_tried: int, group_size: int) -> bool:
        """Return ``True`` to try another destination.

        Parameters
        ----------
        attempts_made:
            Value of the paper's counter ``c``: destinations tried so
            far for this request (>= 1 when consulted).
        distinct_tried:
            Number of *distinct* destinations tried; when selection
            excludes failed destinations this equals ``attempts_made``.
        group_size:
            ``K``; no policy can usefully exceed it when failed
            destinations are excluded.
        """
        ...


class CounterRetrialPolicy:
    """The paper's counter scheme: retry while ``c < R``.

    Parameters
    ----------
    max_attempts:
        ``R``, the total number of destinations that may be tried.
    """

    def __init__(self, max_attempts: int) -> None:
        if max_attempts < 1:
            raise ValueError(f"R must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts

    def should_retry(self, attempts_made: int, distinct_tried: int, group_size: int) -> bool:
        """Retry while the counter is below ``R`` and members remain."""
        if distinct_tried >= group_size:
            return False
        return attempts_made < self.max_attempts

    def __repr__(self) -> str:
        return f"CounterRetrialPolicy(R={self.max_attempts})"


class AlwaysRetryPolicy:
    """Ablation: exhaust every distinct destination (R = K).

    Equivalent to ``CounterRetrialPolicy(group_size)`` for any request;
    provided for readability in ablation configs.
    """

    def should_retry(self, attempts_made: int, distinct_tried: int, group_size: int) -> bool:
        """Retry until every member has been tried."""
        return distinct_tried < group_size

    def __repr__(self) -> str:
        return "AlwaysRetryPolicy()"


class NeverRetryPolicy:
    """Ablation: single-shot admission, identical to ``R = 1``."""

    def should_retry(self, attempts_made: int, distinct_tried: int, group_size: int) -> bool:
        """Never retry."""
        return False

    def __repr__(self) -> str:
        return "NeverRetryPolicy()"


class ExponentialBackoff:
    """Per-hop retransmission timeout schedule with optional jitter.

    Destination *re-selection* (the policies above) decides whether to
    try another group member after a failed reservation; this schedule
    governs the orthogonal, lower layer: how long a signalling sender
    waits for a per-hop acknowledgement before retransmitting the same
    message over an unreliable channel.  The two compose — a request
    may burn several retransmissions inside each reservation attempt
    before the retrial policy redirects it.

    The timeout for transmission ``attempt`` (0-based: the first
    retransmission waits ``timeout(0)``) is::

        min(initial_timeout_s * factor ** attempt, max_timeout_s)

    optionally multiplied by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter)`` — the classic decorrelation trick so
    retransmissions of concurrent sessions do not stay synchronized.
    Jitter draws come from a dedicated :class:`RandomStream` so the
    schedule is deterministic under a fixed seed and perturbs no other
    stream (common random numbers).

    Parameters
    ----------
    initial_timeout_s:
        Timeout before the first retransmission.
    factor:
        Multiplier applied per retransmission (>= 1).
    max_timeout_s:
        Cap on the un-jittered timeout.
    jitter:
        Relative jitter amplitude in ``[0, 1)``; 0 disables jitter.
    rng:
        Random stream for jitter draws; required iff ``jitter > 0``.
    """

    def __init__(
        self,
        initial_timeout_s: float,
        factor: float = 2.0,
        max_timeout_s: float = float("inf"),
        jitter: float = 0.0,
        rng: Optional["RandomStream"] = None,
    ) -> None:
        if initial_timeout_s <= 0:
            raise ValueError(
                f"initial timeout must be positive, got {initial_timeout_s}"
            )
        if factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {factor}")
        if max_timeout_s < initial_timeout_s:
            raise ValueError(
                f"max timeout {max_timeout_s} below initial {initial_timeout_s}"
            )
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if jitter > 0.0 and rng is None:
            raise ValueError("jitter > 0 requires a random stream")
        self.initial_timeout_s = initial_timeout_s
        self.factor = factor
        self.max_timeout_s = max_timeout_s
        self.jitter = jitter
        self._rng = rng

    def timeout(self, attempt: int) -> float:
        """Timeout (seconds) before retransmission number ``attempt``."""
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative, got {attempt}")
        base = self.initial_timeout_s * self.factor**attempt
        if base > self.max_timeout_s:
            base = self.max_timeout_s
        if self.jitter > 0.0:
            assert self._rng is not None  # enforced by the constructor
            base *= 1.0 + self.jitter * (2.0 * self._rng.uniform() - 1.0)
        return base

    def __repr__(self) -> str:
        return (
            f"ExponentialBackoff(initial={self.initial_timeout_s:g}, "
            f"factor={self.factor:g}, max={self.max_timeout_s:g}, "
            f"jitter={self.jitter:g})"
        )
