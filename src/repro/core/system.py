"""Assembly of complete ``<A, R>`` admission systems.

The paper names its systems with a 2-tuple ``<A, R>`` where ``A`` is
the destination-selection algorithm and ``R`` the retrial limit, e.g.
``<ED, 2>``.  :class:`SystemSpec` captures that naming (plus the
baselines, which take no ``R``) and :func:`build_system` wires up a
ready-to-run :class:`AdmissionSystem`: one AC-router per source for
the distributed systems, or a single global controller for GDI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Optional, Sequence

from repro.baselines.gdi import GDIController
from repro.core.admission import ACRouter, AdmissionResult
from repro.core.reservation import AtomicReservationEngine
from repro.core.retrial import CounterRetrialPolicy
from repro.core.selection import (
    DEFAULT_ALPHA,
    DistanceBandwidthWeighted,
    DistanceHistoryWeighted,
    DistanceWeighted,
    EvenDistribution,
    HybridWeighted,
    SelectionContext,
    ShortestPathSelector,
)
from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.group import AnycastGroup
from repro.network.routing import RouteTable
from repro.network.topology import Network
from repro.sim.random_streams import StreamFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.selection import DestinationSelector
    from repro.network.state import SnapshotBandwidthView

NodeId = Hashable

#: Recognized algorithm names, as printed in the paper.
ALGORITHM_NAMES = ("ED", "WD/D", "WD/D+H", "WD/D+B", "WD/D+H+B", "SP", "GDI")

_SELECTOR_CLASSES = {
    "ED": EvenDistribution,
    "WD/D": DistanceWeighted,
    "WD/D+H": DistanceHistoryWeighted,
    "WD/D+B": DistanceBandwidthWeighted,
    "WD/D+H+B": HybridWeighted,
    "SP": ShortestPathSelector,
}


@dataclass(frozen=True)
class SystemSpec:
    """A system in the paper's ``<A, R>`` notation.

    Attributes
    ----------
    algorithm:
        One of :data:`ALGORITHM_NAMES`.  ``WD/D`` is the distance-only
        ablation; ``SP`` and ``GDI`` are the baselines.
    retrials:
        ``R``: maximum destinations tried per request.  Ignored by
        GDI; SP conventionally uses 1 (it has only one choice).
    alpha:
        History-decay parameter of WD/D+H (ignored elsewhere).
    resample_failed:
        Ablation flag: allow re-drawing destinations that already
        failed within the same request.
    bandwidth_refresh_s:
        Staleness ablation for WD/D+B: refresh period of the shared
        link-state snapshot feeding ``B_i``.  0 (default) is the
        paper's always-fresh idealization; > 0 requires the builder to
        receive a simulation clock.
    """

    algorithm: str
    retrials: int = 1
    alpha: float = DEFAULT_ALPHA
    resample_failed: bool = False
    bandwidth_refresh_s: float = 0.0

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHM_NAMES:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"expected one of {ALGORITHM_NAMES}"
            )
        if self.retrials < 1:
            raise ValueError(f"R must be >= 1, got {self.retrials}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.bandwidth_refresh_s < 0:
            raise ValueError(
                f"bandwidth refresh period must be non-negative, "
                f"got {self.bandwidth_refresh_s}"
            )

    @property
    def is_distributed(self) -> bool:
        """Whether the system runs per-source AC-routers (all but GDI)."""
        return self.algorithm != "GDI"

    @property
    def label(self) -> str:
        """The paper's display name, e.g. ``<ED,2>`` or ``GDI``."""
        if self.algorithm in ("SP", "GDI"):
            return self.algorithm
        return f"<{self.algorithm},{self.retrials}>"


class AdmissionSystem:
    """A complete admission-control system bound to one network.

    Routes requests to the AC-router of their source (or the single
    global controller for GDI) and aggregates the counters the
    experiment harness reads.
    """

    def __init__(
        self,
        spec: SystemSpec,
        network: Network,
        group: AnycastGroup,
        controllers: dict[NodeId, ACRouter],
        global_controller: Optional[GDIController] = None,
    ) -> None:
        self.spec = spec
        self.network = network
        self.group = group
        self._controllers = controllers
        self._global_controller = global_controller

    def controller_for(self, source: NodeId) -> "ACRouter | GDIController":
        """The controller that handles requests from ``source``."""
        if self._global_controller is not None:
            return self._global_controller
        try:
            return self._controllers[source]
        except KeyError:
            raise ValueError(
                f"no AC-router for source {source!r}; known sources: "
                f"{sorted(self._controllers, key=repr)}"
            ) from None

    def admit(self, request: FlowRequest, now: Optional[float] = None) -> AdmissionResult:
        """Run admission control for ``request`` at its source's controller."""
        return self.controller_for(request.source).admit(request, now=now)

    def release(self, flow: AdmittedFlow) -> None:
        """Tear down an admitted flow."""
        self.controller_for(flow.request.source).release(flow)

    # ------------------------------------------------------------------
    # aggregated reporting
    # ------------------------------------------------------------------
    def _all_controllers(self) -> "list[ACRouter | GDIController]":
        if self._global_controller is not None:
            return [self._global_controller]
        return list(self._controllers.values())

    @property
    def requests_seen(self) -> int:
        """Requests processed across all controllers."""
        return sum(c.requests_seen for c in self._all_controllers())

    @property
    def requests_admitted(self) -> int:
        """Requests admitted across all controllers."""
        return sum(c.requests_admitted for c in self._all_controllers())

    @property
    def admission_ratio(self) -> float:
        """Overall fraction of requests admitted."""
        seen = self.requests_seen
        if seen == 0:
            return 0.0
        return self.requests_admitted / seen

    @property
    def mean_attempts(self) -> float:
        """Average destinations tried per request, all controllers."""
        seen = self.requests_seen
        if seen == 0:
            return 0.0
        return sum(c.total_attempts for c in self._all_controllers()) / seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdmissionSystem({self.spec.label}, network={self.network.name!r})"


def build_selector(
    spec: SystemSpec,
    context: SelectionContext,
    bandwidth_view: Optional["SnapshotBandwidthView"] = None,
) -> "DestinationSelector":
    """The destination selector for one AC-router under ``spec``.

    Explicit dispatch (rather than a class registry) so each
    constructor is called with exactly the arguments it accepts.
    Shared by :func:`build_system` and the signalled/chaos harnesses,
    which assemble their routers around different reservation engines.
    """
    if spec.algorithm == "ED":
        return EvenDistribution(context)
    if spec.algorithm == "WD/D":
        return DistanceWeighted(context)
    if spec.algorithm == "WD/D+H":
        return DistanceHistoryWeighted(context, alpha=spec.alpha)
    if spec.algorithm == "WD/D+H+B":
        return HybridWeighted(context, alpha=spec.alpha, view=bandwidth_view)
    if spec.algorithm == "WD/D+B":
        return DistanceBandwidthWeighted(context, view=bandwidth_view)
    if spec.algorithm == "SP":
        return ShortestPathSelector(context)
    raise ValueError(f"no per-source selector for algorithm {spec.algorithm!r}")


def build_system(
    spec: SystemSpec,
    network: Network,
    sources: Sequence[NodeId],
    group: AnycastGroup,
    streams: StreamFactory,
    clock: Optional[Callable[[], float]] = None,
) -> AdmissionSystem:
    """Instantiate the system ``spec`` over ``network``.

    Parameters
    ----------
    spec:
        Which ``<A, R>`` system to build.
    network:
        The live network; controllers share its link state.
    sources:
        Nodes that originate requests; each gets its own AC-router
        (with its own selector state and random stream) for the
        distributed systems.
    group:
        The anycast group served.
    streams:
        Factory for the routers' private selection streams, named
        ``"select.<source>"`` so results are reproducible and
        independent across sources.
    clock:
        Simulated-time source; required only when
        ``spec.bandwidth_refresh_s > 0`` (the stale-snapshot ablation
        of WD/D+B needs to know when to refresh).
    """
    if spec.algorithm == "GDI":
        controller = GDIController(network, group)
        return AdmissionSystem(spec, network, group, {}, global_controller=controller)

    bandwidth_view: Optional["SnapshotBandwidthView"] = None
    if spec.algorithm in ("WD/D+B", "WD/D+H+B") and spec.bandwidth_refresh_s > 0:
        if clock is None:
            raise ValueError(
                "bandwidth_refresh_s > 0 needs a simulation clock; "
                "pass build_system(..., clock=...)"
            )
        from repro.network.state import SnapshotBandwidthView

        # One shared snapshot per system: a flooded link-state
        # advertisement reaches every AC-router at once.
        bandwidth_view = SnapshotBandwidthView(
            network, clock, spec.bandwidth_refresh_s
        )

    reservation = AtomicReservationEngine(network)
    controllers: dict[NodeId, ACRouter] = {}
    for source in sources:
        routes = RouteTable(network, source, group.members)
        context = SelectionContext(network=network, routes=routes, group=group)
        selector = build_selector(spec, context, bandwidth_view)
        retrials = 1 if spec.algorithm == "SP" else spec.retrials
        controllers[source] = ACRouter(
            network=network,
            source=source,
            group=group,
            selector=selector,
            retrial_policy=CounterRetrialPolicy(retrials),
            rng=streams.stream(f"select.{source}"),
            reservation=reservation,
            resample_failed=spec.resample_failed,
        )
    return AdmissionSystem(spec, network, group, controllers)
