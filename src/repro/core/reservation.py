"""Resource reservation (paper Section 4.4).

Once a destination is selected, the DAC procedure must (task 1) check
that every link of the fixed route has enough available bandwidth and
(task 2) reserve that bandwidth — the check-and-reserve the paper
delegates to RSVP PATH/RESV messages.

:class:`AtomicReservationEngine` performs both tasks in one critical
step against the live network state, which is the semantics the
paper's simulation model assumes (reservations are instantaneous and
race-free).  The message-driven variant with propagation delays lives
in :mod:`repro.signaling.rsvp`; admission *probabilities* are
identical, only latency/overhead bookkeeping differs.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.network.routing import Route
from repro.network.topology import Network

FlowId = Hashable
NodeId = Hashable


class AtomicReservationEngine:
    """All-or-nothing bandwidth reservation on fixed routes.

    Counts attempts and failures so the experiment harness can report
    signalling overhead (each attempt corresponds to one PATH/RESV
    round trip in a deployed system).
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        #: reservation attempts made (one per destination tried)
        self.attempts = 0
        #: attempts refused for lack of bandwidth on some link
        self.failures = 0

    def try_reserve(self, route: Route, flow_id: FlowId, bandwidth_bps: float) -> bool:
        """Attempt to reserve ``bandwidth_bps`` along ``route``.

        Returns ``True`` and holds the bandwidth on every link on
        success; returns ``False`` and leaves the network untouched on
        failure.
        """
        self.attempts += 1
        if bandwidth_bps < 0:
            raise ValueError(f"bandwidth must be non-negative, got {bandwidth_bps}")
        # The route caches its resolved link objects, so repeated
        # attempts skip the per-hop (u, v) dict lookups entirely.
        success = self.network.reserve_links(
            route.resolve_links(self.network), flow_id, bandwidth_bps
        )
        if not success:
            self.failures += 1
        return success

    def release(self, path: Sequence[NodeId], flow_id: FlowId) -> None:
        """Tear down a flow's reservation along ``path``."""
        self.network.release_path(path, flow_id)

    @property
    def failure_rate(self) -> float:
        """Fraction of reservation attempts refused (0 when untried)."""
        if self.attempts == 0:
            return 0.0
        return self.failures / self.attempts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AtomicReservationEngine(attempts={self.attempts}, "
            f"failures={self.failures})"
        )
