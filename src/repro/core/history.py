"""Local admission history (paper eqs. 5-7).

Each AC-router keeps, per anycast group, a list ``H = <h_1 ... h_K>``
where ``h_i`` counts the *consecutive* reservation failures in the
most recent attempts at destination ``i``:

* initialization: ``h_i = 0`` (eq. 6);
* when destination ``i`` is tried: ``h_i = 0`` on success,
  ``h_i + 1`` on failure (eq. 7).

The WD/D+H selection algorithm decays a destination's weight by
``alpha ** h_i``, so a destination that keeps failing is selected ever
more rarely until it succeeds once, which resets it.

This information is free to collect — it is a by-product of the
AC-router's own admission attempts — which is exactly why the paper
favours WD/D+H for deployability.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.flows.group import AnycastGroup

NodeId = Hashable


class AdmissionHistory:
    """The per-group consecutive-failure counters of one AC-router."""

    def __init__(self, group: AnycastGroup) -> None:
        self.group = group
        self._counters = [0] * group.size
        #: total successes recorded (all destinations)
        self.total_successes = 0
        #: total failures recorded (all destinations)
        self.total_failures = 0

    def record_success(self, member: NodeId) -> None:
        """Destination ``member`` admitted a flow: reset its counter."""
        self._counters[self.group.index_of(member)] = 0
        self.total_successes += 1

    def record_failure(self, member: NodeId) -> None:
        """Reservation toward ``member`` failed: bump its counter."""
        self._counters[self.group.index_of(member)] += 1
        self.total_failures += 1

    def failures_of(self, member: NodeId) -> int:
        """Current ``h_i`` for the given member."""
        return self._counters[self.group.index_of(member)]

    def counters(self) -> tuple[int, ...]:
        """The list ``H`` as a tuple in group-member order."""
        return tuple(self._counters)

    def reset(self) -> None:
        """Reset all counters to the initialization state (eq. 6)."""
        self._counters = [0] * self.group.size

    @property
    def clean_member_count(self) -> int:
        """``M``: number of members with ``h_i == 0`` (used by eq. 9)."""
        return sum(1 for counter in self._counters if counter == 0)

    def __iter__(self) -> Iterator[int]:
        return iter(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(
            f"{member}:{count}"
            for member, count in zip(self.group.members, self._counters)
        )
        return f"AdmissionHistory({pairs})"
