"""Destination selection algorithms (paper Section 4.3).

An AC-router keeps a weight ``W_i`` per member of the anycast group;
the weight is the probability that member ``i`` is picked as the
destination of the next flow (eq. 1: weights sum to one).  The paper
proposes one unbiased and two biased weight-assignment algorithms:

* :class:`EvenDistribution` (ED) -- ``W_i = 1/K`` (eq. 2), no status
  information at all.
* :class:`DistanceHistoryWeighted` (WD/D+H) -- seeds weights inversely
  proportional to route distance (eq. 4) and then, before every
  selection, decays the weights of destinations with recent
  consecutive failures by ``alpha ** h_i`` and redistributes the
  removed mass to the failure-free destinations (eqs. 8-10).
* :class:`DistanceBandwidthWeighted` (WD/D+B) -- ``W_i`` proportional
  to ``B_i / D_i`` where ``B_i`` is the route's bottleneck available
  bandwidth (eqs. 11-12); requires signalling support to learn ``B_i``.

Two further selectors support the evaluation:

* :class:`DistanceWeighted` (WD/D) -- the pure eq. 4 weights, an
  ablation isolating the distance term of WD/D+H.
* :class:`ShortestPathSelector` (SP baseline) -- deterministically the
  closest member.

Retrial interplay: within one request, destinations already tried and
refused are excluded and the remaining weights renormalized (the paper
caps ``R`` at the group size, implying sampling without replacement).
The ablation flag on the AC-router can disable exclusion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Optional, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.network.state import BandwidthView

from repro.core.history import AdmissionHistory
from repro.flows.group import AnycastGroup
from repro.network.routing import RouteTable
from repro.network.topology import Network
from repro.sim.random_streams import RandomStream

NodeId = Hashable

#: Minimum fraction of its seed weight a failure-free member retains in
#: WD/D+H, guarding against weights stranded at exactly zero (see the
#: class docstring).  Small enough to be invisible in the experiments.
_WEIGHT_FLOOR = 1e-6

#: Default history-decay parameter alpha of WD/D+H.  The paper's
#: evaluation does not publish its value; 0.5 halves a destination's
#: weight per consecutive failure, a middle ground between the two
#: extremes the paper discusses (alpha=0: maximal history impact,
#: alpha=1: none).
DEFAULT_ALPHA = 0.5


@dataclass(frozen=True)
class SelectionContext:
    """Everything a selector may consult when assigning weights.

    Attributes
    ----------
    network:
        Live network (WD/D+B reads available bandwidths from it,
        standing in for the extended-RSVP feedback the paper assumes).
    routes:
        The AC-router's fixed routes to every group member.
    group:
        The anycast group (defines the member order of weight vectors).
    """

    network: Network
    routes: RouteTable
    group: AnycastGroup

    def __post_init__(self) -> None:
        if tuple(self.routes.members) != tuple(self.group.members):
            raise ValueError(
                "route table and group disagree on members: "
                f"{self.routes.members} vs {self.group.members}"
            )


def distance_weights(distances: Sequence[float]) -> list[float]:
    """Normalized inverse-distance weights (eq. 4).

    ``W_i = (1/D_i) / sum_j (1/D_j)``.  Zero-distance routes (source
    is itself a member) consume no link resources at all, so they are
    given all the weight: the engineering extension of the paper's
    formula documented in DESIGN.md.
    """
    if not distances:
        raise ValueError("need at least one distance")
    if any(distance < 0 for distance in distances):
        raise ValueError(f"distances must be non-negative: {distances}")
    # Subnormal distances overflow 1/d to inf; treat them as zero-hop.
    inverses = [
        (1.0 / distance if distance > 0 else math.inf) for distance in distances
    ]
    zero_indices = [i for i, inverse in enumerate(inverses) if math.isinf(inverse)]
    total = sum(inverses)
    if not zero_indices and math.isinf(total):
        # Finite inverses whose *sum* overflows: the distances are so
        # extreme that only the nearest members matter anyway.
        nearest = min(distances)
        zero_indices = [i for i, d in enumerate(distances) if d == nearest]
    if zero_indices:
        share = 1.0 / len(zero_indices)
        return [share if i in zero_indices else 0.0 for i in range(len(distances))]
    return [inverse / total for inverse in inverses]


def _renormalize(weights: Sequence[float]) -> list[float]:
    """Scale weights to sum to one; uniform fallback when all-zero."""
    total = sum(weights)
    if total <= 0:
        return [1.0 / len(weights)] * len(weights)
    return [weight / total for weight in weights]


class DestinationSelector(Protocol):
    """Interface the AC-router drives.

    ``weights()`` returns the current probability vector in group
    member order; ``select()`` draws a destination; ``observe()``
    feeds back the outcome of the subsequent reservation attempt.
    """

    name: str

    def weights(self) -> list[float]:
        """Current weight vector ``W_1..W_K`` (sums to one)."""
        ...

    def select(
        self, rng: RandomStream, exclude: frozenset[NodeId] = frozenset()
    ) -> NodeId:
        """Draw a destination, renormalizing over non-excluded members."""
        ...

    def observe(self, member: NodeId, success: bool) -> None:
        """Report the reservation outcome for ``member``."""
        ...


class _WeightedSelectorBase:
    """Shared machinery: draw a member from a weight vector."""

    name = "base"

    def __init__(self, context: SelectionContext) -> None:
        self.context = context
        self.group = context.group

    def weights(self) -> list[float]:  # pragma: no cover - abstract
        raise NotImplementedError

    def observe(self, member: NodeId, success: bool) -> None:
        """Default: stateless selectors ignore outcomes."""

    def select(
        self, rng: RandomStream, exclude: frozenset[NodeId] = frozenset()
    ) -> NodeId:
        members = self.group.members
        weights = self.weights()
        if exclude:
            candidates = [m for m in members if m not in exclude]
            if not candidates:
                raise ValueError("all group members excluded")
            candidate_weights = [
                weights[self.group.index_of(m)] for m in candidates
            ]
            candidate_weights = _renormalize(candidate_weights)
            return rng.weighted_choice(candidates, candidate_weights)
        return rng.weighted_choice(list(members), weights)


class EvenDistribution(_WeightedSelectorBase):
    """ED: every member equally likely, ``W_i = 1/K`` (eq. 2)."""

    name = "ED"

    def weights(self) -> list[float]:
        size = self.group.size
        return [1.0 / size] * size


class DistanceWeighted(_WeightedSelectorBase):
    """WD/D: static inverse-distance weights (eq. 4).

    Not one of the paper's three headline algorithms; used as the
    ablation isolating the distance term of WD/D+H, and as the
    alpha=1 degenerate case of that algorithm.
    """

    name = "WD/D"

    def __init__(self, context: SelectionContext) -> None:
        super().__init__(context)
        self._weights = distance_weights(
            [float(d) for d in context.routes.distances()]
        )

    def weights(self) -> list[float]:
        return list(self._weights)


class DistanceHistoryWeighted(_WeightedSelectorBase):
    """WD/D+H: distance seed + local-admission-history decay (eqs. 4, 8-10).

    The stored weight vector starts at the eq. 4 inverse-distance
    assignment.  Before every selection the vector is updated:

    1. ``AW = sum_i W_i * (1 - alpha ** h_i)`` (eq. 8) — the weight
       mass stripped from recently-failing destinations;
    2. ``W'_i = W_i * alpha**h_i`` for failing members, and
       ``W_i + AW / M`` for the ``M`` failure-free members (eq. 9);
    3. renormalize (eq. 10).

    Edge cases the paper leaves implicit, resolved here:

    * ``M == 0`` (every destination currently failing): there is
      nowhere to redistribute ``AW``; the decayed weights are simply
      renormalized, preserving the *relative* discrimination.
    * all updated weights zero (possible when ``alpha == 0`` and
      ``M == 0``): fall back to the distance seed so selection remains
      well defined.
    * a stranded zero weight: with ``alpha == 0`` a single failure
      zeroes a member's stored weight, and eq. 9's redistribution adds
      mass back only while *other* members are failing — so a member
      could stay at exactly zero forever even after its history
      clears.  We restore a small floor (``_WEIGHT_FLOOR`` times the
      member's seed weight) to every failure-free member, keeping all
      destinations eventually reachable.

    Parameters
    ----------
    alpha:
        History-impact parameter in [0, 1]; 0 = maximal impact
        (a single failure removes the destination until it succeeds),
        1 = no impact (degenerates to WD/D).
    """

    name = "WD/D+H"

    def __init__(
        self, context: SelectionContext, alpha: float = DEFAULT_ALPHA
    ) -> None:
        super().__init__(context)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha
        self.history = AdmissionHistory(context.group)
        self._seed_weights = distance_weights(
            [float(d) for d in context.routes.distances()]
        )
        self._weights = list(self._seed_weights)

    def weights(self) -> list[float]:
        """Apply the eq. 8-10 update and return the new stored vector."""
        counters = self.history.counters()
        current = self._weights
        decay = [self.alpha**h for h in counters]
        adjustable = sum(
            weight * (1.0 - d) for weight, d in zip(current, decay)
        )
        clean = [i for i, h in enumerate(counters) if h == 0]
        updated: list[float] = []
        for i, (weight, h) in enumerate(zip(current, counters)):
            if h != 0:
                updated.append(weight * decay[i])
            elif clean:
                floor = _WEIGHT_FLOOR * self._seed_weights[i]
                updated.append(max(weight + adjustable / len(clean), floor))
            else:  # unreachable branch guard: h == 0 implies i in clean
                updated.append(weight)
        if sum(updated) <= 0:
            updated = list(self._seed_weights)
        self._weights = _renormalize(updated)
        return list(self._weights)

    def observe(self, member: NodeId, success: bool) -> None:
        if success:
            self.history.record_success(member)
        else:
            self.history.record_failure(member)


class DistanceBandwidthWeighted(_WeightedSelectorBase):
    """WD/D+B: weights proportional to ``B_i / D_i`` (eqs. 11-12).

    ``B_i`` is the bottleneck available bandwidth of the fixed route to
    member ``i``, read from the live network state — standing in for
    the extended-RSVP RESV feedback the paper assumes.  Weights are
    recomputed from scratch at every selection, so this selector tracks
    network dynamics exactly (at the compatibility cost the paper
    highlights).

    When every route's bottleneck is zero the flow is doomed anyway;
    the selector falls back to inverse-distance weights so the draw
    stays well defined.

    Parameters
    ----------
    view:
        Where ``B_i`` comes from: the default
        :class:`repro.network.state.LiveBandwidthView` reproduces the
        paper's always-fresh assumption; a
        :class:`repro.network.state.SnapshotBandwidthView` models the
        periodic link-state refresh a real deployment would have.
    """

    name = "WD/D+B"

    def __init__(
        self,
        context: SelectionContext,
        view: Optional["BandwidthView"] = None,
    ) -> None:
        super().__init__(context)
        self._distances = [float(d) for d in context.routes.distances()]
        self._routes = context.routes.routes()
        if view is None:
            from repro.network.state import LiveBandwidthView

            view = LiveBandwidthView(context.network)
        self.view = view

    def weights(self) -> list[float]:
        routes = self._routes
        scores: list[float] = []
        for route, distance in zip(routes, self._distances):
            bandwidth = self.view.route_available_bps(route)
            if distance == 0:
                # Zero-hop route: free to use; dominate the weights.
                return [
                    1.0 if r.distance == 0 else 0.0 for r in routes
                ]
            scores.append(max(0.0, bandwidth) / distance)
        total = sum(scores)
        if total <= 0:
            return distance_weights(self._distances)
        return [score / total for score in scores]


class HybridWeighted(_WeightedSelectorBase):
    """WD/D+H+B: every information source the paper considers, combined.

    Not one of the paper's three algorithms — the obvious next step it
    leaves open.  Weights multiply the bandwidth-per-distance score of
    WD/D+B (eqs. 11-12) with the history decay of WD/D+H (eqs. 8-9):

        W_i  ~  (B_i / D_i) * alpha ** h_i

    renormalized.  History covers what stale bandwidth snapshots miss
    (a route that *keeps failing* is punished immediately even if the
    advertised bandwidth looks fine), while bandwidth covers what
    history cannot see (congestion caused by other sources' flows).
    The ablation bench quantifies the gain over either parent.
    """

    name = "WD/D+H+B"

    def __init__(
        self,
        context: SelectionContext,
        alpha: float = DEFAULT_ALPHA,
        view: Optional["BandwidthView"] = None,
    ) -> None:
        super().__init__(context)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha
        self.history = AdmissionHistory(context.group)
        self._distances = [float(d) for d in context.routes.distances()]
        self._routes = context.routes.routes()
        if view is None:
            from repro.network.state import LiveBandwidthView

            view = LiveBandwidthView(context.network)
        self.view = view

    def weights(self) -> list[float]:
        routes = self._routes
        counters = self.history.counters()
        scores: list[float] = []
        for route, distance, failures in zip(
            routes, self._distances, counters
        ):
            if distance == 0:
                return [1.0 if r.distance == 0 else 0.0 for r in routes]
            bandwidth = max(0.0, self.view.route_available_bps(route))
            scores.append((bandwidth / distance) * self.alpha**failures)
        total = sum(scores)
        if total <= 0:
            return distance_weights(self._distances)
        return [score / total for score in scores]

    def observe(self, member: NodeId, success: bool) -> None:
        if success:
            self.history.record_success(member)
        else:
            self.history.record_failure(member)


class ShortestPathSelector(_WeightedSelectorBase):
    """SP baseline: always the member with the shortest fixed route.

    All weight on one member, so anycast traffic from a source is never
    spread — the congestion-prone behaviour the paper argues against.
    """

    name = "SP"

    def __init__(self, context: SelectionContext) -> None:
        super().__init__(context)
        self._choice = context.routes.shortest_member()

    def weights(self) -> list[float]:
        return [
            1.0 if member == self._choice else 0.0
            for member in self.group.members
        ]

    def select(
        self, rng: RandomStream, exclude: frozenset[NodeId] = frozenset()
    ) -> NodeId:
        if self._choice in exclude:
            # SP has no second choice; fall back to the next-nearest
            # non-excluded member for well-definedness under R > 1.
            remaining = [
                member
                for member in self.group.members
                if member not in exclude
            ]
            if not remaining:
                raise ValueError("all group members excluded")
            return min(
                remaining,
                key=lambda member: self.context.routes.route_to(member).distance,
            )
        return self._choice
