"""The AC-router: the DAC procedure of Figure 1.

Each source router that receives anycast flow requests is an
Admission-Control router.  For every request it loops:

1. select a destination in the anycast group (weight-driven draw);
2. try to reserve bandwidth along the fixed route to it;
3. admitted if the reservation succeeds; otherwise consult the
   retrial policy and possibly go around again.

The router owns its selector (and therefore its local admission
history) — state is strictly local, which is the point of the
*distributed* admission control mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Protocol, Sequence

from repro.core.reservation import AtomicReservationEngine
from repro.core.retrial import RetrialPolicy
from repro.core.selection import DestinationSelector
from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.group import AnycastGroup
from repro.network.routing import Route, RouteTable
from repro.network.topology import Network
from repro.sim.random_streams import RandomStream

NodeId = Hashable
FlowId = Hashable


class ReservationEngine(Protocol):
    """What the AC-router needs from a reservation engine.

    Satisfied by :class:`AtomicReservationEngine` and by the
    fault-aware wrapper in :mod:`repro.network.faults`.
    """

    def try_reserve(
        self, route: "Route", flow_id: FlowId, bandwidth_bps: float
    ) -> bool:
        """Reserve along ``route``; ``True`` on success."""
        ...

    def release(self, path: Sequence[NodeId], flow_id: FlowId) -> None:
        """Tear down the flow's reservations along ``path``."""
        ...


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of one DAC run for one request.

    Attributes
    ----------
    request:
        The request that was processed.
    flow:
        The admitted flow (``None`` if rejected).
    attempts:
        Number of destinations tried (the final value of the paper's
        retrial counter ``c``); >= 1 always.
    tried:
        Destinations tried, in order.
    decided_at:
        Simulation time of the decision (equals the request's arrival
        time under atomic reservations).
    """

    request: FlowRequest
    flow: Optional[AdmittedFlow]
    attempts: int
    tried: tuple[NodeId, ...]
    decided_at: float = 0.0

    @property
    def admitted(self) -> bool:
        """Whether the flow was established."""
        return self.flow is not None

    @property
    def retrials(self) -> int:
        """Attempts beyond the first, i.e. ``c - 1``."""
        return self.attempts - 1


class ACRouter:
    """An admission-control router running the Figure 1 loop.

    Parameters
    ----------
    network:
        Live network state shared with every other controller.
    source:
        The node this router fronts; only requests originating here may
        be submitted to it.
    group:
        The anycast group served.
    selector:
        Destination-selection algorithm (owns any local state such as
        the admission history).
    retrial_policy:
        When to keep trying after failures.
    rng:
        The router's private random stream for the weighted draws.
    reservation:
        Reservation engine; defaults to a private
        :class:`AtomicReservationEngine` on ``network``.
    resample_failed:
        If ``True`` (ablation), a destination that already failed for
        this request may be drawn again on retrial; the default
        excludes failed destinations, matching the paper's cap of
        ``R`` at the group size.
    """

    def __init__(
        self,
        network: Network,
        source: NodeId,
        group: AnycastGroup,
        selector: DestinationSelector,
        retrial_policy: RetrialPolicy,
        rng: RandomStream,
        reservation: Optional[ReservationEngine] = None,
        resample_failed: bool = False,
    ) -> None:
        self.network = network
        self.source = source
        self.group = group
        self.selector = selector
        self.retrial_policy = retrial_policy
        self.rng = rng
        self.reservation: ReservationEngine = (
            reservation or AtomicReservationEngine(network)
        )
        self.resample_failed = resample_failed
        self.routes = RouteTable(network, source, group.members)
        # Lifetime counters for reporting.
        self.requests_seen = 0
        self.requests_admitted = 0
        self.total_attempts = 0

    def admit(self, request: FlowRequest, now: Optional[float] = None) -> AdmissionResult:
        """Run the DAC procedure for ``request``.

        Returns an :class:`AdmissionResult`; on admission the flow's
        bandwidth is held on every link of its route until
        :meth:`release` is called.
        """
        if request.source != self.source:
            raise ValueError(
                f"request source {request.source!r} does not match "
                f"router source {self.source!r}"
            )
        if request.group != self.group:
            raise ValueError(
                f"request group {request.group.address!r} does not match "
                f"router group {self.group.address!r}"
            )
        decided_at = request.arrival_time if now is None else now
        self.requests_seen += 1
        tried: list[NodeId] = []
        excluded: set[NodeId] = set()
        attempts = 0
        while True:
            exclude = frozenset(excluded)
            destination = self.selector.select(self.rng, exclude=exclude)
            attempts += 1
            tried.append(destination)
            route = self.routes.route_to(destination)
            success = self.reservation.try_reserve(
                route, request.flow_id, request.bandwidth_bps
            )
            self.selector.observe(destination, success)
            if success:
                self.requests_admitted += 1
                self.total_attempts += attempts
                flow = AdmittedFlow(
                    request=request,
                    destination=destination,
                    path=route.path,
                    admitted_at=decided_at,
                    attempts=attempts,
                )
                return AdmissionResult(
                    request=request,
                    flow=flow,
                    attempts=attempts,
                    tried=tuple(tried),
                    decided_at=decided_at,
                )
            if not self.resample_failed:
                excluded.add(destination)
            keep_going = self.retrial_policy.should_retry(
                attempts_made=attempts,
                distinct_tried=len(excluded) if not self.resample_failed else len(set(tried)),
                group_size=self.group.size,
            )
            if not keep_going:
                self.total_attempts += attempts
                return AdmissionResult(
                    request=request,
                    flow=None,
                    attempts=attempts,
                    tried=tuple(tried),
                    decided_at=decided_at,
                )

    def release(self, flow: AdmittedFlow) -> None:
        """Tear down an admitted flow's reservations (idempotent)."""
        if flow.released:
            return
        self.reservation.release(flow.path, flow.flow_id)
        flow.released = True

    @property
    def admission_ratio(self) -> float:
        """Fraction of seen requests admitted (0 when none seen)."""
        if self.requests_seen == 0:
            return 0.0
        return self.requests_admitted / self.requests_seen

    @property
    def mean_attempts(self) -> float:
        """Average destinations tried per request (0 when none seen)."""
        if self.requests_seen == 0:
            return 0.0
        return self.total_attempts / self.requests_seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ACRouter(source={self.source!r}, selector={self.selector.name}, "
            f"seen={self.requests_seen})"
        )
