"""The paper's primary contribution: Distributed Admission Control.

Implements Section 4 of the paper:

* :mod:`repro.core.history` -- per-destination local admission history
  (the ``H`` list of eq. 5-7).
* :mod:`repro.core.selection` -- randomized destination selection:
  Even Distribution (ED), Weighted Distribution with Distance +
  History (WD/D+H) and with Distance + Bandwidth (WD/D+B), plus the
  distance-only ablation and the Shortest-Path baseline selector.
* :mod:`repro.core.reservation` -- all-or-nothing route bandwidth
  reservation (the RSVP check-and-reserve of Section 4.4).
* :mod:`repro.core.retrial` -- counter-based retrial control
  (Section 4.5).
* :mod:`repro.core.admission` -- the AC-router running the DAC loop of
  Figure 1.
* :mod:`repro.core.system` -- factory assembling complete ``<A, R>``
  systems from their paper names.
"""

from repro.core.admission import ACRouter, AdmissionResult
from repro.core.history import AdmissionHistory
from repro.core.reservation import AtomicReservationEngine
from repro.core.retrial import CounterRetrialPolicy, RetrialPolicy
from repro.core.selection import (
    DestinationSelector,
    DistanceBandwidthWeighted,
    DistanceHistoryWeighted,
    DistanceWeighted,
    EvenDistribution,
    HybridWeighted,
    SelectionContext,
    ShortestPathSelector,
    distance_weights,
)
from repro.core.system import (
    ALGORITHM_NAMES,
    AdmissionSystem,
    SystemSpec,
    build_system,
)

__all__ = [
    "ACRouter",
    "ALGORITHM_NAMES",
    "AdmissionHistory",
    "AdmissionResult",
    "AdmissionSystem",
    "AtomicReservationEngine",
    "CounterRetrialPolicy",
    "DestinationSelector",
    "DistanceBandwidthWeighted",
    "DistanceHistoryWeighted",
    "DistanceWeighted",
    "EvenDistribution",
    "HybridWeighted",
    "RetrialPolicy",
    "SelectionContext",
    "ShortestPathSelector",
    "SystemSpec",
    "build_system",
    "distance_weights",
]
