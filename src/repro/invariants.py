"""Runtime invariant sanitizer for the simulation substrate.

The determinism and conservation guarantees the admission-control
results rest on (see CONTRIBUTING.md, "Determinism rules") are cheap
to *check* at runtime but expensive to debug after the fact.  This
module centralizes those checks behind a single module-level switch:

* non-negative reserved totals and available bandwidth on every link;
* agreement between each link's per-flow reservation ledger and its
  column in the shared :class:`~repro.network.link.LinkStateArrays`;
* reserve/release pairing — a flow holds the same bandwidth on every
  link it traverses, never a stale or negative entry;
* monotonically non-decreasing event time in both pending-event set
  implementations.

Enable it with the environment variable ``REPRO_CHECK_INVARIANTS=1``
(read once at import, so it reaches worker processes spawned by the
parallel runner), with :func:`set_enabled`, or per-simulator with
``Simulator(check_invariants=True)``.  When disabled the hooks cost a
single module-attribute truth test, so the hot paths are unaffected.

The module imports only the standard library: it sits below every
other ``repro`` module and can be imported from any of them without
creating an import cycle.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.link import Link
    from repro.network.topology import Network
    from repro.signaling.softstate import LeaseTable

__all__ = [
    "ENV_VAR",
    "InvariantViolation",
    "check_drained",
    "check_link",
    "check_network",
    "check_soft_state",
    "check_time_monotonic",
    "enabled",
    "is_enabled",
    "set_enabled",
]

#: Environment variable that switches the sanitizer on for a whole
#: process tree (``1``/anything truthy enables, ``0``/empty disables).
ENV_VAR = "REPRO_CHECK_INVARIANTS"

#: Mirror of the admission slack in :mod:`repro.network.link`, kept as
#: a literal so this module stays import-cycle-free (stdlib only).
_ADMIT_EPSILON_BPS = 1e-9


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )


#: The global switch.  Hooks read this directly (``_inv.enabled``) so
#: the disabled cost is one attribute load and a truth test.
enabled: bool = _env_enabled()


class InvariantViolation(AssertionError):
    """A simulation-substrate invariant was broken at runtime."""


def is_enabled() -> bool:
    """Whether the sanitizer is currently on."""
    return enabled


def set_enabled(value: bool) -> None:
    """Switch the sanitizer on or off for this process."""
    global enabled
    enabled = bool(value)


def _tolerance(capacity_bps: float) -> float:
    """Accounting slack: absolute floor plus a capacity-relative term.

    Incremental float accounting drifts by at most a few ulps of the
    capacity magnitude per reserve/release cycle; the link layer snaps
    drift whenever a ledger empties, so the residual stays far below
    this bound.
    """
    return 1e-6 + 1e-9 * abs(capacity_bps)


def check_link(link: "Link") -> None:
    """Verify one link's accounting invariants.

    Raises :class:`InvariantViolation` if the reserved total is
    negative, available bandwidth is below the admission slack, any
    per-flow ledger entry is negative, or the ledger sum disagrees
    with the link's column in the shared state arrays.
    """
    state = link.state
    index = link.index
    capacity = state.capacity[index]
    reserved = state.reserved[index]
    tolerance = _tolerance(capacity)
    if not reserved >= -tolerance:  # NaN also fails this test
        raise InvariantViolation(
            f"link {link.source}->{link.target}: reserved total "
            f"{reserved!r} is negative (or NaN)"
        )
    if not capacity - reserved >= -(_ADMIT_EPSILON_BPS + tolerance):
        raise InvariantViolation(
            f"link {link.source}->{link.target}: reserved {reserved!r} "
            f"exceeds capacity {capacity!r}"
        )
    ledger = link._reservations
    for flow_id, amount in ledger.items():
        if not amount >= 0.0:
            raise InvariantViolation(
                f"link {link.source}->{link.target}: flow {flow_id!r} "
                f"holds a negative reservation {amount!r}"
            )
    total = math.fsum(ledger.values())
    if abs(total - reserved) > tolerance:
        raise InvariantViolation(
            f"link {link.source}->{link.target}: ledger sum {total!r} "
            f"disagrees with reserved column {reserved!r}"
        )


def check_network(network: "Network") -> None:
    """Verify every link of ``network`` plus cross-link flow pairing.

    A flow reserves the same bandwidth on every link of its path, so
    any flow id appearing with two different amounts means a reserve
    or release was torn (applied on some links but not others).
    """
    amounts: dict[Any, float] = {}
    for link in network.links():
        check_link(link)
        for flow_id, amount in link._reservations.items():
            previous = amounts.setdefault(flow_id, amount)
            if previous != amount:
                raise InvariantViolation(
                    f"flow {flow_id!r} holds {amount!r} bps on link "
                    f"{link.source}->{link.target} but {previous!r} bps "
                    f"elsewhere: torn reserve/release"
                )


def check_soft_state(network: "Network", leases: "LeaseTable") -> None:
    """Verify every reservation is covered by a lease.

    The soft-state contract: bandwidth may only be held under a live
    (or pending-collection) lease, so a lost Resv/Tear can orphan a
    reservation for at most one TTL + sweep interval.  A reservation
    with no covering lease would never be collected — a permanent
    bandwidth leak — so the sweep asserts this before collecting.

    Only meaningful when *all* reservations of ``network`` go through
    the lease-tracking signalling layer; the chaos scenario satisfies
    this by construction.
    """
    for link in network.links():
        for flow_id in link._reservations:
            if not leases.covers(flow_id, link):
                raise InvariantViolation(
                    f"link {link.source}->{link.target}: reservation "
                    f"{flow_id!r} has no covering lease (leaked bandwidth)"
                )


def check_drained(network: "Network") -> None:
    """Verify no bandwidth remains reserved after a full drain.

    Called by scenarios that tear every flow down (or let the lease
    collector expire the orphans) and then drain the event calendar:
    any residual reservation means the robustness machinery leaked.
    """
    for link in network.links():
        reserved = link.reserved_bps
        if abs(reserved) > _tolerance(link.capacity_bps):
            raise InvariantViolation(
                f"link {link.source}->{link.target}: {reserved!r} bps "
                f"still reserved after drain ({len(link._reservations)} "
                f"ledger entries)"
            )


def check_time_monotonic(
    previous: float, current: float, context: str
) -> None:
    """Verify event time never moves backwards.

    ``previous`` is the last dispatched/popped timestamp, ``current``
    the one about to be processed.
    """
    if current < previous:
        raise InvariantViolation(
            f"{context}: event time moved backwards "
            f"({current!r} after {previous!r})"
        )
