"""The network graph: nodes plus directed capacitated links.

Implements the model of Section 3: "a network that consists of a
number of nodes... connected by physical links along which packets can
be transmitted".  Physical cables are bidirectional; each direction is
an independent :class:`repro.network.link.Link` with its own capacity
and reservation ledger, because a flow consumes bandwidth only along
its direction of travel.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Optional, Sequence

from repro import invariants as _invariants
from repro.network.link import ADMIT_EPSILON_BPS, Link, LinkStateArrays

NodeId = Hashable
FlowId = Hashable


class NetworkError(RuntimeError):
    """Raised for structural errors: unknown nodes, duplicate links..."""


class Network:
    """A directed multigraph-free network of capacitated links.

    Nodes are arbitrary hashable identifiers (the canned topologies use
    small integers).  At most one link may exist per ordered node pair.

    Parameters
    ----------
    name:
        Diagnostic label shown in reports.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._nodes: dict[NodeId, dict[str, Any]] = {}
        self._links: dict[tuple[NodeId, NodeId], Link] = {}
        self._adjacency: dict[NodeId, list[NodeId]] = {}
        #: Columnar bandwidth accounting shared by every link; link
        #: ids are dense indices in construction order.
        self.link_state = LinkStateArrays()
        self._links_by_index: list[Link] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, **attributes: Any) -> None:
        """Add a node; re-adding an existing node updates attributes."""
        if node in self._nodes:
            self._nodes[node].update(attributes)
            return
        self._nodes[node] = dict(attributes)
        self._adjacency[node] = []

    def add_link(
        self,
        source: NodeId,
        target: NodeId,
        capacity_bps: float,
        propagation_delay_s: float = 0.001,
        bidirectional: bool = True,
    ) -> None:
        """Add a link (by default both directions of a physical cable).

        Endpoints are added implicitly if absent.

        Raises
        ------
        NetworkError
            On self-loops or duplicate directed links.
        """
        if source == target:
            raise NetworkError(f"self-loop on node {source!r} is not allowed")
        self.add_node(source)
        self.add_node(target)
        directions = [(source, target)]
        if bidirectional:
            directions.append((target, source))
        for u, v in directions:
            if (u, v) in self._links:
                raise NetworkError(f"duplicate link {u!r}->{v!r}")
        for u, v in directions:
            link = Link(
                u, v, capacity_bps, propagation_delay_s, state=self.link_state
            )
            self._links[(u, v)] = link
            self._links_by_index.append(link)
            self._adjacency[u].append(v)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def link_count(self) -> int:
        """Number of *directed* links."""
        return len(self._links)

    def nodes(self) -> list[NodeId]:
        """All node identifiers in insertion order."""
        return list(self._nodes)

    def node_attributes(self, node: NodeId) -> dict[str, Any]:
        """Attribute dict of ``node`` (mutable view)."""
        try:
            return self._nodes[node]
        except KeyError:
            raise NetworkError(f"unknown node {node!r}") from None

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` exists."""
        return node in self._nodes

    def has_link(self, source: NodeId, target: NodeId) -> bool:
        """Whether the directed link exists."""
        return (source, target) in self._links

    def link(self, source: NodeId, target: NodeId) -> Link:
        """The directed link object from ``source`` to ``target``."""
        try:
            return self._links[(source, target)]
        except KeyError:
            raise NetworkError(f"no link {source!r}->{target!r}") from None

    def links(self) -> Iterator[Link]:
        """Iterate over all directed links."""
        return iter(self._links.values())

    def link_by_index(self, index: int) -> Link:
        """The link whose dense id in :attr:`link_state` is ``index``."""
        return self._links_by_index[index]

    def neighbors(self, node: NodeId) -> Sequence[NodeId]:
        """Out-neighbors of ``node`` in insertion order."""
        try:
            return tuple(self._adjacency[node])
        except KeyError:
            raise NetworkError(f"unknown node {node!r}") from None

    def degree(self, node: NodeId) -> int:
        """Out-degree of ``node``."""
        return len(self._adjacency.get(node, ()))

    # ------------------------------------------------------------------
    # path-level bandwidth operations
    # ------------------------------------------------------------------
    def path_links(self, path: Sequence[NodeId]) -> list[Link]:
        """Resolve a node path to its directed link objects."""
        if len(path) < 2:
            return []
        return [self.link(u, v) for u, v in zip(path, path[1:])]

    def path_available_bps(self, path: Sequence[NodeId]) -> float:
        """Bottleneck available bandwidth of ``path`` (eq. 11).

        Returns ``inf`` for an empty/degenerate path, mirroring a flow
        whose source and destination coincide and thus needs no links.
        """
        links = self.path_links(path)
        if not links:
            return float("inf")
        return min(link.available_bps for link in links)

    def path_admits(self, path: Sequence[NodeId], bandwidth_bps: float) -> bool:
        """Whether every link on ``path`` can carry ``bandwidth_bps`` more."""
        return all(link.can_admit(bandwidth_bps) for link in self.path_links(path))

    def reserve_path(
        self, path: Sequence[NodeId], flow_id: FlowId, bandwidth_bps: float
    ) -> bool:
        """Atomically reserve ``bandwidth_bps`` on every link of ``path``.

        Either every link grants the reservation or none does (links
        reserved before the failing hop are rolled back).  Returns
        ``True`` on success.
        """
        return self.reserve_links(self.path_links(path), flow_id, bandwidth_bps)

    def reserve_links(
        self, links: Sequence[Link], flow_id: FlowId, bandwidth_bps: float
    ) -> bool:
        """Atomically reserve on pre-resolved ``links`` (all-or-nothing).

        The hot-path variant of :meth:`reserve_path` for callers that
        hold the link objects already (e.g. a cached
        :class:`~repro.network.routing.Route`).  Works directly on the
        shared :class:`~repro.network.link.LinkStateArrays` columns —
        one admission check and one accounting write per hop, no
        per-link method dispatch — with semantics identical to calling
        :meth:`Link.reserve` hop by hop: same admission epsilon, same
        grant/rejection counters, links reserved before the failing
        hop are rolled back.
        """
        if bandwidth_bps < 0:
            raise ValueError(f"bandwidth must be non-negative, got {bandwidth_bps}")
        amount = float(bandwidth_bps)
        state = self.link_state
        capacity = state.capacity
        reserved = state.reserved
        granted = 0
        for link in links:
            if flow_id in link._reservations:
                for position in range(granted):
                    # Rolling back legs this very call just granted:
                    # each definitely holds flow_id, release cannot raise.
                    links[position].release(flow_id)  # repro-lint: disable=R5
                raise ValueError(
                    f"flow {flow_id!r} already reserved on link "
                    f"{link.source}->{link.target}"
                )
            index = link._index
            if not (
                bandwidth_bps
                <= capacity[index] - reserved[index] + ADMIT_EPSILON_BPS
            ):
                link.rejections += 1
                for position in range(granted):
                    # Same as above: releasing just-granted legs only.
                    links[position].release(flow_id)  # repro-lint: disable=R5
                return False
            link._reservations[flow_id] = amount
            reserved[index] += amount
            link.grants += 1
            granted += 1
        if _invariants.enabled:
            for link in links:
                _invariants.check_link(link)
        return True

    def release_path(self, path: Sequence[NodeId], flow_id: FlowId) -> None:
        """Release the flow's reservation on every link of ``path``.

        Raises ``KeyError`` if any leg held no reservation — but only
        after releasing every leg that did: a strict hop-by-hop sweep
        would abort at the first missing leg (fault teardown, lease
        GC) and strand the bandwidth reserved on the links after it.
        """
        missing: Optional[Link] = None
        for link in self.path_links(path):
            if link.holds(flow_id):
                link.release(flow_id)
            elif missing is None:
                missing = link
        if missing is not None:
            raise KeyError(
                f"flow {flow_id!r} held no reservation on link "
                f"{missing.source}->{missing.target}"
            )

    def total_reserved_bps(self) -> float:
        """Sum of reservations over all directed links."""
        # The reserved column is ordered by link id = insertion order,
        # so this sums in the same order as walking the link dict.
        return sum(self.link_state.reserved)

    def snapshot_available(self) -> dict[tuple[NodeId, NodeId], float]:
        """Map of directed link -> available bandwidth, for analysis."""
        return {key: link.available_bps for key, link in self._links.items()}

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self) -> Any:
        """Export to a :class:`networkx.DiGraph` (for tests/analysis).

        Link attributes ``capacity_bps``, ``available_bps`` and
        ``propagation_delay_s`` are attached to the edges.
        """
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(self._nodes)
        for (u, v), link in self._links.items():
            graph.add_edge(
                u,
                v,
                capacity_bps=link.capacity_bps,
                available_bps=link.available_bps,
                propagation_delay_s=link.propagation_delay_s,
            )
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network({self.name!r}, nodes={self.node_count}, "
            f"links={self.link_count})"
        )
