"""Network substrate: links, topologies and fixed-path routing.

Implements the network model of Section 3 of the paper: nodes joined
by capacitated links, where each link tracks the bandwidth reserved by
admitted anycast flows and exposes its *available bandwidth* (``AB_l``)
to the admission-control machinery.

* :mod:`repro.network.link` -- a directed capacitated link with a
  per-flow reservation ledger.
* :mod:`repro.network.topology` -- the network graph.
* :mod:`repro.network.routing` -- fixed shortest-path routes (and
  k-shortest / feasible-path search used by the GDI baseline).
* :mod:`repro.network.topologies` -- canned topologies including the
  19-node MCI ISP backbone of the paper's evaluation.
"""

from repro.network.link import InsufficientBandwidthError, Link
from repro.network.routing import (
    Route,
    RouteTable,
    feasible_path,
    k_shortest_paths,
    shortest_path,
)
from repro.network.topologies import (
    abilene,
    binary_tree,
    dumbbell,
    grid,
    line,
    mci_backbone,
    nsfnet,
    ring,
    star,
    waxman_random,
)
from repro.network.topology import Network, NetworkError

__all__ = [
    "InsufficientBandwidthError",
    "Link",
    "Network",
    "NetworkError",
    "Route",
    "RouteTable",
    "abilene",
    "binary_tree",
    "dumbbell",
    "feasible_path",
    "grid",
    "k_shortest_paths",
    "line",
    "mci_backbone",
    "nsfnet",
    "ring",
    "shortest_path",
    "star",
    "waxman_random",
]
