"""Bandwidth views: live versus stale link-state information.

The WD/D+B algorithm needs the bottleneck available bandwidth ``B_i``
of every route.  The paper obtains it by extending RSVP so RESV
messages carry the value back — which means, in any real deployment,
the AC-router works with a *snapshot* that ages between refreshes.
The evaluation models the optimistic limit (always-fresh values); this
module makes information freshness an explicit, controllable knob:

* :class:`LiveBandwidthView` -- reads the network's current state on
  every query (the paper's idealization; zero staleness).
* :class:`SnapshotBandwidthView` -- caches the whole network's
  available bandwidths and refreshes the cache only every
  ``refresh_period_s`` of simulated time, emulating periodic
  link-state advertisements or RESV-piggybacked feedback.

The staleness ablation bench sweeps the refresh period and shows how
WD/D+B's advantage erodes as its information ages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Protocol, Sequence

from repro import invariants
from repro.network.link import Link, LinkStateArrays
from repro.network.topology import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.routing import Route

NodeId = Hashable

__all__ = [
    "BandwidthView",
    "LinkStateArrays",
    "LiveBandwidthView",
    "SnapshotBandwidthView",
    "verify_link",
    "verify_network",
]


def verify_link(link: Link) -> None:
    """Assert one link's accounting invariants (always runs).

    Unconditional wrapper around :func:`repro.invariants.check_link`
    for tests and debugging sessions; the hot-path hooks inside the
    link layer run the same check only when the sanitizer is enabled.
    """
    invariants.check_link(link)


def verify_network(network: Network) -> None:
    """Assert every link's invariants plus cross-link reserve/release
    pairing (always runs); see :func:`repro.invariants.check_network`."""
    invariants.check_network(network)


class BandwidthView(Protocol):
    """Source of (possibly stale) route-bandwidth information."""

    def path_available_bps(self, path: Sequence[NodeId]) -> float:
        """Bottleneck available bandwidth of ``path`` as this view sees it."""
        ...

    def route_available_bps(self, route: "Route") -> float:
        """Bottleneck bandwidth of a fixed :class:`Route` (hot path)."""
        ...


class LiveBandwidthView:
    """Perfectly fresh information: queries hit the network directly."""

    def __init__(self, network: Network) -> None:
        self._network = network

    def path_available_bps(self, path: Sequence[NodeId]) -> float:
        """Current bottleneck bandwidth of ``path``."""
        return self._network.path_available_bps(path)

    def route_available_bps(self, route: "Route") -> float:
        """Current bottleneck bandwidth of ``route``.

        Scans the network's shared :class:`LinkStateArrays` columns by
        the route's cached link ids — one subtract and compare per
        hop, no per-link attribute walks or dict lookups.
        """
        network = self._network
        indices = route.resolve_link_indices(network)
        if not indices:
            return float("inf")
        state = network.link_state
        capacity = state.capacity
        reserved = state.reserved
        best = float("inf")
        for i in indices:
            available = capacity[i] - reserved[i]
            if available < best:
                best = available
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "LiveBandwidthView()"


class SnapshotBandwidthView:
    """Link-state snapshot refreshed every ``refresh_period_s``.

    The first query takes a snapshot; subsequent queries reuse it until
    the simulated clock advances past the refresh period, at which
    point the next query re-snapshots the whole network (one flooded
    advertisement, as a link-state protocol would).

    Parameters
    ----------
    network:
        The live network to snapshot.
    clock:
        Zero-argument callable returning current simulated time.
    refresh_period_s:
        Snapshot lifetime; 0 degenerates to live information.
    """

    def __init__(
        self,
        network: Network,
        clock: Callable[[], float],
        refresh_period_s: float,
    ) -> None:
        if refresh_period_s < 0:
            raise ValueError(
                f"refresh period must be non-negative, got {refresh_period_s}"
            )
        self._network = network
        self._clock = clock
        self.refresh_period_s = refresh_period_s
        self._snapshot: dict[tuple[NodeId, NodeId], float] = {}
        self._taken_at: float = float("-inf")
        #: number of snapshots taken (advertisement count)
        self.refreshes = 0

    def _maybe_refresh(self) -> None:
        now = self._clock()
        if now - self._taken_at >= self.refresh_period_s:
            self._snapshot = self._network.snapshot_available()
            self._taken_at = now
            self.refreshes += 1

    @property
    def age_s(self) -> float:
        """Seconds since the current snapshot was taken."""
        if self.refreshes == 0:  # no snapshot yet: infinitely stale
            return float("inf")
        return self._clock() - self._taken_at

    def path_available_bps(self, path: Sequence[NodeId]) -> float:
        """Bottleneck bandwidth according to the cached snapshot."""
        self._maybe_refresh()
        if len(path) < 2:
            return float("inf")
        return min(
            self._snapshot[(u, v)] for u, v in zip(path, path[1:])
        )

    def route_available_bps(self, route: "Route") -> float:
        """Snapshot bottleneck of ``route`` via its cached link keys."""
        self._maybe_refresh()
        keys = route.link_keys()
        if not keys:
            return float("inf")
        snapshot = self._snapshot
        return min(snapshot[key] for key in keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SnapshotBandwidthView(period={self.refresh_period_s:g}s, "
            f"refreshes={self.refreshes})"
        )
