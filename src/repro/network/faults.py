"""Link faults and repairs (the paper's Section 3 extension hook).

The paper assumes a fault-free network "between any pair of nodes,
there exists at least one functioning path", noting that "our approach
can be extended to deal with the situation when this assumption does
not hold".  This module implements that extension:

* :meth:`Network`-level fault state is kept *here*, not in the links,
  so the capacity model stays untouched: a failed link simply refuses
  new reservations and reports zero available bandwidth through the
  :class:`FaultyNetworkView` wrapper.
* Flows that were traversing a failed link are killed (their
  reservations released everywhere) — the behaviour of a hard RSVP
  state timeout.
* :class:`FaultInjector` schedules random link down/up events on the
  simulation clock (exponential time-to-failure and time-to-repair),
  and notifies a callback with the flows it killed so the simulation
  can record them.

AC-routers keep their fixed routes (the paper's model); a route
through a failed link simply fails reservation, and retrial control
redirects the request to another member — which is precisely how the
DAC procedure absorbs faults without new machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Hashable,
    Iterable,
    Optional,
    Sequence,
)

from repro.network.topology import Network
from repro.sim.engine import Event, Simulator
from repro.sim.random_streams import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.network.routing import Route

NodeId = Hashable
FlowId = Hashable
LinkKey = tuple[NodeId, NodeId]


@dataclass
class FaultEvent:
    """One fault-state transition, for tracing."""

    time: float
    link: LinkKey
    failed: bool
    killed_flows: tuple[FlowId, ...] = ()


class FaultState:
    """Tracks which physical links are currently down.

    Both directions of a cable fail together (a fiber cut).  The state
    integrates with admission through :meth:`kill_flows_on`, which
    releases every reservation of the flows crossing a failed link and
    returns their identifiers so callers can tear them down end to end.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._down: set[frozenset[NodeId]] = set()
        self.events: list[FaultEvent] = []

    @staticmethod
    def _cable(u: NodeId, v: NodeId) -> frozenset[NodeId]:
        return frozenset((u, v))

    def is_down(self, u: NodeId, v: NodeId) -> bool:
        """Whether the physical cable between ``u`` and ``v`` is down."""
        return self._cable(u, v) in self._down

    def down_cables(self) -> list[tuple[NodeId, ...]]:
        """Currently failed cables as sorted node pairs."""
        return sorted(tuple(sorted(cable, key=repr)) for cable in self._down)

    def path_is_up(self, path: Sequence[NodeId]) -> bool:
        """Whether every cable along ``path`` is functioning."""
        return all(
            not self.is_down(u, v) for u, v in zip(path, path[1:])
        )

    def fail(self, u: NodeId, v: NodeId, now: float = 0.0) -> list[FlowId]:
        """Fail the cable; returns the flows whose reservations crossed it.

        The affected flows' reservations are released on *both
        directions* of the failed cable only — the caller must finish
        the teardown along the rest of each flow's route (it knows the
        routes; this module does not).
        """
        if not self.network.has_link(u, v):
            raise ValueError(f"no cable between {u!r} and {v!r}")
        cable = self._cable(u, v)
        if cable in self._down:
            return []
        self._down.add(cable)
        killed: list[FlowId] = []
        for a, b in ((u, v), (v, u)):
            if self.network.has_link(a, b):
                link = self.network.link(a, b)
                for flow_id in list(link.flows()):
                    # Iterating a snapshot of this link's own ledger:
                    # every flow in it is held here, release cannot raise.
                    link.release(flow_id)  # repro-lint: disable=R5
                    killed.append(flow_id)
        self.events.append(
            FaultEvent(time=now, link=(u, v), failed=True, killed_flows=tuple(killed))
        )
        return killed

    def repair(self, u: NodeId, v: NodeId, now: float = 0.0) -> None:
        """Bring the cable back into service."""
        cable = self._cable(u, v)
        if cable not in self._down:
            return
        self._down.discard(cable)
        self.events.append(FaultEvent(time=now, link=(u, v), failed=False))


class FaultAwareReservationEngine:
    """Reservation engine that refuses routes crossing failed cables.

    Wraps :class:`repro.core.reservation.AtomicReservationEngine`
    behaviour with a fault check, so AC-routers treat a failed link
    exactly like a saturated one — the retrial mechanism then steers
    requests to other group members, which is the paper's suggested
    fault-handling extension.
    """

    def __init__(self, network: Network, faults: FaultState) -> None:
        from repro.core.reservation import AtomicReservationEngine

        self.faults = faults
        self._inner = AtomicReservationEngine(network)

    @property
    def attempts(self) -> int:
        """Reservation attempts made."""
        return self._inner.attempts

    @property
    def failures(self) -> int:
        """Attempts refused (saturation or fault)."""
        return self._inner.failures

    def try_reserve(
        self, route: "Route", flow_id: FlowId, bandwidth_bps: float
    ) -> bool:
        """Reserve unless saturated *or* the route crosses a failure."""
        if not self.faults.path_is_up(route.path):
            self._inner.attempts += 1
            self._inner.failures += 1
            return False
        return self._inner.try_reserve(route, flow_id, bandwidth_bps)

    def release(self, path: Sequence[NodeId], flow_id: FlowId) -> None:
        """Release surviving reservations of a flow along ``path``.

        After a fault some links may already have dropped the flow, so
        this releases only where the reservation still exists.
        """
        for link in self._inner.network.path_links(path):
            link.release_if_held(flow_id)


class FaultInjector:
    """Schedules random fail/repair cycles on the simulation clock.

    Each physical cable independently alternates between up and down
    states with exponential holding times.

    Parameters
    ----------
    simulator:
        The event engine to schedule on.
    faults:
        Shared fault state.
    rng:
        Random stream for failure/repair times.
    mean_time_to_failure_s / mean_time_to_repair_s:
        Exponential means of the up and down periods.
    cables:
        The cables subject to faults (defaults to every cable).
    on_fail:
        Callback ``(cable, killed_flow_ids)`` invoked at each failure
        so the owning simulation can finish tearing down killed flows.
    """

    def __init__(
        self,
        simulator: Simulator,
        faults: FaultState,
        rng: RandomStream,
        mean_time_to_failure_s: float,
        mean_time_to_repair_s: float,
        cables: Optional[Iterable[LinkKey]] = None,
        on_fail: Optional[Callable[[LinkKey, list[FlowId]], None]] = None,
    ) -> None:
        if mean_time_to_failure_s <= 0 or mean_time_to_repair_s <= 0:
            raise ValueError("failure and repair means must be positive")
        self.simulator = simulator
        self.faults = faults
        self.rng = rng
        self.mttf = mean_time_to_failure_s
        self.mttr = mean_time_to_repair_s
        self.on_fail = on_fail
        if cables is None:
            seen: set[frozenset[NodeId]] = set()
            cables = []
            for link in faults.network.links():
                cable = frozenset((link.source, link.target))
                if cable not in seen:
                    seen.add(cable)
                    cables.append((link.source, link.target))
        self.cables = list(cables)
        self.failures_injected = 0
        self._stopped = False
        # Each cable has at most one timer armed at a time (the next
        # failure while up, the repair while down); tracked so stop()
        # can cancel them instead of leaving dead events in the
        # calendar.
        self._pending: dict[LinkKey, Event] = {}

    def start(self) -> None:
        """Arm the first failure timer of every cable."""
        self._stopped = False
        for cable in self.cables:
            self._schedule_failure(cable)

    def stop(self) -> None:
        """Cease injecting: pending fail/repair timers are cancelled.

        Without this, the injector's self-rescheduling timers keep the
        event calendar non-empty forever, so a caller that wants to
        drain remaining flow departures after the measurement horizon
        (``simulator.run()`` with no bound) would never return.
        Cancellation removes the timers outright — after ``stop()``
        the injector contributes nothing to ``pending_count`` and
        injects no further transitions.  A cable that is down when
        ``stop()`` is called *stays* down (its repair timer is
        cancelled too); repair it explicitly via ``faults.repair`` if
        the scenario needs the cable back.
        """
        self._stopped = True
        for event in self._pending.values():
            event.cancel()
        self._pending.clear()

    def _schedule_failure(self, cable: LinkKey) -> None:
        delay = self.rng.exponential(self.mttf)
        self._pending[cable] = self.simulator.schedule(
            delay, lambda: self._fail(cable)
        )

    def _fail(self, cable: LinkKey) -> None:
        self._pending.pop(cable, None)
        if self._stopped:
            return
        u, v = cable
        killed = self.faults.fail(u, v, now=self.simulator.now)
        self.failures_injected += 1
        if self.on_fail is not None:
            self.on_fail(cable, killed)
        self._pending[cable] = self.simulator.schedule(
            self.rng.exponential(self.mttr), lambda: self._repair(cable)
        )

    def _repair(self, cable: LinkKey) -> None:
        self._pending.pop(cable, None)
        u, v = cable
        self.faults.repair(u, v, now=self.simulator.now)
        if not self._stopped:
            self._schedule_failure(cable)
