"""Directed capacitated links with per-flow reservation ledgers.

The paper's network model (Section 3) gives every link a capacity that
is consumed by active anycast flows; the *available bandwidth*
``AB_l`` is what admission control checks and what the WD/D+B
destination-selection algorithm feeds on.

A physical cable is modelled as two :class:`Link` objects, one per
direction, since a flow consumes bandwidth only in its direction of
travel.  Each link keeps a ledger mapping flow identifiers to granted
bandwidth so releases are exact, double-reservations are caught, and
heterogeneous per-flow bandwidths are supported even though the
paper's experiments use a single 64 kbit/s class.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterator, Optional

FlowId = Hashable
NodeId = Hashable


class InsufficientBandwidthError(RuntimeError):
    """Raised by :meth:`Link.reserve` when the request does not fit."""


class Link:
    """A directed link from ``source`` to ``target``.

    Parameters
    ----------
    source, target:
        Endpoint node identifiers.
    capacity_bps:
        Bandwidth available to anycast flows, in bits per second.  In
        the paper's setup this is the 20 % anycast share of a
        100 Mbit/s cable, i.e. 20 Mbit/s.
    propagation_delay_s:
        One-way propagation delay, used by the RSVP-lite signalling
        model (the admission results themselves do not depend on it).
    """

    __slots__ = (
        "source",
        "target",
        "capacity_bps",
        "propagation_delay_s",
        "_reservations",
        "_reserved_bps",
        "rejections",
        "grants",
    )

    def __init__(
        self,
        source: NodeId,
        target: NodeId,
        capacity_bps: float,
        propagation_delay_s: float = 0.001,
    ):
        if capacity_bps < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity_bps}")
        if propagation_delay_s < 0:
            raise ValueError(
                f"propagation delay must be non-negative, got {propagation_delay_s}"
            )
        self.source = source
        self.target = target
        self.capacity_bps = float(capacity_bps)
        self.propagation_delay_s = float(propagation_delay_s)
        self._reservations: dict[FlowId, float] = {}
        self._reserved_bps = 0.0
        #: number of reservation attempts refused for lack of bandwidth
        self.rejections = 0
        #: number of successful reservations
        self.grants = 0

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def reserved_bps(self) -> float:
        """Total bandwidth currently reserved on this link."""
        return self._reserved_bps

    @property
    def available_bps(self) -> float:
        """Available bandwidth ``AB_l`` — capacity minus reservations."""
        return self.capacity_bps - self._reserved_bps

    @property
    def utilization(self) -> float:
        """Instantaneous fraction of capacity reserved (0 for zero-capacity)."""
        if self.capacity_bps == 0:
            return 0.0
        return self._reserved_bps / self.capacity_bps

    @property
    def flow_count(self) -> int:
        """Number of flows holding reservations."""
        return len(self._reservations)

    def holds(self, flow_id: FlowId) -> bool:
        """Whether ``flow_id`` has a reservation on this link."""
        return flow_id in self._reservations

    def reservation_of(self, flow_id: FlowId) -> float:
        """Bandwidth reserved by ``flow_id`` (0.0 if none)."""
        return self._reservations.get(flow_id, 0.0)

    def flows(self) -> Iterator[FlowId]:
        """Iterate over flow ids with active reservations."""
        return iter(self._reservations)

    # ------------------------------------------------------------------
    # reservation operations
    # ------------------------------------------------------------------
    def can_admit(self, bandwidth_bps: float) -> bool:
        """Whether ``bandwidth_bps`` fits in the available bandwidth."""
        return bandwidth_bps <= self.available_bps + 1e-9

    def reserve(self, flow_id: FlowId, bandwidth_bps: float) -> None:
        """Reserve ``bandwidth_bps`` for ``flow_id``.

        Raises
        ------
        InsufficientBandwidthError
            If the link lacks the requested bandwidth.  The rejection
            counter is incremented in that case.
        ValueError
            If the flow already holds a reservation here (a flow
            traverses a link at most once) or the amount is invalid.
        """
        if bandwidth_bps < 0:
            raise ValueError(f"bandwidth must be non-negative, got {bandwidth_bps}")
        if flow_id in self._reservations:
            raise ValueError(
                f"flow {flow_id!r} already reserved on link "
                f"{self.source}->{self.target}"
            )
        if not self.can_admit(bandwidth_bps):
            self.rejections += 1
            raise InsufficientBandwidthError(
                f"link {self.source}->{self.target}: requested "
                f"{bandwidth_bps:g} bps but only {self.available_bps:g} available"
            )
        self._reservations[flow_id] = float(bandwidth_bps)
        self._reserved_bps += float(bandwidth_bps)
        self.grants += 1

    def release(self, flow_id: FlowId) -> float:
        """Release the reservation held by ``flow_id``.

        Returns the bandwidth released.

        Raises
        ------
        KeyError
            If the flow holds no reservation on this link.
        """
        bandwidth = self._reservations.pop(flow_id)
        self._reserved_bps -= bandwidth
        if not self._reservations or self._reserved_bps < 0:
            # Snap accumulated floating-point drift: with an empty
            # ledger the reserved total is exactly zero by definition.
            self._reserved_bps = math.fsum(self._reservations.values())
        return bandwidth

    def release_if_held(self, flow_id: FlowId) -> float:
        """Release the flow's reservation if present; returns amount (or 0)."""
        if flow_id not in self._reservations:
            return 0.0
        return self.release(flow_id)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.source}->{self.target}, "
            f"{self._reserved_bps:g}/{self.capacity_bps:g} bps reserved)"
        )
