"""Directed capacitated links with per-flow reservation ledgers.

The paper's network model (Section 3) gives every link a capacity that
is consumed by active anycast flows; the *available bandwidth*
``AB_l`` is what admission control checks and what the WD/D+B
destination-selection algorithm feeds on.

A physical cable is modelled as two :class:`Link` objects, one per
direction, since a flow consumes bandwidth only in its direction of
travel.  Each link keeps a ledger mapping flow identifiers to granted
bandwidth so releases are exact, double-reservations are caught, and
heterogeneous per-flow bandwidths are supported even though the
paper's experiments use a single 64 kbit/s class.

Bandwidth *accounting*, however, does not live on the link objects:
every link in a network shares one :class:`LinkStateArrays` — a
columnar store of capacity and reserved totals indexed by a dense
integer link id assigned at construction.  The admission hot paths
(:meth:`repro.network.topology.Network.reserve_links`, the WD/D+B
bottleneck scan) read and write those flat arrays directly instead of
walking per-link attribute dicts, and vector consumers (analysis,
future thousands-node topologies) can view the whole network's state
as two contiguous double arrays.
"""

from __future__ import annotations

import math
from array import array
from typing import Hashable, Iterator, Optional

from repro import invariants as _invariants

FlowId = Hashable
NodeId = Hashable

#: Admission slack: a request fits if it exceeds the available
#: bandwidth by no more than this (absorbs benign float rounding).
ADMIT_EPSILON_BPS = 1e-9


class InsufficientBandwidthError(RuntimeError):
    """Raised by :meth:`Link.reserve` when the request does not fit."""


class LinkStateArrays:
    """Columnar bandwidth accounting for a set of links.

    One instance is shared by every link of a
    :class:`~repro.network.topology.Network`; slots are appended while
    the topology is built and the arrays are fixed-size afterwards
    (the paper's networks are static).  ``capacity[i]`` and
    ``reserved[i]`` are the capacity and reserved totals of the link
    with id ``i``; available bandwidth is always computed as
    ``capacity[i] - reserved[i]`` at read time, never maintained
    incrementally, so results are bit-identical to per-link
    accounting.

    The ``array('d')`` columns support the buffer protocol, so numpy
    consumers can wrap them zero-copy with ``numpy.frombuffer``.
    """

    __slots__ = ("capacity", "reserved")

    def __init__(self) -> None:
        self.capacity = array("d")
        self.reserved = array("d")

    def __len__(self) -> int:
        return len(self.capacity)

    def add(self, capacity_bps: float) -> int:
        """Append a slot with ``capacity_bps`` and return its link id."""
        index = len(self.capacity)
        self.capacity.append(float(capacity_bps))
        self.reserved.append(0.0)
        return index

    def available(self, index: int) -> float:
        """Available bandwidth of the link with id ``index``."""
        return self.capacity[index] - self.reserved[index]

    def available_snapshot(self) -> "array[float]":
        """A fresh ``array('d')`` of every link's available bandwidth."""
        capacity = self.capacity
        reserved = self.reserved
        return array("d", (capacity[i] - reserved[i] for i in range(len(capacity))))


class Link:
    """A directed link from ``source`` to ``target``.

    Parameters
    ----------
    source, target:
        Endpoint node identifiers.
    capacity_bps:
        Bandwidth available to anycast flows, in bits per second.  In
        the paper's setup this is the 20 % anycast share of a
        100 Mbit/s cable, i.e. 20 Mbit/s.
    propagation_delay_s:
        One-way propagation delay, used by the RSVP-lite signalling
        model (the admission results themselves do not depend on it).
    state:
        The :class:`LinkStateArrays` this link's accounting lives in;
        a network passes its shared instance.  A stand-alone link
        (constructed directly, e.g. in tests) gets a private
        single-slot store.
    """

    __slots__ = (
        "source",
        "target",
        "propagation_delay_s",
        "_reservations",
        "_state",
        "_index",
        "rejections",
        "grants",
    )

    def __init__(
        self,
        source: NodeId,
        target: NodeId,
        capacity_bps: float,
        propagation_delay_s: float = 0.001,
        state: Optional[LinkStateArrays] = None,
    ) -> None:
        if capacity_bps < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity_bps}")
        if propagation_delay_s < 0:
            raise ValueError(
                f"propagation delay must be non-negative, got {propagation_delay_s}"
            )
        self.source = source
        self.target = target
        self.propagation_delay_s = float(propagation_delay_s)
        self._state = state if state is not None else LinkStateArrays()
        self._index = self._state.add(capacity_bps)
        self._reservations: dict[FlowId, float] = {}
        #: number of reservation attempts refused for lack of bandwidth
        self.rejections = 0
        #: number of successful reservations
        self.grants = 0

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> LinkStateArrays:
        """The shared columnar store this link's accounting lives in."""
        return self._state

    @property
    def index(self) -> int:
        """Dense link id of this link within :attr:`state`."""
        return self._index

    @property
    def capacity_bps(self) -> float:
        """Link capacity in bits per second."""
        return self._state.capacity[self._index]

    @property
    def reserved_bps(self) -> float:
        """Total bandwidth currently reserved on this link."""
        return self._state.reserved[self._index]

    @property
    def available_bps(self) -> float:
        """Available bandwidth ``AB_l`` — capacity minus reservations."""
        state = self._state
        return state.capacity[self._index] - state.reserved[self._index]

    @property
    def utilization(self) -> float:
        """Instantaneous fraction of capacity reserved (0 for zero-capacity)."""
        state = self._state
        capacity = state.capacity[self._index]
        if capacity == 0:
            return 0.0
        return state.reserved[self._index] / capacity

    @property
    def flow_count(self) -> int:
        """Number of flows holding reservations."""
        return len(self._reservations)

    def holds(self, flow_id: FlowId) -> bool:
        """Whether ``flow_id`` has a reservation on this link."""
        return flow_id in self._reservations

    def reservation_of(self, flow_id: FlowId) -> float:
        """Bandwidth reserved by ``flow_id`` (0.0 if none)."""
        return self._reservations.get(flow_id, 0.0)

    def flows(self) -> Iterator[FlowId]:
        """Iterate over flow ids with active reservations."""
        return iter(self._reservations)

    # ------------------------------------------------------------------
    # reservation operations
    # ------------------------------------------------------------------
    def can_admit(self, bandwidth_bps: float) -> bool:
        """Whether ``bandwidth_bps`` fits in the available bandwidth."""
        return bandwidth_bps <= self.available_bps + ADMIT_EPSILON_BPS

    def reserve(self, flow_id: FlowId, bandwidth_bps: float) -> None:
        """Reserve ``bandwidth_bps`` for ``flow_id``.

        Raises
        ------
        InsufficientBandwidthError
            If the link lacks the requested bandwidth.  The rejection
            counter is incremented in that case.
        ValueError
            If the flow already holds a reservation here (a flow
            traverses a link at most once) or the amount is invalid.
        """
        if bandwidth_bps < 0:
            raise ValueError(f"bandwidth must be non-negative, got {bandwidth_bps}")
        if flow_id in self._reservations:
            raise ValueError(
                f"flow {flow_id!r} already reserved on link "
                f"{self.source}->{self.target}"
            )
        if not self.can_admit(bandwidth_bps):
            self.rejections += 1
            raise InsufficientBandwidthError(
                f"link {self.source}->{self.target}: requested "
                f"{bandwidth_bps:g} bps but only {self.available_bps:g} available"
            )
        self._reservations[flow_id] = float(bandwidth_bps)
        self._state.reserved[self._index] += float(bandwidth_bps)
        self.grants += 1
        if _invariants.enabled:
            _invariants.check_link(self)

    def release(self, flow_id: FlowId) -> float:
        """Release the reservation held by ``flow_id``.

        Returns the bandwidth released.

        Raises
        ------
        KeyError
            If the flow holds no reservation on this link.
        """
        bandwidth = self._reservations.pop(flow_id)
        reservations = self._reservations
        state = self._state
        index = self._index
        state.reserved[index] -= bandwidth
        if not reservations or state.reserved[index] < 0:
            # Snap accumulated floating-point drift: with an empty
            # ledger the reserved total is exactly zero by definition,
            # and it can never legitimately go negative.  Without the
            # snap, ~1e5 reserve/release cycles of unequal amounts
            # leave an idle link with available_bps slightly below
            # capacity (or slightly above — leaked capacity), enough
            # to refuse an admissible flow at full occupancy.
            state.reserved[index] = math.fsum(reservations.values())
            assert state.reserved[index] >= 0.0, (
                f"negative reserved total on link {self.source}->{self.target}"
            )
        if _invariants.enabled:
            _invariants.check_link(self)
        return bandwidth

    def release_if_held(self, flow_id: FlowId) -> float:
        """Release the flow's reservation if present; returns amount (or 0)."""
        if flow_id not in self._reservations:
            return 0.0
        return self.release(flow_id)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.source}->{self.target}, "
            f"{self.reserved_bps:g}/{self.capacity_bps:g} bps reserved)"
        )
