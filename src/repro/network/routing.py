"""Fixed-path routing and path search.

Section 3 of the paper assumes that "to one source, there is a fixed
path to each member in an anycast group", obtained from ordinary
routing protocols, and that path *length in hops* drives the biased
destination-selection algorithms.  This module provides:

* :func:`shortest_path` -- deterministic minimum-hop path (BFS with a
  lexicographic tie-break, so that repeated runs and the analytical
  model agree on the same fixed routes).
* :class:`RouteTable` -- the per-source table of fixed routes to every
  member of an anycast group.
* :func:`feasible_path` -- minimum-hop path restricted to links with
  sufficient available bandwidth, used by the GDI baseline's
  exhaustive global search.
* :func:`k_shortest_paths` -- loop-free k-shortest paths (Yen's
  algorithm) used in ablation studies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence

from repro.network.link import Link
from repro.network.topology import Network, NetworkError

NodeId = Hashable


def _sorted_neighbors(network: Network, node: NodeId) -> list[NodeId]:
    """Out-neighbors in a stable, repeatable order."""
    return sorted(network.neighbors(node), key=repr)


def shortest_path(
    network: Network,
    source: NodeId,
    target: NodeId,
    min_available_bps: Optional[float] = None,
) -> Optional[list[NodeId]]:
    """Deterministic minimum-hop path from ``source`` to ``target``.

    Breadth-first search expanding neighbors in sorted order, so among
    equal-hop paths the lexicographically smallest (by node repr) is
    returned.  If ``min_available_bps`` is given, only links with at
    least that much available bandwidth are traversed — this variant
    implements the GDI baseline's feasibility search.

    Returns the node list (``[source, ..., target]``) or ``None`` if
    unreachable.
    """
    if not network.has_node(source):
        raise NetworkError(f"unknown source node {source!r}")
    if not network.has_node(target):
        raise NetworkError(f"unknown target node {target!r}")
    if source == target:
        return [source]
    parents: dict[NodeId, NodeId] = {source: source}
    frontier: deque[NodeId] = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in _sorted_neighbors(network, node):
            if neighbor in parents:
                continue
            if min_available_bps is not None:
                link = network.link(node, neighbor)
                if link.available_bps + 1e-9 < min_available_bps:
                    continue
            parents[neighbor] = node
            if neighbor == target:
                return _reconstruct(parents, source, target)
            frontier.append(neighbor)
    return None


def feasible_path(
    network: Network, source: NodeId, target: NodeId, bandwidth_bps: float
) -> Optional[list[NodeId]]:
    """Minimum-hop path using only links that can admit ``bandwidth_bps``.

    This is the primitive behind the GDI baseline: the admission
    succeeds iff such a path exists to *some* group member.
    """
    return shortest_path(network, source, target, min_available_bps=bandwidth_bps)


def _reconstruct(
    parents: dict[NodeId, NodeId], source: NodeId, target: NodeId
) -> list[NodeId]:
    path = [target]
    node = target
    while node != source:
        node = parents[node]
        path.append(node)
    path.reverse()
    return path


def all_shortest_path_lengths(network: Network, source: NodeId) -> dict[NodeId, int]:
    """Hop distance from ``source`` to every reachable node (BFS)."""
    if not network.has_node(source):
        raise NetworkError(f"unknown source node {source!r}")
    distances = {source: 0}
    frontier: deque[NodeId] = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in _sorted_neighbors(network, node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                frontier.append(neighbor)
    return distances


def k_shortest_paths(
    network: Network, source: NodeId, target: NodeId, k: int
) -> list[list[NodeId]]:
    """Yen's algorithm: up to ``k`` loop-free minimum-hop paths.

    Paths are ordered by (hop count, lexicographic).  Used by the
    multipath ablation of the GDI baseline.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    first = shortest_path(network, source, target)
    if first is None:
        return []
    paths = [first]
    candidates: list[tuple[int, list[str], list[NodeId]]] = []
    seen = {tuple(first)}
    while len(paths) < k:
        previous = paths[-1]
        for i in range(len(previous) - 1):
            spur_node = previous[i]
            root = previous[: i + 1]
            removed_links: set[tuple[NodeId, NodeId]] = set()
            for path in paths:
                if len(path) > i and path[: i + 1] == root:
                    removed_links.add((path[i], path[i + 1]))
            banned_nodes = set(root[:-1])
            spur = _restricted_bfs(network, spur_node, target, banned_nodes, removed_links)
            if spur is not None:
                candidate = root[:-1] + spur
                key = tuple(candidate)
                if key not in seen:
                    seen.add(key)
                    candidates.append(
                        (len(candidate), [repr(n) for n in candidate], candidate)
                    )
        if not candidates:
            break
        candidates.sort(key=lambda item: (item[0], item[1]))
        paths.append(candidates.pop(0)[2])
    return paths


def _restricted_bfs(
    network: Network,
    source: NodeId,
    target: NodeId,
    banned_nodes: set[NodeId],
    banned_links: set[tuple[NodeId, NodeId]],
) -> Optional[list[NodeId]]:
    """BFS avoiding given nodes and directed links (helper for Yen)."""
    if source == target:
        return [source]
    parents = {source: source}
    frontier: deque[NodeId] = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in _sorted_neighbors(network, node):
            if neighbor in parents or neighbor in banned_nodes:
                continue
            if (node, neighbor) in banned_links:
                continue
            parents[neighbor] = node
            if neighbor == target:
                return _reconstruct(parents, source, target)
            frontier.append(neighbor)
    return None


@dataclass(frozen=True)
class Route:
    """A fixed route from a source to one anycast-group member.

    Routes are static once built (the paper's fixed-path assumption),
    so the directed :class:`~repro.network.link.Link` objects and the
    ``(u, v)`` key pairs of the path are resolved once and cached —
    the reservation and bandwidth-view hot paths would otherwise
    repeat the per-hop dict lookups on every admission attempt.

    Attributes
    ----------
    source:
        Origin node.
    destination:
        The anycast group member this route leads to.
    path:
        Node sequence ``(source, ..., destination)``.
    """

    source: NodeId
    destination: NodeId
    path: tuple[NodeId, ...]
    _links: Optional[tuple[Link, ...]] = field(
        default=None, compare=False, repr=False
    )
    _links_network: Optional[Network] = field(
        default=None, compare=False, repr=False
    )
    _link_keys: Optional[tuple[tuple[NodeId, NodeId], ...]] = field(
        default=None, compare=False, repr=False
    )
    _link_indices: Optional[tuple[int, ...]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def distance(self) -> int:
        """Route distance ``D_i``: number of hops (links) on the path.

        A degenerate route from a node to itself has distance 0.
        """
        return max(0, len(self.path) - 1)

    def resolve_links(self, network: Network) -> tuple[Link, ...]:
        """Directed link objects of the path, cached per network.

        The cache is keyed by network identity, so a route queried
        against a different network instance re-resolves (and re-caches
        for that instance).
        """
        if self._links is not None and self._links_network is network:
            return self._links
        links = tuple(network.path_links(self.path))
        object.__setattr__(self, "_links", links)
        object.__setattr__(self, "_links_network", network)
        object.__setattr__(
            self, "_link_indices", tuple(link.index for link in links)
        )
        return links

    def resolve_link_indices(self, network: Network) -> tuple[int, ...]:
        """Dense link ids of the path within ``network.link_state``.

        Cached alongside :meth:`resolve_links`; the WD/D+B bottleneck
        scan and the reservation hot path index the network's columnar
        :class:`~repro.network.link.LinkStateArrays` with these.
        """
        if self._link_indices is not None and self._links_network is network:
            return self._link_indices
        self.resolve_links(network)
        indices = self._link_indices
        assert indices is not None  # resolve_links always fills the cache
        return indices

    def link_keys(self) -> tuple[tuple[NodeId, NodeId], ...]:
        """Directed ``(u, v)`` pairs of the path, cached."""
        keys = self._link_keys
        if keys is None:
            keys = tuple(zip(self.path, self.path[1:]))
            object.__setattr__(self, "_link_keys", keys)
        return keys

    def bottleneck_bps(self, network: Network) -> float:
        """Route bandwidth ``B_i = min over links of AB_l`` (eq. 11).

        Reads the network's flat state arrays directly: one subtract
        and compare per hop, no per-link attribute walks.
        """
        indices = self.resolve_link_indices(network)
        if not indices:
            return float("inf")
        state = network.link_state
        capacity = state.capacity
        reserved = state.reserved
        best = float("inf")
        for i in indices:
            available = capacity[i] - reserved[i]
            if available < best:
                best = available
        return best

    def __str__(self) -> str:
        return "->".join(str(node) for node in self.path)


class RouteTable:
    """Fixed routes from one source to every member of an anycast group.

    Built once from shortest paths (the "existing routing protocols" of
    Section 3) and then treated as static, exactly as the paper
    assumes.  The table preserves the member order of the group.
    """

    def __init__(
        self, network: Network, source: NodeId, members: Sequence[NodeId]
    ) -> None:
        if not members:
            raise NetworkError("anycast group must have at least one member")
        self.source = source
        self._routes: dict[NodeId, Route] = {}
        ordered: list[NodeId] = []
        for member in members:
            path = shortest_path(network, source, member)
            if path is None:
                raise NetworkError(
                    f"no path from {source!r} to group member {member!r}"
                )
            route = Route(source=source, destination=member, path=tuple(path))
            # Warm the per-route link cache against the owning network
            # so the admission hot path never resolves hops again.
            route.resolve_links(network)
            route.link_keys()
            self._routes[member] = route
            ordered.append(member)
        self.members: tuple[NodeId, ...] = tuple(ordered)
        self._route_list: list[Route] = [self._routes[m] for m in self.members]

    def route_to(self, member: NodeId) -> Route:
        """The fixed route to ``member``."""
        try:
            return self._routes[member]
        except KeyError:
            raise NetworkError(f"{member!r} is not a group member") from None

    def routes(self) -> list[Route]:
        """All routes, in group-member order."""
        return list(self._route_list)

    def distances(self) -> list[int]:
        """Route distances ``D_1..D_K`` in member order."""
        return [self._routes[member].distance for member in self.members]

    def shortest_member(self) -> NodeId:
        """The member with the minimum route distance (ties: first in
        member order), i.e. the destination the SP baseline always picks."""
        best = self.members[0]
        best_distance = self._routes[best].distance
        for member in self.members[1:]:
            distance = self._routes[member].distance
            if distance < best_distance:
                best, best_distance = member, distance
        return best

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RouteTable(source={self.source!r}, members={self.members})"
