"""Canned topologies, including the paper's 19-node MCI backbone.

The paper evaluates on "the MCI ISP backbone network" with 19 router
nodes (its Figure 2 shows the map but the edge list is not published).
:func:`mci_backbone` encodes the 19-node MCI Internet backbone commonly
used in the QoS-routing literature of the same era; see DESIGN.md for
the substitution note.  Additional generators (NSFNET, grid, line,
star, Waxman random graphs) support the robustness ablations.

All generators return a fresh :class:`repro.network.topology.Network`
whose links carry ``capacity_bps`` in *each direction*.  The paper's
default is 100 Mbit/s cables with 20 % reserved for anycast flows,
i.e. ``capacity_bps=20_000_000`` from the admission controller's point
of view; helpers below default to that value.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.network.topology import Network
from repro.sim.random_streams import StreamFactory

#: Raw cable speed in the paper's experiments (bits per second).
LINK_CAPACITY_BPS = 100_000_000
#: Fraction of each cable reserved for anycast flows.
ANYCAST_SHARE = 0.20
#: Bandwidth available to anycast flows on every link (bits per second).
ANYCAST_CAPACITY_BPS = LINK_CAPACITY_BPS * ANYCAST_SHARE
#: Per-flow bandwidth requirement (bits per second).
FLOW_BANDWIDTH_BPS = 64_000
#: Anycast link capacity expressed in 64 kbit/s trunk slots.
TRUNKS_PER_LINK = int(ANYCAST_CAPACITY_BPS // FLOW_BANDWIDTH_BPS)

#: Edge list of the 19-node MCI Internet backbone used for Figure 2.
#: Node identifiers are 0..18 so the paper's "routers with odd
#: identification numbers" (sources) and the anycast group at routers
#: {0, 4, 8, 12, 16} are well defined.
MCI_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 2), (0, 18),
    (1, 2), (1, 3),
    (2, 4), (2, 17),
    (3, 4), (3, 5),
    (4, 6), (4, 15),
    (5, 6), (5, 7), (5, 12),
    (6, 8), (6, 13),
    (7, 8), (7, 9),
    (8, 10), (8, 11),
    (9, 10), (9, 11),
    (10, 12),
    (11, 12), (11, 13),
    (12, 14),
    (13, 14), (13, 15),
    (14, 16),
    (15, 16), (15, 17),
    (16, 18),
    (17, 18),
)

#: Sources in the paper's traffic model: hosts at odd-ID routers.
MCI_SOURCES: tuple[int, ...] = tuple(range(1, 19, 2))
#: The paper's anycast group: hosts at routers 0, 4, 8, 12 and 16.
MCI_GROUP_MEMBERS: tuple[int, ...] = (0, 4, 8, 12, 16)


def _build(
    name: str,
    edges: Sequence[tuple[int, int]],
    capacity_bps: float,
    propagation_delay_s: float,
) -> Network:
    network = Network(name=name)
    for u, v in edges:
        network.add_link(
            u, v, capacity_bps=capacity_bps, propagation_delay_s=propagation_delay_s
        )
    return network


def mci_backbone(
    capacity_bps: float = ANYCAST_CAPACITY_BPS,
    propagation_delay_s: float = 0.005,
) -> Network:
    """The 19-node MCI ISP backbone of the paper's evaluation (Fig. 2).

    Parameters
    ----------
    capacity_bps:
        Per-direction link capacity visible to anycast admission
        control.  Defaults to the paper's 20 % share of 100 Mbit/s.
    propagation_delay_s:
        One-way link delay for the signalling model.
    """
    return _build("mci-backbone", MCI_EDGES, capacity_bps, propagation_delay_s)


#: Edge list of the classic 14-node NSFNET T1 backbone.
NSFNET_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 2), (0, 7),
    (1, 2), (1, 3),
    (2, 5),
    (3, 4), (3, 10),
    (4, 5), (4, 6),
    (5, 8), (5, 12),
    (6, 7),
    (7, 9),
    (8, 9), (8, 11),
    (9, 10), (9, 13),
    (10, 11), (10, 12),
    (11, 13),
    (12, 13),
)


def nsfnet(
    capacity_bps: float = ANYCAST_CAPACITY_BPS,
    propagation_delay_s: float = 0.005,
) -> Network:
    """The 14-node NSFNET backbone, used for topology-robustness runs."""
    return _build("nsfnet", NSFNET_EDGES, capacity_bps, propagation_delay_s)


def line(
    n: int,
    capacity_bps: float = ANYCAST_CAPACITY_BPS,
    propagation_delay_s: float = 0.001,
) -> Network:
    """A line of ``n`` nodes 0-1-...-(n-1); handy for exact unit tests."""
    if n < 2:
        raise ValueError(f"line needs >= 2 nodes, got {n}")
    edges = [(i, i + 1) for i in range(n - 1)]
    return _build(f"line-{n}", edges, capacity_bps, propagation_delay_s)


def star(
    leaves: int,
    capacity_bps: float = ANYCAST_CAPACITY_BPS,
    propagation_delay_s: float = 0.001,
) -> Network:
    """A star: hub node 0 joined to leaves 1..``leaves``.

    Stars make blocking exactly Erlang-B per spoke, which the analysis
    tests exploit.
    """
    if leaves < 1:
        raise ValueError(f"star needs >= 1 leaf, got {leaves}")
    edges = [(0, i) for i in range(1, leaves + 1)]
    return _build(f"star-{leaves}", edges, capacity_bps, propagation_delay_s)


def grid(
    rows: int,
    cols: int,
    capacity_bps: float = ANYCAST_CAPACITY_BPS,
    propagation_delay_s: float = 0.001,
) -> Network:
    """A ``rows`` x ``cols`` mesh; node id of cell (r, c) is r*cols + c."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid needs positive dimensions, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return _build(f"grid-{rows}x{cols}", edges, capacity_bps, propagation_delay_s)


#: Edge list of the 11-node Abilene (Internet2) backbone.
ABILENE_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1),   # Seattle - Sunnyvale
    (0, 2),   # Seattle - Denver
    (1, 2),   # Sunnyvale - Denver
    (1, 3),   # Sunnyvale - Los Angeles
    (2, 4),   # Denver - Kansas City
    (3, 5),   # Los Angeles - Houston
    (4, 5),   # Kansas City - Houston
    (4, 6),   # Kansas City - Indianapolis
    (5, 7),   # Houston - Atlanta
    (6, 7),   # Indianapolis - Atlanta
    (6, 8),   # Indianapolis - Chicago
    (7, 9),   # Atlanta - Washington DC
    (8, 9),   # Chicago - Washington DC
    (8, 10),  # Chicago - New York
    (9, 10),  # Washington DC - New York
)


def abilene(
    capacity_bps: float = ANYCAST_CAPACITY_BPS,
    propagation_delay_s: float = 0.008,
) -> Network:
    """The 11-node Abilene (Internet2) backbone."""
    return _build("abilene", ABILENE_EDGES, capacity_bps, propagation_delay_s)


def ring(
    n: int,
    capacity_bps: float = ANYCAST_CAPACITY_BPS,
    propagation_delay_s: float = 0.001,
) -> Network:
    """A cycle of ``n`` nodes; the minimal two-path topology."""
    if n < 3:
        raise ValueError(f"ring needs >= 3 nodes, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _build(f"ring-{n}", edges, capacity_bps, propagation_delay_s)


def binary_tree(
    depth: int,
    capacity_bps: float = ANYCAST_CAPACITY_BPS,
    propagation_delay_s: float = 0.001,
) -> Network:
    """A complete binary tree of the given ``depth`` (root id 0).

    Node ``i`` has children ``2i+1`` and ``2i+2``; a depth-``d`` tree
    has ``2**(d+1) - 1`` nodes.  Trees have unique paths, which makes
    admission decisions fully determined by link state — useful for
    exact unit tests.
    """
    if depth < 1:
        raise ValueError(f"tree depth must be >= 1, got {depth}")
    node_count = 2 ** (depth + 1) - 1
    edges = []
    for parent in range((node_count - 1) // 2):
        for child in (2 * parent + 1, 2 * parent + 2):
            if child < node_count:
                edges.append((parent, child))
    return _build(f"tree-{depth}", edges, capacity_bps, propagation_delay_s)


def dumbbell(
    side: int,
    bottleneck_capacity_bps: float,
    capacity_bps: float = ANYCAST_CAPACITY_BPS,
    propagation_delay_s: float = 0.001,
) -> Network:
    """Two stars joined by one thin bottleneck link.

    ``side`` leaves hang off each hub; hubs are ``0`` (left) and ``1``
    (right); left leaves are ``10..10+side-1``, right leaves
    ``100..100+side-1``.  The canonical topology for studying how
    destination selection shields a scarce core link.
    """
    if side < 1:
        raise ValueError(f"dumbbell needs >= 1 leaf per side, got {side}")
    network = Network(f"dumbbell-{side}")
    network.add_link(0, 1, capacity_bps=bottleneck_capacity_bps,
                     propagation_delay_s=propagation_delay_s)
    for i in range(side):
        network.add_link(0, 10 + i, capacity_bps=capacity_bps,
                         propagation_delay_s=propagation_delay_s)
        network.add_link(1, 100 + i, capacity_bps=capacity_bps,
                         propagation_delay_s=propagation_delay_s)
    return network


def waxman_random(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.6,
    seed: int = 0,
    capacity_bps: float = ANYCAST_CAPACITY_BPS,
    propagation_delay_s: float = 0.001,
) -> Network:
    """A connected Waxman random topology on ``n`` nodes.

    Nodes are placed uniformly in the unit square; an edge (u, v) is
    added with probability ``alpha * exp(-d(u,v) / (beta * sqrt(2)))``.
    A deterministic spanning chain over the node order is added first
    so the result is always connected (standard practice for
    simulation topologies).

    Parameters
    ----------
    n:
        Number of nodes (>= 2).
    alpha:
        Edge-density parameter in (0, 1].
    beta:
        Distance-decay parameter in (0, 1].
    seed:
        Seed for node placement and edge sampling.
    """
    if n < 2:
        raise ValueError(f"waxman graph needs >= 2 nodes, got {n}")
    if not 0 < alpha <= 1 or not 0 < beta <= 1:
        raise ValueError(f"alpha and beta must be in (0, 1], got {alpha}, {beta}")
    stream = StreamFactory(seed).stream("waxman")
    positions = [(stream.uniform(), stream.uniform()) for _ in range(n)]
    max_distance = math.sqrt(2.0)
    edges: list[tuple[int, int]] = [(i, i + 1) for i in range(n - 1)]
    existing = set(edges)
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) in existing:
                continue
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            distance = math.hypot(dx, dy)
            probability = alpha * math.exp(-distance / (beta * max_distance))
            if stream.uniform() < probability:
                edges.append((u, v))
                existing.add((u, v))
    network = _build(f"waxman-{n}-s{seed}", edges, capacity_bps, propagation_delay_s)
    for node, (x, y) in enumerate(positions):
        network.node_attributes(node)["pos"] = (x, y)
    return network
