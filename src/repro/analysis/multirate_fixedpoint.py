"""Multirate reduced-load fixed point.

Combines the two analysis layers of this package: the reduced-load
thinning of Appendix A.2 (link blocking coupled across a network) and
the Kaufman-Roberts recursion of :mod:`repro.analysis.multirate`
(per-class blocking on a shared link).  The result analyzes anycast
admission for *heterogeneous* bandwidth classes — e.g. the mixed rates
produced by the paper's Section 6 delay-to-bandwidth mapping — which
the single-rate model cannot express.

Model
-----
Each offered route now carries a *class* ``k`` with slot demand
``b_k``.  Under link independence, class ``k``'s thinned load on link
``l`` sums route loads thinned by the *class-specific* blocking of the
other links (eq. 18 generalized):

    v_{l,k} = sum_{routes r of class k containing l}
                rho_r * prod_{m in r, m != l} (1 - B_{m,k})

and the per-class link blocking comes from Kaufman-Roberts:

    (B_{l,1}, ..., B_{l,K}) = KR(C_l, {(v_{l,k}, b_k)})

iterated (with damping) to a fixed point.  For one single-slot class
this degenerates exactly to :class:`repro.analysis.fixedpoint.
ReducedLoadSolver` with Erlang-B, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.analysis.multirate import TrafficClass, class_blocking

LinkKey = Hashable


@dataclass(frozen=True)
class ClassedRouteLoad:
    """One route of one traffic class with its offered intensity.

    Attributes
    ----------
    links:
        Directed link keys the route traverses.
    load_erlangs:
        Offered intensity of this (route, class) pair.
    slots:
        Capacity slots each flow of the class holds.
    class_name:
        Label for per-class reporting.
    """

    links: tuple[LinkKey, ...]
    load_erlangs: float
    slots: int
    class_name: str = ""

    def __post_init__(self) -> None:
        if self.load_erlangs < 0:
            raise ValueError(
                f"route load must be non-negative, got {self.load_erlangs}"
            )
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        if len(set(self.links)) != len(self.links):
            raise ValueError(f"route visits a link twice: {self.links}")


@dataclass(frozen=True)
class MultirateFixedPointSolution:
    """Converged per-link, per-class blocking.

    Attributes
    ----------
    link_class_blocking:
        ``{link: {class_name: B}}``.
    iterations:
        Fixed-point iterations executed.
    converged:
        Whether the max-norm change met the tolerance.
    """

    link_class_blocking: dict[LinkKey, dict[str, float]]
    iterations: int
    converged: bool

    def route_rejection(self, links: Sequence[LinkKey], class_name: str) -> float:
        """Rejection probability of a route for one class (eq. 17)."""
        passing = 1.0
        for link in links:
            passing *= 1.0 - self.link_class_blocking[link][class_name]
        return 1.0 - passing


class MultirateReducedLoadSolver:
    """Fixed point over per-class link blocking probabilities.

    Parameters
    ----------
    capacities:
        Slot capacity per link key.
    routes:
        Offered (route, class) loads.  Class identity is the
        ``(class_name, slots)`` pair; using one name with two slot
        demands is rejected.
    damping, tolerance, max_iterations:
        As in the single-rate solver.
    """

    def __init__(
        self,
        capacities: Mapping[LinkKey, int],
        routes: Sequence[ClassedRouteLoad],
        damping: float = 0.5,
        tolerance: float = 1e-9,
        max_iterations: int = 10_000,
    ) -> None:
        if not 0 < damping <= 1:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        slots_by_class: dict[str, int] = {}
        for route in routes:
            for link in route.links:
                if link not in capacities:
                    raise KeyError(f"route references unknown link {link!r}")
            known = slots_by_class.get(route.class_name)
            if known is not None and known != route.slots:
                raise ValueError(
                    f"class {route.class_name!r} used with slot demands "
                    f"{known} and {route.slots}"
                )
            slots_by_class[route.class_name] = route.slots
        self.capacities = dict(capacities)
        self.routes = list(routes)
        self.class_names = sorted(slots_by_class)
        self.slots_by_class = slots_by_class
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self._routes_by_link: dict[LinkKey, list[ClassedRouteLoad]] = {
            link: [] for link in self.capacities
        }
        for route in self.routes:
            for link in route.links:
                self._routes_by_link[link].append(route)

    def _thinned_loads(
        self, blocking: Mapping[LinkKey, Mapping[str, float]]
    ) -> dict[LinkKey, dict[str, float]]:
        """Per-link, per-class thinned loads under current blocking."""
        loads: dict[LinkKey, dict[str, float]] = {}
        for link, routes in self._routes_by_link.items():
            per_class = {name: 0.0 for name in self.class_names}
            for route in routes:
                thinned = route.load_erlangs
                for other in route.links:
                    if other != link:
                        thinned *= 1.0 - blocking[other][route.class_name]
                per_class[route.class_name] += thinned
            loads[link] = per_class
        return loads

    def solve(self) -> MultirateFixedPointSolution:
        """Iterate to the per-class fixed point."""
        blocking = {
            link: {name: 0.0 for name in self.class_names}
            for link in self.capacities
        }
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            loads = self._thinned_loads(blocking)
            new_blocking: dict[LinkKey, dict[str, float]] = {}
            delta = 0.0
            for link, capacity in self.capacities.items():
                classes = [
                    TrafficClass(
                        load_erlangs=loads[link][name],
                        slots=self.slots_by_class[name],
                        name=name,
                    )
                    for name in self.class_names
                ]
                raw = class_blocking(capacity, classes)
                per_class: dict[str, float] = {}
                for name, value in zip(self.class_names, raw):
                    mixed = (
                        self.damping * value
                        + (1.0 - self.damping) * blocking[link][name]
                    )
                    per_class[name] = mixed
                    delta = max(delta, abs(mixed - blocking[link][name]))
                new_blocking[link] = per_class
            blocking = new_blocking
            if delta < self.tolerance:
                converged = True
                break
        return MultirateFixedPointSolution(
            link_class_blocking=blocking,
            iterations=iterations,
            converged=converged,
        )
