"""Mathematical analysis of admission probability (paper Appendix A).

The paper computes admission probabilities analytically with the
classic reduced-load (Erlang fixed-point) method for loss networks:

* :mod:`repro.analysis.erlang` -- the link-level blocking function
  ``L(v, C)``: exact Erlang-B and the Uniform Asymptotic Approximation
  (UAA) the paper uses (eqs. 23-29).
* :mod:`repro.analysis.fixedpoint` -- the fixed-point iteration over
  link blocking probabilities under the link-independence assumption
  (eqs. 18-22).
* :mod:`repro.analysis.admission` -- system-level admission
  probability (eq. 15) for ``<ED,1>`` and ``SP`` as in the appendix,
  plus the documented extension to static-weight systems with
  retrials.
"""

from repro.analysis.admission import (
    AnalysisResult,
    analyze_system,
    build_route_loads,
)
from repro.analysis.erlang import erlang_b, erlang_b_inverse_load, uaa_blocking
from repro.analysis.fixedpoint import FixedPointSolution, ReducedLoadSolver, RouteLoad
from repro.analysis.multirate import (
    MultirateLinkReport,
    TrafficClass,
    analyze_link,
    class_blocking,
    occupancy_distribution,
)
from repro.analysis.multirate_fixedpoint import (
    ClassedRouteLoad,
    MultirateFixedPointSolution,
    MultirateReducedLoadSolver,
)
from repro.analysis.planning import max_arrival_rate, required_capacity

__all__ = [
    "AnalysisResult",
    "ClassedRouteLoad",
    "FixedPointSolution",
    "MultirateFixedPointSolution",
    "MultirateLinkReport",
    "MultirateReducedLoadSolver",
    "ReducedLoadSolver",
    "RouteLoad",
    "TrafficClass",
    "analyze_link",
    "analyze_system",
    "build_route_loads",
    "class_blocking",
    "erlang_b",
    "erlang_b_inverse_load",
    "max_arrival_rate",
    "occupancy_distribution",
    "required_capacity",
    "uaa_blocking",
]
