"""Capacity planning on top of the admission-probability analysis.

Once admission probability can be computed analytically (Appendix A),
two operational questions become cheap to answer without simulation:

* :func:`max_arrival_rate` -- the largest request rate a deployment
  sustains while keeping AP at or above a target (an *admission-region*
  boundary point);
* :func:`required_capacity` -- the smallest per-link anycast capacity
  (in flow slots) that meets a target AP at a given demand.

Both are monotone in their search variable, so bisection on the
fixed-point analysis solves them to any precision.  These are the
planning tools an operator of the paper's system would actually need
when sizing the "20 % of link bandwidth reserved for anycast flows".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.analysis.admission import analyze_system
from repro.core.system import SystemSpec
from repro.flows.traffic import WorkloadSpec
from repro.network.topology import Network


def _ap_at_rate(
    network: Network, workload: WorkloadSpec, spec: SystemSpec, rate: float
) -> float:
    scaled = replace(workload, arrival_rate=rate)
    return analyze_system(network, scaled, spec).admission_probability


def max_arrival_rate(
    network: Network,
    workload: WorkloadSpec,
    spec: SystemSpec,
    target_ap: float,
    rate_upper_bound: float = 10_000.0,
    tolerance: float = 1e-3,
) -> float:
    """Largest arrival rate keeping analytical AP >= ``target_ap``.

    Parameters
    ----------
    network:
        The (unloaded) network.
    workload:
        Template workload; its ``arrival_rate`` is the search variable.
    spec:
        System under test (must be analyzable: ED, WD/D or SP).
    target_ap:
        Required admission probability in (0, 1].
    rate_upper_bound:
        Upper end of the bisection bracket.
    tolerance:
        Absolute rate tolerance of the answer.

    Returns
    -------
    float
        The boundary rate; 0.0 if even vanishing load misses the target
        (impossible for targets <= 1), ``rate_upper_bound`` if the
        target holds across the whole bracket.
    """
    if not 0.0 < target_ap <= 1.0:
        raise ValueError(f"target AP must be in (0, 1], got {target_ap}")
    if rate_upper_bound <= 0:
        raise ValueError(f"rate bound must be positive, got {rate_upper_bound}")
    low = 0.0
    high = rate_upper_bound
    if _ap_at_rate(network, workload, spec, high) >= target_ap:
        return high
    # AP(0+) == 1 >= target, AP(high) < target: bisect the crossing.
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if mid == 0.0:
            break
        if _ap_at_rate(network, workload, spec, mid) >= target_ap:
            low = mid
        else:
            high = mid
    return low


def required_capacity(
    network_builder: Callable[[float], Network],
    workload: WorkloadSpec,
    spec: SystemSpec,
    target_ap: float,
    max_slots: int = 100_000,
) -> int:
    """Smallest per-link capacity (in flow slots) meeting ``target_ap``.

    Parameters
    ----------
    network_builder:
        Callable mapping a per-link capacity in bits/s to a fresh
        network (e.g. ``lambda c: mci_backbone(capacity_bps=c)``).
    workload:
        The fixed demand.
    spec:
        System under test (analyzable algorithms only).
    target_ap:
        Required admission probability in (0, 1].
    max_slots:
        Search ceiling; a ValueError is raised if even this capacity
        misses the target.

    Returns
    -------
    int
        Minimum number of ``workload.bandwidth_bps`` slots per link.
    """
    if not 0.0 < target_ap <= 1.0:
        raise ValueError(f"target AP must be in (0, 1], got {target_ap}")
    if max_slots < 1:
        raise ValueError(f"max slots must be >= 1, got {max_slots}")

    def ap_with_slots(slots: int) -> float:
        network = network_builder(slots * workload.bandwidth_bps)
        return analyze_system(network, workload, spec).admission_probability

    if ap_with_slots(max_slots) < target_ap:
        raise ValueError(
            f"target AP {target_ap} unreachable even with {max_slots} slots"
        )
    low, high = 0, max_slots  # AP(low) < target <= AP(high)
    if ap_with_slots(1) >= target_ap:
        return 1
    low = 1
    while high - low > 1:
        mid = (low + high) // 2
        if ap_with_slots(mid) >= target_ap:
            high = mid
        else:
            low = mid
    return high
