"""Reduced-load fixed point over link blocking probabilities.

Implements Appendix A.2 of the paper.  Under the link-independence
assumption, the offered load on link ``l`` is "thinned" by the
blocking of every other link on each route through it (eq. 18):

    v_l = sum_{routes r containing l} rho_r * prod_{m in r, m != l} (1 - B_m)

and the blocking of link ``l`` follows from the blocking function
(eq. 19): ``B_l = L(v_l, C_l)``.  Equations 21-22 iterate the pair
until convergence; this module adds optional damping (a convex
combination of successive iterates), which guarantees progress on the
rare oscillating instances without changing the fixed point.

Route-level rejection then follows from eq. 17:

    L_r = 1 - prod_{l in r} (1 - B_l)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from repro.analysis.erlang import erlang_b

LinkKey = Hashable
#: signature of the link blocking function L(load_erlangs, capacity)
BlockingFunction = Callable[[float, int], float]


@dataclass(frozen=True)
class RouteLoad:
    """One route and its offered traffic intensity.

    Attributes
    ----------
    links:
        The directed links the route traverses (any hashable keys,
        typically ``(u, v)`` node pairs).  May be empty for a
        zero-hop route, which is never blocked.
    load_erlangs:
        Offered intensity ``rho_r = lambda_r / mu`` on this route.
    """

    links: tuple
    load_erlangs: float

    def __post_init__(self):
        if self.load_erlangs < 0:
            raise ValueError(
                f"route load must be non-negative, got {self.load_erlangs}"
            )
        if len(set(self.links)) != len(self.links):
            raise ValueError(f"route visits a link twice: {self.links}")


@dataclass(frozen=True)
class FixedPointSolution:
    """Solution of the reduced-load fixed point.

    Attributes
    ----------
    link_blocking:
        ``B_l`` per link key.
    link_load:
        The converged thinned loads ``v_l``.
    iterations:
        Iterations executed.
    converged:
        Whether the max-norm change fell below the tolerance.
    """

    link_blocking: dict
    link_load: dict
    iterations: int
    converged: bool

    def route_rejection(self, links: Sequence[LinkKey]) -> float:
        """Rejection probability of a route over ``links`` (eq. 17)."""
        passing = 1.0
        for link in links:
            passing *= 1.0 - self.link_blocking[link]
        return 1.0 - passing


class ReducedLoadSolver:
    """Solves the Erlang fixed point for a set of loaded routes.

    Parameters
    ----------
    capacities:
        Trunk capacity ``C_l`` per link key.  Every link referenced by
        a route must appear here.
    routes:
        The offered routes with their intensities.
    blocking_function:
        ``L(v, C)``; defaults to exact Erlang-B.  Pass
        :func:`repro.analysis.erlang.uaa_blocking` to reproduce the
        paper's computational pathway (the ablation bench compares
        both; results differ by well under one percent).
    damping:
        Weight of the new iterate in the update, in (0, 1].  Plain
        successive substitution (1.0) is what the paper describes, but
        it 2-cycles on heavily loaded instances (a well-known property
        of the Erlang fixed point); the default 0.5 converges on every
        instance in the evaluation without changing the fixed point.
    tolerance:
        Max-norm convergence threshold on blocking probabilities.
    max_iterations:
        Iteration cap.
    """

    def __init__(
        self,
        capacities: Mapping[LinkKey, int],
        routes: Sequence[RouteLoad],
        blocking_function: BlockingFunction = erlang_b,
        damping: float = 0.5,
        tolerance: float = 1e-10,
        max_iterations: int = 10_000,
    ):
        if not 0 < damping <= 1:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        for route in routes:
            for link in route.links:
                if link not in capacities:
                    raise KeyError(f"route references unknown link {link!r}")
        for link, capacity in capacities.items():
            if capacity < 0:
                raise ValueError(f"link {link!r} has negative capacity {capacity}")
        self.capacities = dict(capacities)
        self.routes = list(routes)
        self.blocking_function = blocking_function
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        # Pre-index which routes traverse each link.
        self._routes_by_link: dict[LinkKey, list[RouteLoad]] = {
            link: [] for link in self.capacities
        }
        for route in self.routes:
            for link in route.links:
                self._routes_by_link[link].append(route)

    def _thinned_loads(self, blocking: Mapping[LinkKey, float]) -> dict:
        """Evaluate eq. 18 for every link given current blocking."""
        loads: dict[LinkKey, float] = {}
        for link, routes in self._routes_by_link.items():
            total = 0.0
            for route in routes:
                thinned = route.load_erlangs
                for other in route.links:
                    if other != link:
                        thinned *= 1.0 - blocking[other]
                total += thinned
            loads[link] = total
        return loads

    def solve(self, initial_blocking: float = 0.0) -> FixedPointSolution:
        """Iterate eqs. 21-22 to convergence.

        Parameters
        ----------
        initial_blocking:
            Starting value ``B_l^(0)`` for every link (the paper
            starts from the unthinned loads, equivalent to 0 here).
        """
        if not 0 <= initial_blocking < 1:
            raise ValueError(
                f"initial blocking must be in [0, 1), got {initial_blocking}"
            )
        blocking = {link: initial_blocking for link in self.capacities}
        loads = self._thinned_loads(blocking)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            new_blocking = {}
            for link, capacity in self.capacities.items():
                raw = self.blocking_function(loads[link], capacity)
                new_blocking[link] = (
                    self.damping * raw + (1.0 - self.damping) * blocking[link]
                )
            delta = max(
                abs(new_blocking[link] - blocking[link]) for link in blocking
            ) if blocking else 0.0
            blocking = new_blocking
            loads = self._thinned_loads(blocking)
            if delta < self.tolerance:
                converged = True
                break
        return FixedPointSolution(
            link_blocking=blocking,
            link_load=loads,
            iterations=iterations,
            converged=converged,
        )
