"""Reduced-load fixed point over link blocking probabilities.

Implements Appendix A.2 of the paper.  Under the link-independence
assumption, the offered load on link ``l`` is "thinned" by the
blocking of every other link on each route through it (eq. 18):

    v_l = sum_{routes r containing l} rho_r * prod_{m in r, m != l} (1 - B_m)

and the blocking of link ``l`` follows from the blocking function
(eq. 19): ``B_l = L(v_l, C_l)``.  Equations 21-22 iterate the pair
until convergence; this module adds optional damping (a convex
combination of successive iterates), which guarantees progress on the
rare oscillating instances without changing the fixed point.

Route-level rejection then follows from eq. 17:

    L_r = 1 - prod_{l in r} (1 - B_l)

Experiment sweeps evaluate the fixed point at many offered loads (the
x-axis of every figure); :meth:`ReducedLoadSolver.solve_grid` solves
the whole grid in one vectorized iteration — links x grid-points
matrices, one column per load multiplier — with a pure-Python
per-point fallback when numpy is unavailable.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping, Sequence

from repro.analysis.erlang import erlang_b

try:  # numpy accelerates solve_grid; everything works without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None  # type: ignore[assignment]

LinkKey = Hashable
#: signature of the link blocking function L(load_erlangs, capacity)
BlockingFunction = Callable[[float, int], float]


@dataclass(frozen=True)
class RouteLoad:
    """One route and its offered traffic intensity.

    Attributes
    ----------
    links:
        The directed links the route traverses (any hashable keys,
        typically ``(u, v)`` node pairs).  May be empty for a
        zero-hop route, which is never blocked.
    load_erlangs:
        Offered intensity ``rho_r = lambda_r / mu`` on this route.
    """

    links: tuple[LinkKey, ...]
    load_erlangs: float

    def __post_init__(self) -> None:
        if self.load_erlangs < 0:
            raise ValueError(
                f"route load must be non-negative, got {self.load_erlangs}"
            )
        if len(set(self.links)) != len(self.links):
            raise ValueError(f"route visits a link twice: {self.links}")


@dataclass(frozen=True)
class FixedPointSolution:
    """Solution of the reduced-load fixed point.

    Attributes
    ----------
    link_blocking:
        ``B_l`` per link key.
    link_load:
        The converged thinned loads ``v_l``.
    iterations:
        Iterations executed.
    converged:
        Whether the max-norm change fell below the tolerance.
    """

    link_blocking: dict[LinkKey, float]
    link_load: dict[LinkKey, float]
    iterations: int
    converged: bool

    def route_rejection(self, links: Sequence[LinkKey]) -> float:
        """Rejection probability of a route over ``links`` (eq. 17)."""
        passing = 1.0
        for link in links:
            passing *= 1.0 - self.link_blocking[link]
        return 1.0 - passing


class ReducedLoadSolver:
    """Solves the Erlang fixed point for a set of loaded routes.

    Parameters
    ----------
    capacities:
        Trunk capacity ``C_l`` per link key.  Every link referenced by
        a route must appear here.
    routes:
        The offered routes with their intensities.
    blocking_function:
        ``L(v, C)``; defaults to exact Erlang-B.  Pass
        :func:`repro.analysis.erlang.uaa_blocking` to reproduce the
        paper's computational pathway (the ablation bench compares
        both; results differ by well under one percent).
    damping:
        Weight of the new iterate in the update, in (0, 1].  Plain
        successive substitution (1.0) is what the paper describes, but
        it 2-cycles on heavily loaded instances (a well-known property
        of the Erlang fixed point); the default 0.5 converges on every
        instance in the evaluation without changing the fixed point.
    tolerance:
        Max-norm convergence threshold on blocking probabilities.
    max_iterations:
        Iteration cap.
    """

    def __init__(
        self,
        capacities: Mapping[LinkKey, int],
        routes: Sequence[RouteLoad],
        blocking_function: BlockingFunction = erlang_b,
        damping: float = 0.5,
        tolerance: float = 1e-10,
        max_iterations: int = 10_000,
    ) -> None:
        if not 0 < damping <= 1:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        for route in routes:
            for link in route.links:
                if link not in capacities:
                    raise KeyError(f"route references unknown link {link!r}")
        for link, capacity in capacities.items():
            if capacity < 0:
                raise ValueError(f"link {link!r} has negative capacity {capacity}")
        self.capacities = dict(capacities)
        self.routes = list(routes)
        self.blocking_function = blocking_function
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        # Pre-index which routes traverse each link.
        self._routes_by_link: dict[LinkKey, list[RouteLoad]] = {
            link: [] for link in self.capacities
        }
        for route in self.routes:
            for link in route.links:
                self._routes_by_link[link].append(route)

    def _thinned_loads(
        self, blocking: Mapping[LinkKey, float]
    ) -> dict[LinkKey, float]:
        """Evaluate eq. 18 for every link given current blocking."""
        loads: dict[LinkKey, float] = {}
        for link, routes in self._routes_by_link.items():
            total = 0.0
            for route in routes:
                thinned = route.load_erlangs
                for other in route.links:
                    if other != link:
                        thinned *= 1.0 - blocking[other]
                total += thinned
            loads[link] = total
        return loads

    def solve(self, initial_blocking: float = 0.0) -> FixedPointSolution:
        """Iterate eqs. 21-22 to convergence.

        Parameters
        ----------
        initial_blocking:
            Starting value ``B_l^(0)`` for every link (the paper
            starts from the unthinned loads, equivalent to 0 here).
        """
        if not 0 <= initial_blocking < 1:
            raise ValueError(
                f"initial blocking must be in [0, 1), got {initial_blocking}"
            )
        blocking = {link: initial_blocking for link in self.capacities}
        loads = self._thinned_loads(blocking)
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            new_blocking: dict[LinkKey, float] = {}
            for link, capacity in self.capacities.items():
                raw = self.blocking_function(loads[link], capacity)
                new_blocking[link] = (
                    self.damping * raw + (1.0 - self.damping) * blocking[link]
                )
            delta = max(
                abs(new_blocking[link] - blocking[link]) for link in blocking
            ) if blocking else 0.0
            blocking = new_blocking
            loads = self._thinned_loads(blocking)
            if delta < self.tolerance:
                converged = True
                break
        if not converged:
            warnings.warn(
                f"reduced-load fixed point did not converge within "
                f"{self.max_iterations} iterations (damping={self.damping}); "
                f"returning the last iterate",
                RuntimeWarning,
                stacklevel=2,
            )
        return FixedPointSolution(
            link_blocking=blocking,
            link_load=loads,
            iterations=iterations,
            converged=converged,
        )

    # ------------------------------------------------------------------
    # grid evaluation
    # ------------------------------------------------------------------
    def solve_grid(
        self, scales: Sequence[float], initial_blocking: float = 0.0
    ) -> list[FixedPointSolution]:
        """Solve the fixed point at every offered-load multiplier at once.

        ``scales[g]`` multiplies every route's intensity; the result is
        one :class:`FixedPointSolution` per grid point, equivalent to
        building a scaled solver per point and calling :meth:`solve`.
        With numpy the whole grid iterates together on
        ``links x points`` matrices (one column per load multiplier,
        columns freeze as they converge, so per-point ``iterations``
        match the scalar path); without numpy each point falls back to
        a scalar :meth:`solve`.

        The two paths agree to well within the solver tolerance — the
        vectorized thinning accumulates per-route exclusion products
        with prefix/suffix cumulative products, which reorders float
        multiplications relative to the scalar loop.
        """
        if not 0 <= initial_blocking < 1:
            raise ValueError(
                f"initial blocking must be in [0, 1), got {initial_blocking}"
            )
        grid = [float(scale) for scale in scales]
        for scale in grid:
            if scale < 0:
                raise ValueError(f"load scale must be non-negative, got {scale}")
        if not grid:
            return []
        if _np is None:
            return [self._solve_scaled(scale, initial_blocking) for scale in grid]
        return self._solve_grid_numpy(grid, initial_blocking)

    def _solve_scaled(
        self, scale: float, initial_blocking: float
    ) -> FixedPointSolution:
        """One scalar :meth:`solve` with every route load times ``scale``."""
        scaled = [
            RouteLoad(links=route.links, load_erlangs=route.load_erlangs * scale)
            for route in self.routes
        ]
        solver = ReducedLoadSolver(
            self.capacities,
            scaled,
            blocking_function=self.blocking_function,
            damping=self.damping,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
        )
        return solver.solve(initial_blocking)

    def _solve_grid_numpy(
        self, grid: list[float], initial_blocking: float
    ) -> list[FixedPointSolution]:
        links = list(self.capacities)
        if not links:
            return [
                FixedPointSolution({}, {}, iterations=1, converged=True)
                for _ in grid
            ]
        index = {link: i for i, link in enumerate(links)}
        n_links = len(links)
        n_points = len(grid)
        capacities = _np.array([self.capacities[link] for link in links])
        scale_row = _np.array(grid)
        # Routes become one (routes x hops) index matrix, short routes
        # padded with a sentinel id whose "passing" probability is
        # pinned at 1 — padding then contributes nothing to any real
        # hop's exclusion product and its own contribution lands in a
        # discarded sentinel row.
        routed = [route for route in self.routes if route.links]
        hops_max = max((len(route.links) for route in routed), default=0)
        idx_matrix = _np.full((len(routed), hops_max), n_links, dtype=_np.intp)
        for r, route in enumerate(routed):
            idx_matrix[r, : len(route.links)] = [
                index[link] for link in route.links
            ]
        flat_idx = idx_matrix.ravel()
        # Accumulating hop contributions into links is a fixed linear
        # map; as a one-hot matrix the per-iteration gather becomes a
        # single matmul instead of an unbuffered scatter-add.
        gather = _np.zeros((n_links + 1, flat_idx.size))
        gather[flat_idx, _np.arange(flat_idx.size)] = 1.0
        offered = _np.array([route.load_erlangs for route in routed])
        # (routes, 1, points): every route's offered load per column.
        offered_grid = (offered[:, None] * scale_row)[:, None, :]

        def thinned(blocking: Any) -> Any:
            """Eq. 18 for every link and grid column at once."""
            if not routed:
                return _np.zeros((n_links, n_points))
            passing = _np.ones((n_links + 1, n_points))
            _np.subtract(1.0, blocking, out=passing[:n_links])
            rows = passing[idx_matrix]  # (routes, hops, points)
            prefix = _np.ones_like(rows)
            suffix = _np.ones_like(rows)
            if hops_max > 1:
                _np.cumprod(rows[:, :-1], axis=1, out=prefix[:, 1:])
                suffix[:, :-1] = _np.cumprod(rows[:, :0:-1], axis=1)[:, ::-1]
            exclusion = offered_grid * prefix * suffix
            loads = gather @ exclusion.reshape(-1, n_points)
            return loads[:n_links]

        if self.blocking_function is erlang_b:

            def apply_blocking(loads: Any) -> Any:
                return _erlang_b_columns(loads, capacities)

        else:
            fn = self.blocking_function

            def apply_blocking(loads: Any) -> Any:
                raw = _np.empty_like(loads)
                for i in range(n_links):
                    capacity = self.capacities[links[i]]
                    raw[i] = [fn(load, capacity) for load in loads[i]]
                return raw

        blocking = _np.full((n_links, n_points), float(initial_blocking))
        loads = thinned(blocking)
        active = _np.ones(n_points, dtype=bool)
        iterations = _np.zeros(n_points, dtype=_np.int64)
        converged = _np.zeros(n_points, dtype=bool)
        for _ in range(self.max_iterations):
            if not active.any():
                break
            raw = apply_blocking(loads)
            new_blocking = (
                self.damping * raw + (1.0 - self.damping) * blocking
            )
            delta = _np.abs(new_blocking - blocking).max(axis=0)
            blocking[:, active] = new_blocking[:, active]
            iterations[active] += 1
            finished = active & (delta < self.tolerance)
            converged |= finished
            active &= ~finished
            loads = thinned(blocking)
        stuck = int((~converged).sum())
        if stuck:
            warnings.warn(
                f"reduced-load fixed point did not converge within "
                f"{self.max_iterations} iterations at {stuck} of "
                f"{n_points} grid points (damping={self.damping}); "
                f"returning the last iterates",
                RuntimeWarning,
                stacklevel=3,
            )
        solutions: list[FixedPointSolution] = []
        for g in range(n_points):
            solutions.append(
                FixedPointSolution(
                    link_blocking={
                        link: float(blocking[i, g])
                        for i, link in enumerate(links)
                    },
                    link_load={
                        link: float(loads[i, g]) for i, link in enumerate(links)
                    },
                    iterations=int(iterations[g]),
                    converged=bool(converged[g]),
                )
            )
        return solutions


def _erlang_b_columns(loads: Any, capacities: Any) -> Any:
    """Vectorized Erlang-B over a ``links x points`` load matrix.

    Runs the stable recursion ``B_c = v B / (c + v B)`` to the largest
    capacity, capturing each row's value at its own ``C_l`` — per
    element the arithmetic is identical to the scalar
    :func:`repro.analysis.erlang.erlang_b`.
    """
    recursion = _np.ones_like(loads)
    out = _np.ones_like(loads)  # capacity-0 rows block everything
    top = int(capacities.max())
    for c in range(1, top + 1):
        thinned = loads * recursion
        recursion = thinned / (c + thinned)
        at_capacity = capacities == c
        if at_capacity.any():
            out[at_capacity] = recursion[at_capacity]
    return out
