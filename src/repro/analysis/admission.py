"""System-level admission probability analysis (Appendix A.1 + extension).

The appendix analyzes systems ``<ED,1>`` and ``SP``: anycast traffic
from each source is split over the fixed routes according to the
selection weights, the reduced-load fixed point yields per-link
blocking, link independence yields per-route rejection (eq. 17), and
the network admission probability is the carried fraction (eq. 15):

    AP = sum_{s,r} rho_{s,r} (1 - L_{s,r}) / sum_{s,r} rho_{s,r}

The appendix notes the method "can be extended to other systems (under
certain approximation assumptions)".  We implement that extension for
every *static-weight* selection algorithm (ED, WD/D, SP) with any
retrial limit ``R``:

* a request draws destinations sequentially without replacement with
  probabilities proportional to the remaining static weights, stopping
  at the first unblocked route or after ``R`` tries;
* route rejections are treated as independent across routes (the same
  independence approximation the fixed point already makes);
* the load a source offers to a route is its request rate times the
  probability the route is *attempted*, which itself depends on the
  rejection probabilities — so an outer fixed point alternates between
  the trial model and the reduced-load solve until the rejection
  vector stabilizes.

For ``R = 1`` the extension collapses exactly to the appendix's model.
The history- and bandwidth-driven algorithms (WD/D+H, WD/D+B) have
state-dependent weights outside this framework and are evaluated by
simulation only, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Optional, Sequence

from repro.analysis.erlang import erlang_b
from repro.analysis.fixedpoint import (
    BlockingFunction,
    FixedPointSolution,
    LinkKey,
    ReducedLoadSolver,
    RouteLoad,
)
from repro.core.selection import distance_weights
from repro.core.system import SystemSpec
from repro.flows.traffic import WorkloadSpec
from repro.network.routing import RouteTable
from repro.network.topology import Network

NodeId = Hashable

#: Static-weight algorithms the analysis supports.
ANALYZABLE_ALGORITHMS = ("ED", "WD/D", "SP")

#: Enumerating ordered trial sequences is O(K! / (K-R)!); cap K.
_MAX_GROUP_SIZE = 8


@dataclass(frozen=True)
class AnalysisResult:
    """Analytical performance of one system at one arrival rate.

    Attributes
    ----------
    admission_probability:
        Network-wide AP (eq. 15 / its retrial extension).
    mean_attempts:
        Expected destinations tried per request (the analytic
        counterpart of Figure 7's overhead metric).
    per_source_ap:
        AP seen by each source.
    link_blocking:
        Converged ``B_l`` per directed link.
    route_rejection:
        ``L_{s,r}`` per (source, member).
    fixed_point_iterations:
        Inner iterations of the final reduced-load solve.
    outer_iterations:
        Rounds of the load-redistribution outer loop (1 when R = 1).
    converged:
        Whether both loops met their tolerances.
    """

    admission_probability: float
    mean_attempts: float
    per_source_ap: dict[NodeId, float]
    link_blocking: dict[LinkKey, float]
    route_rejection: dict[tuple[NodeId, NodeId], float]
    fixed_point_iterations: int
    outer_iterations: int
    converged: bool


@dataclass(frozen=True)
class _TrialModel:
    """Sequential-trial statistics for one source under static weights.

    ``attempt_probability[i]``: probability member ``i`` is tried.
    ``admission_probability``: probability some try succeeds.
    ``mean_attempts``: expected number of tries.
    """

    attempt_probability: tuple[float, ...]
    admission_probability: float
    mean_attempts: float


def _static_weights(spec: SystemSpec, routes: RouteTable) -> list[float]:
    """Initial selection weights of a static-weight algorithm."""
    size = len(routes.members)
    if spec.algorithm == "ED":
        return [1.0 / size] * size
    if spec.algorithm == "WD/D":
        return distance_weights([float(d) for d in routes.distances()])
    if spec.algorithm == "SP":
        shortest = routes.shortest_member()
        return [1.0 if member == shortest else 0.0 for member in routes.members]
    raise ValueError(
        f"algorithm {spec.algorithm!r} does not have static weights; "
        f"analyzable algorithms: {ANALYZABLE_ALGORITHMS}"
    )


def _sequential_trial_model(
    weights: Sequence[float], rejections: Sequence[float], max_attempts: int
) -> _TrialModel:
    """Enumerate the without-replacement trial process exactly.

    Walks the tree of ordered distinct-destination prefixes.  Each
    node carries the probability of reaching it with every earlier try
    blocked; branches whose selection weight is zero are skipped
    (they are never drawn).
    """
    size = len(weights)
    attempt_probability = [0.0] * size
    admitted = 0.0
    mean_attempts = 0.0

    def recurse(
        tried: tuple[int, ...], reach_probability: float, depth: int
    ) -> None:
        nonlocal admitted, mean_attempts
        if reach_probability <= 0.0:
            return
        remaining = [i for i in range(size) if i not in tried]
        total_weight = sum(weights[i] for i in remaining)
        if depth >= max_attempts or not remaining or total_weight <= 0.0:
            # Request gives up here with probability `reach_probability`.
            mean_attempts += reach_probability * depth
            return
        for i in remaining:
            if weights[i] <= 0.0:
                continue
            # Divide before multiplying: the share is always in [0, 1],
            # whereas reach * weight can underflow for subnormal weights
            # and the subsequent division then inflates the branch past
            # its parent's probability (or silently drops its mass).
            pick = reach_probability * (weights[i] / total_weight)
            attempt_probability[i] += pick
            success = pick * (1.0 - rejections[i])
            admitted += success
            mean_attempts += success * (depth + 1)
            recurse(tried + (i,), pick * rejections[i], depth + 1)

    recurse((), 1.0, 0)
    return _TrialModel(
        attempt_probability=tuple(attempt_probability),
        admission_probability=admitted,
        mean_attempts=mean_attempts,
    )


def build_route_loads(
    route_tables: Mapping[NodeId, RouteTable],
    per_source_intensity: Mapping[NodeId, float],
    attempt_probabilities: Mapping[NodeId, Sequence[float]],
) -> list[RouteLoad]:
    """Offered route loads given per-member attempt probabilities.

    ``rho_{s,r} = rho_s * P(route r attempted by a request from s)``;
    for a single-attempt system the attempt probabilities are just the
    selection weights, recovering the appendix's load split.
    """
    loads: list[RouteLoad] = []
    for source, table in route_tables.items():
        intensity = per_source_intensity[source]
        probabilities = attempt_probabilities[source]
        if len(probabilities) != len(table.members):
            raise ValueError(
                f"source {source!r}: {len(probabilities)} probabilities for "
                f"{len(table.members)} members"
            )
        for route, probability in zip(table.routes(), probabilities):
            links = tuple(zip(route.path, route.path[1:]))
            loads.append(RouteLoad(links=links, load_erlangs=intensity * probability))
    return loads


def analyze_system(
    network: Network,
    workload: WorkloadSpec,
    spec: SystemSpec,
    blocking_function: BlockingFunction = erlang_b,
    outer_tolerance: float = 1e-9,
    max_outer_iterations: int = 200,
    damping: float = 0.5,
) -> AnalysisResult:
    """Analytical admission probability of ``spec`` under ``workload``.

    Parameters
    ----------
    network:
        The (unloaded) network; only capacities and topology are read.
    workload:
        Arrival rate, sources, group, lifetime and per-flow bandwidth.
    spec:
        The system; must use a static-weight algorithm
        (:data:`ANALYZABLE_ALGORITHMS`).
    blocking_function:
        Link blocking ``L(v, C)``: exact Erlang-B (default) or the
        paper's :func:`repro.analysis.erlang.uaa_blocking`.
    outer_tolerance:
        Max-norm threshold on the route-rejection vector across outer
        rounds.
    max_outer_iterations:
        Cap on outer rounds (1 suffices when ``R = 1``).
    damping:
        Damping of the inner reduced-load iteration.

    Raises
    ------
    NotImplementedError
        For WD/D+H, WD/D+B or GDI, whose dynamics are outside the
        static-weight framework (evaluate those by simulation).
    """
    if spec.algorithm not in ANALYZABLE_ALGORITHMS:
        raise NotImplementedError(
            f"analysis covers static-weight systems {ANALYZABLE_ALGORITHMS}; "
            f"{spec.algorithm!r} must be evaluated by simulation"
        )
    group = workload.group
    if group.size > _MAX_GROUP_SIZE:
        raise ValueError(
            f"trial-sequence enumeration supports groups of at most "
            f"{_MAX_GROUP_SIZE} members, got {group.size}"
        )
    retrials = 1 if spec.algorithm == "SP" else spec.retrials

    route_tables = {
        source: RouteTable(network, source, group.members)
        for source in workload.sources
    }
    per_source_intensity = {
        source: workload.per_source_rate * workload.mean_lifetime_s
        for source in workload.sources
    }
    weights = {
        source: _static_weights(spec, table)
        for source, table in route_tables.items()
    }
    capacities = {
        (link.source, link.target): int(link.capacity_bps // workload.bandwidth_bps)
        for link in network.links()
    }

    # Outer loop: trial model <-> reduced-load fixed point.
    rejections = {
        source: [0.0] * group.size for source in workload.sources
    }
    solution: Optional[FixedPointSolution] = None
    trial_models: dict[NodeId, _TrialModel] = {}
    outer_iterations = 0
    outer_converged = False
    for outer_iterations in range(1, max_outer_iterations + 1):
        trial_models = {
            source: _sequential_trial_model(
                weights[source], rejections[source], retrials
            )
            for source in workload.sources
        }
        attempt_probabilities = {
            source: model.attempt_probability
            for source, model in trial_models.items()
        }
        loads = build_route_loads(
            route_tables, per_source_intensity, attempt_probabilities
        )
        solver = ReducedLoadSolver(
            capacities,
            loads,
            blocking_function=blocking_function,
            damping=damping,
        )
        solution = solver.solve()
        new_rejections: dict[NodeId, list[float]] = {}
        delta = 0.0
        for source, table in route_tables.items():
            per_member: list[float] = []
            for route in table.routes():
                links = tuple(zip(route.path, route.path[1:]))
                per_member.append(solution.route_rejection(links))
            delta = max(
                delta,
                max(
                    abs(new - old)
                    for new, old in zip(per_member, rejections[source])
                ),
            )
            new_rejections[source] = per_member
        rejections = new_rejections
        if delta < outer_tolerance:
            outer_converged = True
            break

    # Final evaluation with the converged rejection vector.
    trial_models = {
        source: _sequential_trial_model(weights[source], rejections[source], retrials)
        for source in workload.sources
    }
    total_rate = 0.0
    admitted_rate = 0.0
    attempts_rate = 0.0
    per_source_ap: dict[NodeId, float] = {}
    route_rejection: dict[tuple[NodeId, NodeId], float] = {}
    for source in workload.sources:
        model = trial_models[source]
        rate = workload.per_source_rate
        per_source_ap[source] = model.admission_probability
        total_rate += rate
        admitted_rate += rate * model.admission_probability
        attempts_rate += rate * model.mean_attempts
        for member, rejection in zip(group.members, rejections[source]):
            route_rejection[(source, member)] = rejection
    assert solution is not None
    return AnalysisResult(
        admission_probability=admitted_rate / total_rate,
        mean_attempts=attempts_rate / total_rate,
        per_source_ap=per_source_ap,
        link_blocking=dict(solution.link_blocking),
        route_rejection=route_rejection,
        fixed_point_iterations=solution.iterations,
        outer_iterations=outer_iterations,
        converged=outer_converged and solution.converged,
    )
