"""Multirate link blocking: the Kaufman-Roberts recursion.

The paper's experiments use a single flow class (64 kbit/s), so plain
Erlang-B suffices.  Real anycast deployments mix classes — the paper's
Section 6 delay-to-bandwidth mapping even *produces* heterogeneous
rates (tighter delay bounds demand more bandwidth).  For a link shared
by independent Poisson classes, each holding an integer number of
capacity slots, the stationary occupancy distribution satisfies the
Kaufman-Roberts recursion:

    n * q(n) = sum_k  a_k * b_k * q(n - b_k)

where class ``k`` offers ``a_k`` erlangs of ``b_k``-slot flows.  The
per-class blocking probability is the probability that fewer than
``b_k`` slots are free.

This extends the analysis pathway of Appendix A to multi-class
workloads; :class:`MultirateLink` plugs into the same reduced-load
style of reasoning (per-class thinning) used for the single-rate case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class TrafficClass:
    """One flow class offered to a link.

    Attributes
    ----------
    load_erlangs:
        Offered intensity ``a_k = lambda_k / mu_k``.
    slots:
        Capacity units each flow of this class holds (``b_k`` >= 1).
    name:
        Optional label for reporting.
    """

    load_erlangs: float
    slots: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.load_erlangs < 0:
            raise ValueError(
                f"class load must be non-negative, got {self.load_erlangs}"
            )
        if self.slots < 1:
            raise ValueError(f"class slots must be >= 1, got {self.slots}")


def occupancy_distribution(
    capacity: int, classes: Sequence[TrafficClass]
) -> list[float]:
    """Stationary distribution of occupied slots (Kaufman-Roberts).

    Returns ``q[0..capacity]`` with ``sum(q) == 1``.

    Parameters
    ----------
    capacity:
        Total slots on the link (>= 0).
    classes:
        The offered traffic classes.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    unnormalized = [0.0] * (capacity + 1)
    unnormalized[0] = 1.0
    for n in range(1, capacity + 1):
        total = 0.0
        for cls in classes:
            if cls.slots <= n:
                total += cls.load_erlangs * cls.slots * unnormalized[n - cls.slots]
        unnormalized[n] = total / n
    norm = math.fsum(unnormalized)
    return [value / norm for value in unnormalized]


def class_blocking(
    capacity: int, classes: Sequence[TrafficClass]
) -> list[float]:
    """Per-class blocking probabilities on a shared link.

    Class ``k`` is blocked exactly when fewer than ``b_k`` slots are
    free, i.e. with probability ``sum of q(n) for n > capacity - b_k``.
    Returned in the order of ``classes``.
    """
    distribution = occupancy_distribution(capacity, classes)
    blocking: list[float] = []
    for cls in classes:
        threshold = capacity - cls.slots
        blocked = math.fsum(
            distribution[n] for n in range(threshold + 1, capacity + 1)
        )
        blocking.append(min(1.0, max(0.0, blocked)))
    return blocking


def single_class_check(capacity: int, load_erlangs: float) -> float:
    """Kaufman-Roberts specialized to one single-slot class.

    Must equal Erlang-B; exposed for validation and docs.
    """
    return class_blocking(capacity, [TrafficClass(load_erlangs, 1)])[0]


@dataclass(frozen=True)
class MultirateLinkReport:
    """Blocking summary of one multirate link.

    Attributes
    ----------
    capacity:
        Slot count.
    classes:
        The offered classes.
    blocking:
        Per-class blocking probability, aligned with ``classes``.
    utilization:
        Expected fraction of slots occupied.
    """

    capacity: int
    classes: tuple[TrafficClass, ...]
    blocking: tuple[float, ...]
    utilization: float


def analyze_link(
    capacity: int, classes: Sequence[TrafficClass]
) -> MultirateLinkReport:
    """Full blocking/utilization report for one link."""
    distribution = occupancy_distribution(capacity, classes)
    blocking = class_blocking(capacity, classes)
    mean_occupied = math.fsum(n * q for n, q in enumerate(distribution))
    utilization = mean_occupied / capacity if capacity else 0.0
    return MultirateLinkReport(
        capacity=capacity,
        classes=tuple(classes),
        blocking=tuple(blocking),
        utilization=utilization,
    )
