"""Link blocking functions: exact Erlang-B and the paper's UAA.

A link with ``C`` trunk slots offered Poisson traffic of intensity
``v`` erlangs (each flow holding one slot) blocks new flows with the
Erlang-B probability

    B(v, C) = (v^C / C!) / sum_{k=0..C} v^k / k!

computed here with the standard numerically-stable recursion.

The paper instead evaluates ``L(v)`` with the *Uniform Asymptotic
Approximation* (UAA) of eqs. 23-29, accurate for large ``C`` with
``v = O(C)`` — cheap in 2001, merely a historical choice today.  We
implement the UAA faithfully (it is also an ablation subject:
``benchmarks/test_ablation_erlang_vs_uaa.py`` quantifies the
approximation error inside the fixed point) with one pragmatic
adjustment: in a narrow window around the critical load ``v = C``
(where the published formula switches to a special case) we fall back
to exact Erlang-B, because the OCR'd critical-case constant in the
paper is ambiguous and the window has measure zero in the fixed-point
iteration anyway.
"""

from __future__ import annotations

import math


def erlang_b(load_erlangs: float, capacity: int) -> float:
    """Exact Erlang-B blocking probability.

    Uses the recursion ``B_0 = 1``,
    ``B_c = v B_{c-1} / (c + v B_{c-1})``, which is stable for any
    load and linear in ``capacity``.

    Parameters
    ----------
    load_erlangs:
        Offered traffic intensity ``v`` >= 0.
    capacity:
        Number of trunk slots ``C`` >= 0.

    Returns
    -------
    float
        Blocking probability in [0, 1].
    """
    if load_erlangs < 0:
        raise ValueError(f"load must be non-negative, got {load_erlangs}")
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    if load_erlangs == 0:
        return 0.0 if capacity > 0 else 1.0
    blocking = 1.0
    for c in range(1, capacity + 1):
        blocking = load_erlangs * blocking / (c + load_erlangs * blocking)
    return blocking


#: Half-width of the critical window |z* - 1| inside which the UAA
#: switches to exact Erlang-B (see module docstring).
_CRITICAL_WINDOW = 0.02

#: F(z*) below which exp(F) nears the subnormal range (~1e-304).  The
#: M formula then relies on a cancellation between 0.5*erfc(sqrt(-F))
#: and the -1/sqrt(-2F) correction, both of order exp(F); once they
#: are subnormal the cancellation loses all precision (B can come out
#: past 1 where the true limit is 1 - C/v), so we use exact Erlang-B.
_UNDERFLOW_F = -700.0


def uaa_blocking(load_erlangs: float, capacity: int) -> float:
    """Uniform Asymptotic Approximation of Erlang-B (paper eqs. 23-29).

    With ``z* = C / v``, ``F(z) = v (z - 1) - C ln z`` and
    ``V(z) = v z``:

        B  ~=  exp(F(z*)) / (M * sqrt(2 pi V(z*)))

    where for ``z* != 1``

        M = (1/2) erfc(sgn(1 - z*) sqrt(-F(z*)))
            + exp(F(z*)) / sqrt(2 pi)
              * ( 1 / (sqrt(V(z*)) (1 - z*))  -  sgn(1 - z*) / sqrt(-2 F(z*)) )

    The two correction terms individually diverge as ``z* -> 1`` but
    their difference stays finite; within ``|z* - 1| < 0.02`` we return
    exact Erlang-B instead of evaluating the ill-conditioned formula.

    Validity assumptions (paper eqs. 23-24): ``C >= 1`` and
    ``v = O(C)``; tests verify agreement with exact Erlang-B to a few
    percent over the operating range of the experiments.
    """
    if load_erlangs < 0:
        raise ValueError(f"load must be non-negative, got {load_erlangs}")
    if capacity < 1:
        raise ValueError(f"UAA requires capacity >= 1, got {capacity}")
    if load_erlangs == 0:
        return 0.0
    v = float(load_erlangs)
    c = float(capacity)
    z_star = c / v
    if abs(z_star - 1.0) < _CRITICAL_WINDOW:
        return erlang_b(v, capacity)
    f_star = v * (z_star - 1.0) - c * math.log(z_star)  # always <= 0
    if f_star < _UNDERFLOW_F:
        return erlang_b(v, capacity)
    variance = v * z_star  # V(z*) = C
    sign = 1.0 if z_star < 1.0 else -1.0  # sgn(1 - z*)
    sqrt_neg_f = math.sqrt(max(0.0, -f_star))
    exp_f = math.exp(f_star)
    m = 0.5 * math.erfc(sign * sqrt_neg_f) + (exp_f / math.sqrt(2.0 * math.pi)) * (
        1.0 / (math.sqrt(variance) * (1.0 - z_star))
        - sign / math.sqrt(-2.0 * f_star)
    )
    if m <= 0:  # numerically impossible in the valid regime; be safe
        return erlang_b(v, capacity)
    blocking = exp_f / (m * math.sqrt(2.0 * math.pi * variance))
    return min(1.0, max(0.0, blocking))


def erlang_b_inverse_load(capacity: int, target_blocking: float) -> float:
    """Offered load at which Erlang-B hits ``target_blocking``.

    Solves ``B(v, C) = target`` for ``v`` by bisection; useful for
    sizing workloads ("what lambda gives 10 % link blocking?").
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if not 0.0 < target_blocking < 1.0:
        raise ValueError(
            f"target blocking must be in (0, 1), got {target_blocking}"
        )
    low, high = 0.0, float(capacity)
    while erlang_b(high, capacity) < target_blocking:
        high *= 2.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if erlang_b(mid, capacity) < target_blocking:
            low = mid
        else:
            high = mid
        if high - low < 1e-12 * max(1.0, high):
            break
    return 0.5 * (low + high)
