"""Event calendar and simulation clock.

This module is the foundation of the CSIM-equivalent substrate: a
classic event-scheduled discrete-event simulator.  Time is a float in
arbitrary units (the anycast model uses seconds).  Events are callbacks
scheduled at absolute times and executed in non-decreasing time order;
ties are broken by insertion order so runs are fully deterministic.

Two pending-event set implementations are available: a binary heap
(default; O(log n), simple and cache-friendly) and Brown's calendar
queue (:mod:`repro.sim.calendar`; amortized O(1) for stationary event
populations).  Both produce identical execution orders.

The hot path is batched: the event loop asks the pending-event set for
the whole *run* of events sharing the earliest timestamp
(``pop_run_into``) and dispatches them without re-entering the queue's
bookkeeping per event.  The heap keys its entries by ``(time,
sequence)`` tuples so every sift comparison happens in C rather than
through ``Event.__lt__``.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(2.0, lambda: fired.append(sim.now))
>>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[1.0, 2.0]
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, MutableSequence, Optional, Protocol

from repro import invariants as _invariants

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised when the simulator is used inconsistently.

    Examples include scheduling an event in the past or running a
    simulator that has already been stopped and drained.
    """


class _EventOwner(Protocol):
    """A pending-event set that tracks its live-event count."""

    def _note_cancelled(self) -> None: ...


class Event:
    """A scheduled callback, returned by :meth:`Simulator.schedule`.

    Events support O(1) cancellation: cancelling marks the event dead
    and the event loop skips it when it surfaces in the queue.  The
    owning pending-event set is notified so its live-event counter
    stays exact without scanning.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    callback:
        Zero-argument callable invoked at ``time``.
    """

    __slots__ = ("time", "callback", "_sequence", "_cancelled", "_owner")

    def __init__(
        self, time: float, callback: Callable[[], Any], sequence: int
    ) -> None:
        self.time = time
        self.callback = callback
        self._sequence = sequence
        self._cancelled = False
        self._owner: Optional[_EventOwner] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        owner = self._owner
        if owner is not None:
            self._owner = None
            owner._note_cancelled()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def __lt__(self, other: "Event") -> bool:
        # Exact equality is the tie-break trigger here, by design.
        if self.time != other.time:  # repro-lint: disable=R4
            return self.time < other.time
        return self._sequence < other._sequence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"Event(t={self.time:.6g}, {state})"


class HeapQueue:
    """Binary-heap pending-event set (the default).

    Entries are ``(time, sequence, event)`` tuples rather than bare
    :class:`Event` objects: tuple comparison is resolved in C, so the
    O(log n) sift per push/pop never calls back into Python.  With
    thousands of pending departure timers (the steady state of every
    loss-network sweep) this is the difference between comparison cost
    dominating the run and disappearing from the profile.
    """

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._live = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event."""
        event._owner = self
        self._live += 1
        heappush(self._heap, (event.time, event._sequence, event))

    def pop_min(self) -> Optional[Event]:
        """Remove and return the earliest live event (``None`` if empty)."""
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            if not event._cancelled:
                event._owner = None
                self._live -= 1
                return event
        return None

    def pop_run_into(
        self, out: MutableSequence[Event], until: Optional[float] = None
    ) -> int:
        """Pop the earliest same-timestamp run of live events into ``out``.

        Appends every live event whose time equals the earliest pending
        timestamp (insertion order preserved) and returns how many were
        appended.  Returns 0 — popping nothing — when the queue is
        empty or the earliest event fires strictly after ``until``.
        """
        heap = self._heap
        append = out.append
        while heap:
            time, _, event = heap[0]
            if event._cancelled:
                heappop(heap)
                continue
            if until is not None and time > until:
                return 0
            heappop(heap)
            event._owner = None
            append(event)
            count = 1
            # Same-timestamp batching: exact equality is the contract.
            while heap and heap[0][0] == time:  # repro-lint: disable=R4
                event = heappop(heap)[2]
                if event._cancelled:
                    continue
                event._owner = None
                append(event)
                count += 1
            self._live -= count
            return count
        return 0

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or ``None``."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2]._cancelled:
                heappop(heap)
            else:
                return entry[0]
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[2]._owner = None
        self._heap.clear()
        self._live = 0

    def live_count(self) -> int:
        """Number of pending, not-cancelled events (O(1))."""
        return self._live

    def _note_cancelled(self) -> None:
        """A still-queued event was cancelled (called by the event)."""
        self._live -= 1


def _make_queue(kind: str) -> "HeapQueue | CalendarQueue":
    if kind == "heap":
        return HeapQueue()
    if kind == "calendar":
        from repro.sim.calendar import CalendarQueue

        return CalendarQueue()
    raise SimulationError(f"unknown queue kind {kind!r}; use 'heap' or 'calendar'")


class Simulator:
    """Deterministic event-scheduled discrete-event simulator.

    The simulator maintains a pending-event set of :class:`Event`
    objects.  :meth:`run` repeatedly pops the earliest event, advances
    the clock to its timestamp and invokes its callback.  Callbacks may
    schedule further events.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default ``0.0``).
    queue:
        Pending-event set implementation: ``"heap"`` (default) or
        ``"calendar"`` (Brown's calendar queue).  Execution order is
        identical; only the performance profile differs.
    check_invariants:
        Enable the runtime sanitizer for this simulator: every
        dispatched event batch is verified for time monotonicity and
        same-timestamp coherence (see :mod:`repro.invariants`).
        Defaults to the process-wide switch
        (``REPRO_CHECK_INVARIANTS=1``).  Execution order is identical
        with the sanitizer on or off — the golden determinism tests
        run both ways.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        queue: str = "heap",
        check_invariants: Optional[bool] = None,
    ) -> None:
        self._now = float(start_time)
        self._queue = _make_queue(queue)
        self._push = self._queue.push
        # Direct reference to the heap list when the default queue is
        # in use: schedule() then pushes without a method call.
        queue_impl = self._queue
        self._heap_fast: Optional[list[tuple[float, int, Event]]] = (
            queue_impl._heap if isinstance(queue_impl, HeapQueue) else None
        )
        self._check = (
            _invariants.enabled
            if check_invariants is None
            else bool(check_invariants)
        )
        self._sequence = itertools.count()
        self._running = False
        self._stopped = False
        self._events_executed = 0
        # The same-timestamp run currently being dispatched.  Non-empty
        # outside run() only when stop()/max_events aborted mid-run;
        # the next run() resumes from it so no event is lost.
        self._batch: deque[Event] = deque()

    # ------------------------------------------------------------------
    # clock and queue inspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of event callbacks executed so far."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        live = self._queue.live_count()
        if self._batch:
            live += sum(1 for event in self._batch if not event._cancelled)
        return live

    def peek(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` if empty."""
        for event in self._batch:
            if not event._cancelled:
                return event.time
        return self._queue.peek_time()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Parameters
        ----------
        delay:
            Non-negative offset from the current clock.
        callback:
            Zero-argument callable.

        Returns
        -------
        Event
            Handle that may be used to cancel the event.

        Raises
        ------
        SimulationError
            If ``delay`` is negative or not finite.
        """
        time = self._now + float(delay)
        if self._now <= time < _INF:  # NaN fails the <= test
            sequence = next(self._sequence)
            event = Event(time, callback, sequence)
            heap = self._heap_fast
            if heap is not None:
                queue = self._queue
                event._owner = queue
                queue._live += 1
                heappush(heap, (time, sequence, event))
            else:
                self._push(event)
            return event
        # Invalid delay: delegate to schedule_at for the exact checks
        # and error messages (cold path).
        return self.schedule_at(time, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``.

        ``time`` must not precede the current clock.
        """
        time = float(time)
        if math.isnan(time) or math.isinf(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time, callback, next(self._sequence))
        self._push(event)
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single earliest pending event.

        Returns
        -------
        bool
            ``True`` if an event was executed, ``False`` if the
            calendar was empty.
        """
        event = None
        batch = self._batch
        while batch:
            candidate = batch.popleft()
            if not candidate._cancelled:
                event = candidate
                break
        if event is None:
            event = self._queue.pop_min()
            if event is None:
                return False
        if self._check:
            _invariants.check_time_monotonic(
                self._now, event.time, "Simulator.step"
            )
        self._now = event.time
        self._events_executed += 1
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly
            after ``until`` and advance the clock to exactly ``until``.
            Events scheduled at ``until`` itself *are* executed.  The
            clock only jumps to ``until`` when the queue is drained
            past it — if :meth:`stop` or ``max_events`` ended the run
            with events still pending at or before ``until``, the
            clock stays at the last executed event so a later
            :meth:`run` resumes without moving time backwards.
        max_events:
            Optional hard cap on the number of events to execute, a
            guard against accidental infinite event cascades.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        batch = self._batch
        horizon = _INF if until is None else until
        budget = _INF if max_events is None else max_events
        try:
            if type(queue) is HeapQueue and not batch and not self._check:
                # Fast path: dispatch straight off the heap list.  The
                # order is identical to the batched path below — a
                # same-timestamp run is just consecutive pops — but no
                # per-event method call or batch staging remains.
                heap = queue._heap
                while heap and not self._stopped and executed < budget:
                    time, _, event = heap[0]
                    if event._cancelled:
                        heappop(heap)
                        continue
                    if time > horizon:
                        break
                    heappop(heap)
                    event._owner = None
                    queue._live -= 1
                    self._now = time
                    self._events_executed += 1
                    event.callback()
                    executed += 1
            else:
                pop_run = queue.pop_run_into
                aborted = False
                while True:
                    if not batch and not pop_run(batch, until):
                        break
                    # All events in a run share one timestamp; a
                    # leftover run from an aborted previous call may
                    # lie past a tighter `until` and must not execute.
                    if batch and batch[0].time > horizon:
                        break
                    if self._check and batch:
                        self._verify_batch(batch)
                    while batch:
                        event = batch.popleft()
                        if event._cancelled:
                            continue
                        self._now = event.time
                        self._events_executed += 1
                        event.callback()
                        executed += 1
                        if self._stopped or executed >= budget:
                            aborted = True
                            break
                    if aborted:
                        break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            if not any(not event._cancelled for event in batch):
                next_time = queue.peek_time()
                if next_time is None or next_time > until:
                    self._now = until

    def _verify_batch(self, batch: "deque[Event]") -> None:
        """Sanitizer: a run must be coherent and never move time back."""
        run_time = batch[0].time
        _invariants.check_time_monotonic(
            self._now, run_time, "Simulator.run"
        )
        for event in batch:
            if event.time != run_time:  # repro-lint: disable=R4
                raise _invariants.InvariantViolation(
                    f"same-timestamp run mixes times {run_time!r} "
                    f"and {event.time!r}"
                )

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def clear(self) -> None:
        """Cancel all pending events and empty the calendar."""
        self._queue.clear()
        self._batch.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6g}, pending={self.pending_count}, "
            f"executed={self._events_executed})"
        )
