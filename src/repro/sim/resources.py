"""Counting resources and facilities (CSIM ``storage``/``facility``).

Two resource abstractions used by simulation models:

* :class:`Storage` -- a counting resource with a fixed capacity of
  homogeneous units.  Requests either succeed immediately, fail
  immediately (loss systems, as in admission control), or queue
  (waiting systems).  Link bandwidth in the anycast model is a loss
  resource: a flow that cannot get its bandwidth is rejected, it never
  queues.
* :class:`Facility` -- a single- or multi-server station with a FIFO
  queue, useful for modelling signalling processors and other
  serialized resources.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.sim.engine import SimulationError, Simulator
from repro.sim.stats import TimeWeightedStats


class Storage:
    """A counting resource with ``capacity`` homogeneous units.

    The anycast admission model treats link bandwidth as a *loss*
    resource, so the primary interface is :meth:`try_acquire` /
    :meth:`release`, which never block.  Occupancy over time is tracked
    with a time-weighted statistic so utilization can be reported.

    Parameters
    ----------
    sim:
        Owning simulator (used for time-weighted occupancy stats).
    capacity:
        Total number of units.
    name:
        Diagnostic label.
    """

    def __init__(self, sim: Simulator, capacity: float, name: str = "") -> None:
        if capacity < 0:
            raise SimulationError(f"capacity must be non-negative, got {capacity}")
        self._sim = sim
        self.name = name
        self._capacity = float(capacity)
        self._in_use = 0.0
        self._occupancy = TimeWeightedStats(clock=lambda: sim.now)
        self._occupancy.record(0.0)
        self.acquire_successes = 0
        self.acquire_failures = 0

    @property
    def capacity(self) -> float:
        """Total units in the resource."""
        return self._capacity

    @property
    def in_use(self) -> float:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> float:
        """Units free for new acquisitions."""
        return self._capacity - self._in_use

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Acquire ``amount`` units if available; never blocks.

        Returns ``True`` on success.  On failure the resource is left
        untouched and the failure counter is incremented.
        """
        if amount < 0:
            raise SimulationError(f"amount must be non-negative, got {amount}")
        if self._in_use + amount > self._capacity + 1e-9:
            self.acquire_failures += 1
            return False
        self._in_use += amount
        self._occupancy.record(self._in_use)
        self.acquire_successes += 1
        return True

    def release(self, amount: float = 1.0) -> None:
        """Return ``amount`` units to the pool."""
        if amount < 0:
            raise SimulationError(f"amount must be non-negative, got {amount}")
        if amount > self._in_use + 1e-9:
            raise SimulationError(
                f"storage {self.name!r}: releasing {amount} but only "
                f"{self._in_use} in use"
            )
        self._in_use = max(0.0, self._in_use - amount)
        self._occupancy.record(self._in_use)

    @property
    def mean_occupancy(self) -> float:
        """Time-weighted mean units in use since creation."""
        return self._occupancy.mean

    @property
    def utilization(self) -> float:
        """Time-weighted mean fraction of capacity in use."""
        if self._capacity == 0:
            return 0.0
        return self._occupancy.mean / self._capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Storage({self.name!r}, {self._in_use:g}/{self._capacity:g} in use)"
        )


class Facility:
    """A multi-server FIFO station (CSIM ``facility``).

    Customers are callbacks: :meth:`request` enqueues a service demand
    of ``service_time``; when a server becomes free the demand occupies
    it for that long and ``on_complete`` fires at departure.

    This is used by the RSVP-lite signalling model to serialize
    message processing at routers.
    """

    def __init__(self, sim: Simulator, servers: int = 1, name: str = "") -> None:
        if servers < 1:
            raise SimulationError(f"facility needs >= 1 server, got {servers}")
        self._sim = sim
        self.name = name
        self._servers = servers
        self._busy = 0
        self._queue: deque[tuple[float, Optional[Callable[[], None]]]] = deque()
        self.completed = 0
        self._busy_stats = TimeWeightedStats(clock=lambda: sim.now)
        self._busy_stats.record(0.0)

    @property
    def servers(self) -> int:
        """Number of servers."""
        return self._servers

    @property
    def busy(self) -> int:
        """Servers currently serving."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Demands waiting for a server."""
        return len(self._queue)

    @property
    def utilization(self) -> float:
        """Time-weighted mean fraction of servers busy."""
        return self._busy_stats.mean / self._servers

    def request(
        self, service_time: float, on_complete: Optional[Callable[[], None]] = None
    ) -> None:
        """Submit a demand for ``service_time`` units of service."""
        if service_time < 0:
            raise SimulationError(
                f"service time must be non-negative, got {service_time}"
            )
        if self._busy < self._servers:
            self._start(service_time, on_complete)
        else:
            self._queue.append((service_time, on_complete))

    def _start(
        self, service_time: float, on_complete: Optional[Callable[[], None]]
    ) -> None:
        self._busy += 1
        self._busy_stats.record(self._busy)
        self._sim.schedule(
            service_time, lambda: self._finish(on_complete)
        )

    def _finish(self, on_complete: Optional[Callable[[], None]]) -> None:
        self._busy -= 1
        self._busy_stats.record(self._busy)
        self.completed += 1
        if self._queue:
            service_time, callback = self._queue.popleft()
            self._start(service_time, callback)
        if on_complete is not None:
            on_complete()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Facility({self.name!r}, busy={self._busy}/{self._servers}, "
            f"queued={len(self._queue)})"
        )
