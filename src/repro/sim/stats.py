"""Output statistics for simulation runs.

Provides the estimators the experiment harness relies on:

* :class:`RunningStats` -- numerically stable (Welford) streaming
  mean/variance for observation-based statistics.
* :class:`TimeWeightedStats` -- time-weighted averages for state
  variables such as link occupancy.
* :class:`BatchMeans` -- batch-means partitioning of a long run into
  approximately independent batches for confidence intervals.
* :func:`confidence_interval` -- Student-t interval for a sample of
  replication (or batch) means.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from scipy import stats as _scipy_stats


class RunningStats:
    """Streaming mean and variance via Welford's algorithm.

    Numerically stable for long runs; O(1) memory.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel Welford)."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean += delta * other._count / total
        self._count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than 2 samples)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningStats(n={self._count}, mean={self.mean:.6g})"


class TimeWeightedStats:
    """Time-weighted average of a piecewise-constant state variable.

    Call :meth:`record` with the *new* value whenever the state
    changes; the time spent at the previous value is weighted in.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._last_time: Optional[float] = None
        self._last_value = 0.0
        self._weighted_sum = 0.0
        self._total_time = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float) -> None:
        """Register that the state becomes ``value`` now."""
        now = self._clock()
        if self._last_time is not None:
            span = now - self._last_time
            if span < 0:
                raise ValueError("clock moved backwards")
            self._weighted_sum += self._last_value * span
            self._total_time += span
        self._last_time = now
        self._last_value = float(value)
        if value < self._min:
            self._min = float(value)
        if value > self._max:
            self._max = float(value)

    def reset(self) -> None:
        """Discard accumulated history; keep the current value.

        Used to drop the warm-up period from utilization statistics.
        """
        self._last_time = self._clock()
        self._weighted_sum = 0.0
        self._total_time = 0.0
        self._min = self._last_value
        self._max = self._last_value

    @property
    def mean(self) -> float:
        """Time-weighted mean up to the last :meth:`record` call."""
        now = self._clock()
        weighted = self._weighted_sum
        total = self._total_time
        if self._last_time is not None and now > self._last_time:
            weighted += self._last_value * (now - self._last_time)
            total += now - self._last_time
        if total == 0:
            return self._last_value
        return weighted / total

    @property
    def current(self) -> float:
        """Most recently recorded value."""
        return self._last_value

    @property
    def total_time(self) -> float:
        """Observation time accumulated since construction or :meth:`reset`."""
        total = self._total_time
        now = self._clock()
        if self._last_time is not None and now > self._last_time:
            total += now - self._last_time
        return total

    @property
    def minimum(self) -> float:
        """Smallest recorded value."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest recorded value."""
        return self._max


class BatchMeans:
    """Batch-means estimator for steady-state simulation output.

    Observations are grouped into fixed-size batches; batch means are
    approximately independent for large batches, enabling a
    confidence interval from a single long run.
    """

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self._current = RunningStats()
        self._batch_means: list[float] = []

    def record(self, value: float) -> None:
        """Add one observation, closing a batch when it fills."""
        self._current.record(value)
        if self._current.count >= self.batch_size:
            self._batch_means.append(self._current.mean)
            self._current = RunningStats()

    @property
    def completed_batches(self) -> int:
        """Number of full batches accumulated."""
        return len(self._batch_means)

    @property
    def batch_means(self) -> list[float]:
        """Means of the completed batches."""
        return list(self._batch_means)

    @property
    def grand_mean(self) -> float:
        """Mean of the completed batch means (0.0 if none)."""
        if not self._batch_means:
            return 0.0
        return sum(self._batch_means) / len(self._batch_means)

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Student-t CI over the completed batch means."""
        return confidence_interval(self._batch_means, level)


def mser_truncation(samples: Sequence[float], batch_size: int = 5) -> int:
    """MSER-5 warm-up truncation point (White & Spratt).

    The experiment configs fix the warm-up length a priori (the
    paper's approach); this estimator determines it from data instead:
    observations are averaged into batches of ``batch_size``, and the
    truncation point ``d`` minimizes the *marginal standard error*

        MSER(d) = variance of batches d..n  /  (n - d)

    over the first half of the run (restricting to the first half is
    the standard guard against the statistic collapsing at the tail).
    Returns the number of **raw observations** to discard.

    Example
    -------
    >>> warmup = [0.0] * 50
    >>> steady = [1.0] * 200
    >>> mser_truncation(warmup + steady) >= 50
    True
    """
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
    batch_count = len(samples) // batch_size
    if batch_count < 4:
        return 0
    batch_means = [
        sum(samples[i * batch_size : (i + 1) * batch_size]) / batch_size
        for i in range(batch_count)
    ]
    best_d = 0
    best_score = math.inf
    half = batch_count // 2
    # Suffix sums from the right make each candidate O(1).
    suffix_sum = [0.0] * (batch_count + 1)
    suffix_sq = [0.0] * (batch_count + 1)
    for i in range(batch_count - 1, -1, -1):
        suffix_sum[i] = suffix_sum[i + 1] + batch_means[i]
        suffix_sq[i] = suffix_sq[i + 1] + batch_means[i] ** 2
    for d in range(half + 1):
        n = batch_count - d
        mean = suffix_sum[d] / n
        variance = max(0.0, suffix_sq[d] / n - mean * mean)
        score = variance / n
        if score < best_score:
            best_score = score
            best_d = d
    return best_d * batch_size


def confidence_interval(
    samples: Sequence[float], level: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval for the mean of ``samples``.

    Returns ``(low, high)``.  With fewer than two samples the interval
    degenerates to ``(mean, mean)``.
    """
    if not 0 < level < 1:
        raise ValueError(f"confidence level must be in (0,1), got {level}")
    n = len(samples)
    if n == 0:
        return (0.0, 0.0)
    mean = sum(samples) / n
    if n == 1:
        return (mean, mean)
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
    if variance == 0:
        return (mean, mean)
    quantile = float(_scipy_stats.t.ppf((1 + level) / 2, n - 1))
    half_width = quantile * math.sqrt(variance / n)
    return (mean - half_width, mean + half_width)
