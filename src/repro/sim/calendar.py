"""Calendar queue: an O(1) amortized pending-event set.

The default event list of :class:`repro.sim.engine.Simulator` is a
binary heap (O(log n) per operation).  Production discrete-event
simulators (including CSIM-era tools) often use Brown's *calendar
queue* instead: events hash into "day" buckets by timestamp, and with
buckets resized to track the event population, enqueue/dequeue run in
amortized O(1) for the quasi-stationary event-time distributions that
loss-network models produce.

This implementation follows Brown (CACM 1988): bucket count doubles /
halves when the population crosses 2x / 0.5x the bucket count, and the
bucket width is re-estimated from the average gap of a sample of
pending events.  The width is clamped from below — both absolutely and
relative to the timestamp magnitude — so a sample of events sharing
one timestamp (average gap zero) cannot produce a zero or denormal
width that breaks the cursor arithmetic.  Cancelled events are purged
lazily, only when they surface at the head of a bucket the dequeue
scan actually visits; no operation sweeps every bucket on the hot
path.

Ties preserve insertion order, matching the heap's determinism
guarantee exactly — the engine tests run against both implementations.
Select it with ``Simulator(queue="calendar")``; the benchmark
``benchmarks/test_substrate_microbench.py`` compares the two.
"""

from __future__ import annotations

import math
from typing import MutableSequence, Optional

from repro import invariants as _invariants
from repro.sim.engine import Event


class CalendarQueue:
    """Brown's calendar queue specialized for :class:`Event` items."""

    _MIN_BUCKETS = 4

    def __init__(self, initial_width: float = 1.0) -> None:
        if initial_width <= 0:
            raise ValueError(f"bucket width must be positive, got {initial_width}")
        self._width = float(initial_width)
        self._buckets: list[list[Event]] = [[] for _ in range(self._MIN_BUCKETS)]
        self._count = 0
        self._live = 0
        self._last_time = 0.0
        # Index of the bucket the next dequeue scans first, and the
        # absolute "year" bound it represents.
        self._cursor = 0
        self._cursor_top = self._width

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def push(self, event: Event) -> None:
        """Insert an event (its ``time`` must be >= the last pop)."""
        event._owner = self
        self._live += 1
        self._insert(event)
        if self._count > 2 * len(self._buckets):
            self._resize(2 * len(self._buckets))

    def _insert(self, event: Event) -> None:
        """Place an event in its bucket without ownership bookkeeping."""
        index = int(event.time / self._width) % len(self._buckets)
        bucket = self._buckets[index]
        # Buckets are kept sorted (time, sequence); insertion keeps the
        # common append-at-end case O(1).
        if not bucket or bucket[-1] < event:
            bucket.append(event)
        else:
            low, high = 0, len(bucket)
            while low < high:
                mid = (low + high) // 2
                if bucket[mid] < event:
                    low = mid + 1
                else:
                    high = mid
            bucket.insert(low, event)
        self._count += 1

    def _purge_head(self, bucket: list[Event]) -> None:
        """Drop cancelled events sitting at the head of one bucket."""
        while bucket and bucket[0]._cancelled:
            bucket.pop(0)
            self._count -= 1

    def pop_min(self) -> Optional[Event]:
        """Remove and return the earliest live event (``None`` if empty)."""
        if self._count == 0:
            return None
        buckets = self._buckets
        n = len(buckets)
        width = self._width
        # Scan a full "year" starting at the cursor; events belonging
        # to later years stay put.
        for _ in range(2):  # at most one wrap plus a direct-search pass
            for step in range(n):
                index = (self._cursor + step) % n
                bucket = buckets[index]
                self._purge_head(bucket)
                if bucket and bucket[0].time < self._cursor_top + step * width:
                    event = bucket.pop(0)
                    self._count -= 1
                    event._owner = None
                    self._live -= 1
                    self._cursor = index
                    self._cursor_top = (
                        math.floor(event.time / width) + 1
                    ) * width
                    if _invariants.enabled:
                        _invariants.check_time_monotonic(
                            self._last_time, event.time, "CalendarQueue.pop_min"
                        )
                    self._last_time = event.time
                    if self._count < len(self._buckets) // 2 and len(
                        self._buckets
                    ) > self._MIN_BUCKETS:
                        self._resize(max(self._MIN_BUCKETS, len(self._buckets) // 2))
                    return event
            # Nothing due this year: jump the cursor to the globally
            # minimal event (direct search) and retry once.
            best: Optional[Event] = None
            for bucket in buckets:
                self._purge_head(bucket)
                if bucket and (best is None or bucket[0] < best):
                    best = bucket[0]
            if best is None:
                return None
            self._cursor = int(best.time / width) % n
            self._cursor_top = (
                math.floor(best.time / width) + 1
            ) * width
        return None  # pragma: no cover - unreachable

    def pop_run_into(
        self, out: MutableSequence[Event], until: Optional[float] = None
    ) -> int:
        """Pop the earliest same-timestamp run of live events into ``out``.

        Same contract as :meth:`repro.sim.engine.HeapQueue.pop_run_into`:
        appends every live event sharing the earliest pending timestamp
        (insertion order preserved) and returns the count, or 0 when
        the queue is empty or the earliest event is past ``until``.
        """
        first = self.pop_min()
        if first is None:
            return 0
        if until is not None and first.time > until:
            # Cold path (once per run() horizon): put it back untouched.
            self.push(first)
            return 0
        out.append(first)
        count = 1
        time = first.time
        # Same-timestamp events hash to the same bucket and sit at its
        # head in insertion order; drain them without rescanning.
        bucket = self._buckets[int(time / self._width) % len(self._buckets)]
        # Same-timestamp batching: exact equality is the contract.
        while bucket and bucket[0].time == time:  # repro-lint: disable=R4
            event = bucket.pop(0)
            self._count -= 1
            if event._cancelled:
                continue
            event._owner = None
            self._live -= 1
            out.append(event)
            count += 1
        return count

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or ``None``."""
        best: Optional[Event] = None
        for bucket in self._buckets:
            self._purge_head(bucket)
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        return None if best is None else best.time

    def clear(self) -> None:
        """Drop every pending event."""
        for bucket in self._buckets:
            for event in bucket:
                event._owner = None
            bucket.clear()
        self._count = 0
        self._live = 0

    def live_count(self) -> int:
        """Number of pending, not-cancelled events (O(1))."""
        return self._live

    def _note_cancelled(self) -> None:
        """A still-queued event was cancelled (called by the event)."""
        self._live -= 1

    # ------------------------------------------------------------------
    def _resize(self, new_size: int) -> None:
        events = [
            event
            for bucket in self._buckets
            for event in bucket
            if not event._cancelled
        ]
        events.sort()
        self._width = self._estimate_width(events)
        self._buckets = [[] for _ in range(new_size)]
        self._count = 0
        self._cursor = int(self._last_time / self._width) % new_size
        self._cursor_top = (
            math.floor(self._last_time / self._width) + 1
        ) * self._width
        # _insert skips the live counter: the surviving events are
        # already counted (cancelled ones were decremented at cancel).
        for event in events:
            self._insert(event)

    @staticmethod
    def _estimate_width(sorted_events: list[Event]) -> float:
        """Bucket width ~ 3x the mean gap of a head sample (Brown).

        Clamped from below: a sample whose events all share one
        timestamp has average gap 0, and an unclamped width would be
        zero or denormal — every event then lands in one bucket
        "year", ``time / width`` overflows the integer range where
        floats are exact, and the cursor arithmetic degenerates (pops
        go quadratic or, worse, miss pending events).  The clamp is
        both absolute (1e-12) and relative to the timestamp magnitude,
        keeping ``time / width`` at or below ~1e9 so bucket indexing
        stays well inside the 2**53 exact-integer range of a double.
        """
        sample = sorted_events[:25]
        if len(sample) < 2:
            return 1.0
        scale = max(abs(sample[0].time), abs(sample[-1].time),
                    abs(sorted_events[-1].time))
        min_width = max(1e-12, 1e-9 * scale)
        gaps = [
            b.time - a.time for a, b in zip(sample, sample[1:]) if b.time > a.time
        ]
        if not gaps:
            return max(1.0, min_width)
        return max(3.0 * sum(gaps) / len(gaps), min_width)
