"""The anycast admission-control simulation model.

Recreates the paper's CSIM experiment (Section 5.1): flow requests
arrive in a Poisson stream, each is put through the admission system
under test, admitted flows hold bandwidth along their route for an
exponential lifetime, and the admission probability plus retrial
overhead are measured after a warm-up period.

The model is event-scheduled on :class:`repro.sim.engine.Simulator`
with two event types — request arrival and flow departure — which is
exactly the dynamics of a multi-service loss network.

Example
-------
>>> from repro.network.topologies import mci_backbone, MCI_SOURCES, MCI_GROUP_MEMBERS
>>> from repro.flows.group import AnycastGroup
>>> from repro.flows.traffic import WorkloadSpec
>>> from repro.core.system import SystemSpec
>>> spec = WorkloadSpec(
...     arrival_rate=20.0,
...     sources=MCI_SOURCES,
...     group=AnycastGroup("A", MCI_GROUP_MEMBERS),
... )
>>> sim = AnycastSimulation(
...     network_factory=mci_backbone,
...     system_spec=SystemSpec("ED", retrials=2),
...     workload=spec,
...     warmup_s=100.0,
...     measure_s=400.0,
...     seed=7,
... )
>>> result = sim.run()
>>> 0.0 <= result.admission_probability <= 1.0
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

NodeId = Hashable

from repro.core.admission import ACRouter
from repro.core.system import AdmissionSystem, SystemSpec, build_system
from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.traffic import TrafficModel, WorkloadSpec
from repro.network.faults import (
    FaultAwareReservationEngine,
    FaultInjector,
    FaultState,
)
from repro.network.topology import Network
from repro.sim.engine import Event, Simulator
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.sim.random_streams import StreamFactory
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class FaultConfig:
    """Random link fail/repair behaviour for a simulation run.

    Enables the paper's Section 3 fault extension: cables alternate
    between up and down states with exponential holding times; flows
    crossing a failing cable are torn down, and new requests simply
    find those routes unreservable (retrial control then steers them
    to other group members).

    Attributes
    ----------
    mean_time_to_failure_s:
        Mean up-time of each cable.
    mean_time_to_repair_s:
        Mean down-time of each cable.
    cables:
        Restrict faults to these cables (default: all).
    """

    mean_time_to_failure_s: float
    mean_time_to_repair_s: float
    cables: Optional[tuple[tuple[NodeId, NodeId], ...]] = None

    def __post_init__(self) -> None:
        if self.mean_time_to_failure_s <= 0 or self.mean_time_to_repair_s <= 0:
            raise ValueError("failure and repair means must be positive")


class AnycastSimulation:
    """One run of the paper's simulation experiment.

    Parameters
    ----------
    network_factory:
        Zero-argument callable building a *fresh* network (state is
        mutated by reservations, so each run needs its own instance).
    system_spec:
        The ``<A, R>`` admission system under test.
    workload:
        Traffic parameters (arrival rate, sources, group, lifetimes).
    warmup_s:
        Simulated seconds to discard before measuring (lets the loss
        network reach steady state; the paper's AP is defined "in a
        stable system").
    measure_s:
        Length of the measurement window in simulated seconds.
    seed:
        Root seed; all streams (arrivals, lifetimes, source choice,
        per-router selection dice) derive from it deterministically.
    batch_size:
        Batch size for the AP confidence interval.
    fault_config:
        Optional random link fail/repair behaviour.  Supported for the
        distributed systems; GDI's global path search would need
        fault-aware routing, which is out of the paper's scope.
    trace:
        Optional :class:`repro.sim.trace.TraceRecorder` capturing a
        per-request record of every decision in the measurement window.
    queue:
        Pending-event set implementation passed through to
        :class:`repro.sim.engine.Simulator`: ``"heap"`` (default) or
        ``"calendar"``.  Results are bit-identical either way; only
        the performance profile differs.
    """

    def __init__(
        self,
        network_factory: Callable[[], Network],
        system_spec: SystemSpec,
        workload: WorkloadSpec,
        warmup_s: float = 1000.0,
        measure_s: float = 4000.0,
        seed: int = 0,
        batch_size: int = 200,
        fault_config: Optional[FaultConfig] = None,
        trace: Optional["TraceRecorder"] = None,
        queue: str = "heap",
    ) -> None:
        if warmup_s < 0 or measure_s <= 0:
            raise ValueError(
                f"need warmup >= 0 and measure > 0, got {warmup_s}, {measure_s}"
            )
        if fault_config is not None and system_spec.algorithm == "GDI":
            raise ValueError(
                "fault injection is supported for distributed systems only"
            )
        self.network = network_factory()
        self.system_spec = system_spec
        self.workload = workload
        self.warmup_s = warmup_s
        self.measure_s = measure_s
        self.horizon_s = warmup_s + measure_s
        self.seed = seed
        self.streams = StreamFactory(seed)
        self.simulator = Simulator(queue=queue)
        self.system: AdmissionSystem = build_system(
            system_spec,
            self.network,
            workload.sources,
            workload.group,
            self.streams,
            clock=lambda: self.simulator.now,
        )
        self.traffic = TrafficModel(workload, self.streams)
        self.metrics = MetricsCollector(
            clock=lambda: self.simulator.now, batch_size=batch_size
        )
        self.trace = trace
        self._active: dict[int, tuple[AdmittedFlow, Event]] = {}
        self.flows_dropped_by_faults = 0
        self.fault_state: Optional[FaultState] = None
        self._fault_injector: Optional[FaultInjector] = None
        if fault_config is not None:
            self.fault_state = FaultState(self.network)
            engine = FaultAwareReservationEngine(self.network, self.fault_state)
            # Every AC-router shares the fault-aware engine so failed
            # routes are refused like saturated ones.
            for source in workload.sources:
                controller = self.system.controller_for(source)
                assert isinstance(controller, ACRouter)  # GDI rejected above
                controller.reservation = engine
            self._fault_injector = FaultInjector(
                self.simulator,
                self.fault_state,
                self.streams.stream("faults"),
                mean_time_to_failure_s=fault_config.mean_time_to_failure_s,
                mean_time_to_repair_s=fault_config.mean_time_to_repair_s,
                cables=fault_config.cables,
                on_fail=self._handle_fault,
            )
        self._ran = False

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        request = self.traffic.next_request()
        if request.arrival_time > self.horizon_s:
            return
        self.simulator.schedule_at(
            request.arrival_time, lambda: self._handle_arrival(request)
        )

    def _handle_arrival(self, request: FlowRequest) -> None:
        self._schedule_next_arrival()
        result = self.system.admit(request)
        in_window = request.arrival_time >= self.warmup_s
        if in_window:
            self.metrics.record_decision(result)
            if self.trace is not None:
                self.trace.record(result)
        if result.admitted:
            assert result.flow is not None  # admitted implies a granted flow
            flow: AdmittedFlow = result.flow
            self.metrics.record_flow_start()
            departure = self.simulator.schedule(
                request.lifetime_s, lambda: self._handle_departure(flow)
            )
            self._active[flow.flow_id] = (flow, departure)

    def _handle_departure(self, flow: AdmittedFlow) -> None:
        self._active.pop(flow.flow_id, None)
        self.system.release(flow)
        self.metrics.record_flow_end()

    def _handle_fault(
        self, cable: tuple[NodeId, NodeId], killed_flow_ids: list[int]
    ) -> None:
        """Finish tearing down flows whose route crossed a failed cable."""
        for flow_id in killed_flow_ids:
            entry = self._active.pop(flow_id, None)
            if entry is None:
                continue
            flow, departure = entry
            departure.cancel()
            # The failed cable already dropped its legs; release the rest.
            controller = self.system.controller_for(flow.request.source)
            assert isinstance(controller, ACRouter)  # faults imply distributed
            controller.reservation.release(flow.path, flow_id)
            flow.released = True
            self.metrics.record_flow_end()
            self.flows_dropped_by_faults += 1

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the run and return its summary.

        A simulation object is single-use; build a new one per run.
        """
        if self._ran:
            raise RuntimeError("AnycastSimulation objects are single-use")
        self._ran = True
        if self._fault_injector is not None:
            self._fault_injector.start()
        # Drop the warm-up ramp from the occupancy statistic: the AP
        # metrics already filter on arrival_time >= warmup_s, but the
        # time-weighted active-flow average would otherwise keep the
        # empty-network transient in its integral and bias the mean
        # low.  The reset keeps the current occupancy as the value at
        # the start of the measurement window.
        self.simulator.schedule_at(self.warmup_s, self.metrics.active_flows.reset)
        self._schedule_next_arrival()
        self.simulator.run(until=self.horizon_s)
        if self._fault_injector is not None:
            # Stop the self-rescheduling fault timers so callers can
            # drain the remaining departures with an unbounded run().
            self._fault_injector.stop()
        ci_low, ci_high = self.metrics.admission_probability_ci()
        destination_share = {
            destination: count / self.metrics.admitted
            for destination, count in sorted(
                self.metrics.destination_counts.items(), key=lambda kv: repr(kv[0])
            )
        } if self.metrics.admitted else {}
        # Instantaneous utilization at the measurement horizon, not a
        # time-weighted average: it answers "what did the network look
        # like at the end of the run" (see SimulationResult docs).
        link_utilization = {
            (link.source, link.target): link.utilization
            for link in self.network.links()
        }
        return SimulationResult(
            system_label=self.system_spec.label,
            arrival_rate=self.workload.arrival_rate,
            duration_s=self.measure_s,
            warmup_s=self.warmup_s,
            requests=self.metrics.requests,
            admitted=self.metrics.admitted,
            admission_probability=self.metrics.admission_probability,
            ap_ci_low=ci_low,
            ap_ci_high=ci_high,
            mean_attempts=self.metrics.mean_attempts,
            mean_retrials=self.metrics.mean_retrials,
            mean_active_flows=self.metrics.active_flows.mean,
            destination_share=destination_share,
            attempt_histogram=dict(sorted(self.metrics.attempt_histogram.items())),
            link_utilization=link_utilization,
            per_source_ap=self.metrics.per_source_ap(),
            fairness_index=self.metrics.fairness_index(),
        )


def run_simulation(
    network_factory: Callable[[], Network],
    system_spec: SystemSpec,
    workload: WorkloadSpec,
    warmup_s: float = 1000.0,
    measure_s: float = 4000.0,
    seed: int = 0,
    queue: str = "heap",
) -> SimulationResult:
    """Convenience wrapper: build and run one :class:`AnycastSimulation`."""
    simulation = AnycastSimulation(
        network_factory=network_factory,
        system_spec=system_spec,
        workload=workload,
        warmup_s=warmup_s,
        measure_s=measure_s,
        seed=seed,
        queue=queue,
    )
    return simulation.run()
