"""Discrete-event simulation substrate.

The paper evaluated its Distributed Admission Control procedure with
Mesquite CSIM, a closed-source, process-oriented simulation toolkit
written in C.  This subpackage is a from-scratch, pure-Python
equivalent providing the same modelling vocabulary:

* :mod:`repro.sim.engine` -- the event calendar and simulation clock.
* :mod:`repro.sim.process` -- generator-based processes (``hold``,
  ``wait``) in the style of CSIM processes.
* :mod:`repro.sim.resources` -- counting resources and facilities.
* :mod:`repro.sim.random_streams` -- reproducible named random streams.
* :mod:`repro.sim.stats` -- output statistics (Welford accumulators,
  time-weighted averages, batch means, confidence intervals).
* :mod:`repro.sim.simulation` -- the anycast admission-control
  simulation model built on top of the engine.
* :mod:`repro.sim.metrics` -- metric collection for simulation runs.
"""

from typing import Any

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.process import Process, Signal, hold, wait
from repro.sim.random_streams import RandomStream, StreamFactory
from repro.sim.resources import Facility, Storage
from repro.sim.stats import (
    BatchMeans,
    RunningStats,
    TimeWeightedStats,
    confidence_interval,
)
from repro.sim.trace import FlowRecord, TraceRecorder

# FaultConfig and the simulation classes live in repro.sim.simulation;
# importing them here would recreate the sim <-> core import cycle, so
# they are re-exported lazily.
def __getattr__(name: str) -> Any:
    if name in ("AnycastSimulation", "FaultConfig", "run_simulation"):
        from repro.sim import simulation

        return getattr(simulation, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")


__all__ = [
    "BatchMeans",
    "Event",
    "Facility",
    "FlowRecord",
    "Process",
    "RandomStream",
    "RunningStats",
    "Signal",
    "SimulationError",
    "Simulator",
    "Storage",
    "StreamFactory",
    "TimeWeightedStats",
    "TraceRecorder",
    "confidence_interval",
    "hold",
    "wait",
]
