"""Generator-based processes in the style of CSIM.

CSIM models systems as *processes* that ``hold`` for simulated time and
``wait`` on events.  This module offers the same vocabulary on top of
:class:`repro.sim.engine.Simulator`: a :class:`Process` wraps a Python
generator; the generator yields :class:`Hold` or :class:`Wait` commands
and the scheduler resumes it when the corresponding condition is met.

Example
-------
>>> from repro.sim.engine import Simulator
>>> sim = Simulator()
>>> log = []
>>> def worker():
...     yield hold(1.5)
...     log.append(sim.now)
...     yield hold(0.5)
...     log.append(sim.now)
>>> _ = Process(sim, worker())
>>> sim.run()
>>> log
[1.5, 2.0]
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.sim.engine import SimulationError, Simulator


class Hold:
    """Command: suspend the process for ``delay`` simulated time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"hold delay must be non-negative, got {delay}")
        self.delay = float(delay)


class Wait:
    """Command: suspend the process until ``signal`` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: "Signal") -> None:
        self.signal = signal


def hold(delay: float) -> Hold:
    """Return a :class:`Hold` command (CSIM ``hold(t)``)."""
    return Hold(delay)


def wait(signal: "Signal") -> Wait:
    """Return a :class:`Wait` command (CSIM ``wait(ev)``)."""
    return Wait(signal)


class Signal:
    """A broadcast condition processes can wait on (CSIM *event*).

    :meth:`fire` resumes every waiting process at the current
    simulation time, passing an optional payload as the value of the
    ``yield`` expression.

    Parameters
    ----------
    latch:
        With the default edge-triggered semantics a process that
        starts waiting *after* the fire sleeps until the next fire.
        A latched signal instead stays "set" once fired: late waiters
        resume immediately (with the most recent payload).  Process
        termination and completion conditions use latched signals.
    """

    def __init__(
        self, sim: Simulator, name: str = "", latch: bool = False
    ) -> None:
        self._sim = sim
        self.name = name
        self.latch = latch
        self._waiters: list[Process] = []
        self._fired_count = 0
        self._last_payload: Any = None

    @property
    def waiter_count(self) -> int:
        """Number of processes currently blocked on this signal."""
        return len(self._waiters)

    @property
    def fired_count(self) -> int:
        """Number of times :meth:`fire` has been called."""
        return self._fired_count

    def fire(self, payload: Any = None) -> int:
        """Wake all waiters; returns the number of processes resumed."""
        self._fired_count += 1
        self._last_payload = payload
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim.schedule(0.0, lambda p=process: p._resume(payload))
        return len(waiters)

    def _enlist(self, process: "Process") -> None:
        if self.latch and self._fired_count > 0:
            payload = self._last_payload
            self._sim.schedule(0.0, lambda: process._resume(payload))
            return
        self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """A simulated process driven by a Python generator.

    The generator may yield:

    * ``hold(t)`` -- advance this process by ``t`` simulated time units;
    * ``wait(signal)`` -- block until the signal fires; the ``yield``
      evaluates to the payload passed to :meth:`Signal.fire`;
    * a bare ``float``/``int`` -- shorthand for ``hold(value)``.

    The process starts automatically at the current simulation time
    unless ``start_delay`` is given.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        name: str = "",
        start_delay: float = 0.0,
    ) -> None:
        self._sim = sim
        self._generator = generator
        self.name = name
        self._alive = True
        self._terminated_signal: Optional[Signal] = None
        sim.schedule(start_delay, lambda: self._resume(None))

    @property
    def alive(self) -> bool:
        """``True`` until the generator is exhausted or interrupted."""
        return self._alive

    def terminated(self) -> Signal:
        """Latched signal fired when this process finishes."""
        if self._terminated_signal is None:
            self._terminated_signal = Signal(
                self._sim, f"{self.name}.terminated", latch=True
            )
            if not self._alive:
                self._terminated_signal.fire()
        return self._terminated_signal

    def interrupt(self) -> None:
        """Kill the process; the generator's ``close()`` is invoked."""
        if not self._alive:
            return
        self._alive = False
        self._generator.close()
        if self._terminated_signal is not None:
            self._terminated_signal.fire()

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        try:
            command = self._generator.send(value)
        except StopIteration:
            self._finish()
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Hold):
            self._sim.schedule(command.delay, lambda: self._resume(None))
        elif isinstance(command, Wait):
            command.signal._enlist(self)
        elif isinstance(command, (int, float)):
            self._sim.schedule(float(command), lambda: self._resume(None))
        else:
            self._alive = False
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )

    def _finish(self) -> None:
        self._alive = False
        if self._terminated_signal is not None:
            self._terminated_signal.fire()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, {state})"


def all_of(sim: Simulator, processes: Iterable[Process]) -> Signal:
    """Return a latched signal that fires once every process terminated."""
    processes = list(processes)
    done = Signal(sim, "all_of", latch=True)
    if not processes:
        done.fire()
        return done

    state = {"remaining": len(processes)}

    def make_waiter(process: Process) -> Generator[Any, Any, None]:
        def waiter() -> Generator[Any, Any, None]:
            yield wait(process.terminated())
            state["remaining"] -= 1
            if state["remaining"] == 0:
                done.fire()

        return waiter()

    for process in processes:
        Process(sim, make_waiter(process), name="all_of.waiter")
    return done
