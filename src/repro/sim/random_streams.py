"""Reproducible named random streams.

CSIM gives each stochastic component its own random stream so that
changing one part of a model does not perturb the variate sequences of
the others (common random numbers).  We reproduce this with numpy's
``SeedSequence`` spawning: a :class:`StreamFactory` holds a root seed
and derives an independent, deterministic child stream for every
*name*, so the arrival process, the lifetime sampler, the source
chooser and each AC-router's selection dice all have their own streams.

Identical ``(root_seed, name)`` pairs always produce identical variate
sequences, which makes whole experiments bit-for-bit reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Any, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def _name_to_entropy(name: str) -> int:
    """Hash a stream name to a stable 128-bit integer."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


class RandomStream:
    """A single named random stream with distribution helpers.

    Thin wrapper over :class:`numpy.random.Generator` exposing exactly
    the variates the anycast model needs, with validation.
    """

    def __init__(
        self, seed_sequence: np.random.SeedSequence, name: str = ""
    ) -> None:
        self.name = name
        self._generator = np.random.Generator(np.random.PCG64(seed_sequence))
        self.draws = 0

    def exponential(self, mean: float) -> float:
        """Sample an exponential variate with the given mean."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        self.draws += 1
        return float(self._generator.exponential(mean))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Sample uniformly from ``[low, high)``."""
        if high < low:
            raise ValueError(f"need low <= high, got [{low}, {high})")
        self.draws += 1
        return float(self._generator.uniform(low, high))

    def integer(self, low: int, high: int) -> int:
        """Sample an integer uniformly from ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"need low <= high, got [{low}, {high}]")
        self.draws += 1
        return int(self._generator.integers(low, high + 1))

    def choice(self, items: Sequence[T]) -> T:
        """Pick one item uniformly."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        self.draws += 1
        return items[int(self._generator.integers(0, len(items)))]

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one item with probability proportional to its weight.

        Weights must be non-negative with a positive sum; they are
        normalized internally, so callers may pass unnormalized values.
        """
        if len(items) != len(weights):
            raise ValueError(
                f"{len(items)} items but {len(weights)} weights"
            )
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        total = 0.0
        for weight in weights:
            if weight < 0:
                raise ValueError(f"negative weight {weight}")
            total += weight
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.draws += 1
        point = self._generator.uniform(0.0, total)
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if point < acc:
                return item
        return items[-1]  # guard against floating-point edge at total

    def shuffle(self, items: "list[Any]") -> None:
        """Shuffle ``items`` in place."""
        self.draws += 1
        self._generator.shuffle(items)

    def poisson(self, mean: float) -> int:
        """Sample a Poisson count with the given mean."""
        if mean < 0:
            raise ValueError(f"poisson mean must be non-negative, got {mean}")
        self.draws += 1
        return int(self._generator.poisson(mean))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStream({self.name!r}, draws={self.draws})"


class StreamFactory:
    """Derives independent named :class:`RandomStream` objects.

    Parameters
    ----------
    root_seed:
        Experiment-level seed.  Every stream name deterministically
        maps to its own child seed, so two factories with the same root
        seed hand out identical streams for identical names.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._issued: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* stream
        object (its internal state advances as it is used).
        """
        existing = self._issued.get(name)
        if existing is not None:
            return existing
        seed_sequence = np.random.SeedSequence(
            entropy=self.root_seed, spawn_key=(_name_to_entropy(name),)
        )
        stream = RandomStream(seed_sequence, name=name)
        self._issued[name] = stream
        return stream

    def fresh(self, name: str, replication: int = 0) -> RandomStream:
        """Return a *new* stream for (name, replication).

        Unlike :meth:`stream`, this always constructs a fresh stream;
        useful for independent replications of the same experiment.
        """
        seed_sequence = np.random.SeedSequence(
            entropy=self.root_seed,
            spawn_key=(_name_to_entropy(name), int(replication)),
        )
        return RandomStream(seed_sequence, name=f"{name}#{replication}")

    def issued_names(self) -> list[str]:
        """Names of all streams created so far, in creation order."""
        return list(self._issued)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamFactory(seed={self.root_seed}, streams={len(self._issued)})"
