"""Per-flow trace records for simulation post-analysis.

The aggregate metrics of :mod:`repro.sim.metrics` answer the paper's
questions; debugging a selection algorithm or studying fairness needs
the underlying per-request records.  :class:`TraceRecorder` captures
one :class:`FlowRecord` per admission decision (bounded, FIFO-evicting
so long runs cannot exhaust memory) and offers simple queries plus CSV
export.
"""

from __future__ import annotations

import csv
import io
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> core cycle
    from repro.core.admission import AdmissionResult

NodeId = Hashable


@dataclass(frozen=True)
class FlowRecord:
    """One admission decision, flattened for analysis.

    Attributes
    ----------
    flow_id, source:
        Request identity.
    arrival_time:
        When the request arrived.
    admitted:
        Decision outcome.
    destination:
        Selected member (``None`` if rejected).
    hop_count:
        Route length of the admitted flow (0 if rejected).
    attempts:
        Destinations tried.
    tried:
        The tried destinations in order.
    lifetime_s:
        Requested holding time (``None`` for open-ended flows).
    """

    flow_id: int
    source: NodeId
    arrival_time: float
    admitted: bool
    destination: Optional[NodeId]
    hop_count: int
    attempts: int
    tried: tuple[NodeId, ...]
    lifetime_s: Optional[float]

    @classmethod
    def from_result(cls, result: "AdmissionResult") -> "FlowRecord":
        """Flatten an :class:`AdmissionResult`."""
        flow = result.flow
        return cls(
            flow_id=result.request.flow_id,
            source=result.request.source,
            arrival_time=result.request.arrival_time,
            admitted=result.admitted,
            destination=flow.destination if flow else None,
            hop_count=flow.hop_count if flow else 0,
            attempts=result.attempts,
            tried=result.tried,
            lifetime_s=result.request.lifetime_s,
        )


#: Columns of the CSV export, in order.
CSV_COLUMNS = (
    "flow_id",
    "source",
    "arrival_time",
    "admitted",
    "destination",
    "hop_count",
    "attempts",
    "tried",
    "lifetime_s",
)


class TraceRecorder:
    """Bounded FIFO store of :class:`FlowRecord` objects.

    Parameters
    ----------
    max_records:
        Oldest records are evicted beyond this bound (default one
        million, ~100 MB worst case).
    """

    def __init__(self, max_records: int = 1_000_000) -> None:
        if max_records < 1:
            raise ValueError(f"max records must be >= 1, got {max_records}")
        self._records: deque[FlowRecord] = deque(maxlen=max_records)
        self.total_seen = 0

    def record(self, result: "AdmissionResult") -> FlowRecord:
        """Append the record for one admission decision."""
        record = FlowRecord.from_result(result)
        self._records.append(record)
        self.total_seen += 1
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._records)

    @property
    def evicted(self) -> int:
        """Records discarded by the FIFO bound."""
        return self.total_seen - len(self._records)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def admitted(self) -> list[FlowRecord]:
        """Records of admitted flows."""
        return [r for r in self._records if r.admitted]

    def rejected(self) -> list[FlowRecord]:
        """Records of rejected requests."""
        return [r for r in self._records if not r.admitted]

    def by_source(self, source: NodeId) -> list[FlowRecord]:
        """Records originating at ``source``."""
        return [r for r in self._records if r.source == source]

    def by_destination(self, destination: NodeId) -> list[FlowRecord]:
        """Admitted records terminating at ``destination``."""
        return [r for r in self._records if r.destination == destination]

    def admission_probability(self) -> float:
        """AP over the retained records (0 when empty)."""
        if not self._records:
            return 0.0
        return sum(1 for r in self._records if r.admitted) / len(self._records)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_csv(self, path: Optional[str] = None) -> str:
        """Serialize all retained records as CSV.

        Writes to ``path`` if given; always returns the CSV text.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(CSV_COLUMNS)
        for r in self._records:
            writer.writerow(
                [
                    r.flow_id,
                    r.source,
                    f"{r.arrival_time:.6f}",
                    int(r.admitted),
                    "" if r.destination is None else r.destination,
                    r.hop_count,
                    r.attempts,
                    "|".join(str(t) for t in r.tried),
                    "" if r.lifetime_s is None else f"{r.lifetime_s:.6f}",
                ]
            )
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text
