"""Metric collection for admission-control simulation runs.

Collects exactly what the paper's evaluation reports:

* **Admission Probability (AP)** -- fraction of requests admitted in
  the (post-warm-up) measurement window, with a batch-means confidence
  interval.
* **Average number of retrials** -- mean destinations tried beyond the
  first per request (Figure 7's overhead metric).

plus supporting detail: per-destination admission counts, attempt
histograms, concurrent-flow occupancy and link utilization.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.core.admission import AdmissionResult
from repro.sim.stats import BatchMeans, RunningStats, TimeWeightedStats

NodeId = Hashable


class MetricsCollector:
    """Accumulates per-request observations during the measurement window.

    Parameters
    ----------
    clock:
        Zero-argument callable returning current simulation time.
    batch_size:
        Batch size for the batch-means CI on the admission indicator.
    """

    def __init__(
        self, clock: Callable[[], float], batch_size: int = 200
    ) -> None:
        self._clock = clock
        self.requests = 0
        self.admitted = 0
        self.attempts = RunningStats()
        self.retrials = RunningStats()
        self.admit_batches = BatchMeans(batch_size)
        self.destination_counts: Counter[NodeId] = Counter()
        self.attempt_histogram: Counter[int] = Counter()
        self.source_requests: Counter[NodeId] = Counter()
        self.source_admitted: Counter[NodeId] = Counter()
        self.active_flows = TimeWeightedStats(clock)
        self.active_flows.record(0.0)
        self._active = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_decision(self, result: AdmissionResult) -> None:
        """Record an admission decision made inside the window."""
        self.requests += 1
        self.attempts.record(result.attempts)
        self.retrials.record(result.retrials)
        self.attempt_histogram[result.attempts] += 1
        self.admit_batches.record(1.0 if result.admitted else 0.0)
        self.source_requests[result.request.source] += 1
        if result.admitted:
            flow = result.flow
            assert flow is not None  # admitted implies a granted flow
            self.admitted += 1
            self.destination_counts[flow.destination] += 1
            self.source_admitted[result.request.source] += 1

    def record_flow_start(self) -> None:
        """A flow began holding resources (counted regardless of window)."""
        self._active += 1
        self.active_flows.record(self._active)

    def record_flow_end(self) -> None:
        """A flow released its resources."""
        self._active -= 1
        self.active_flows.record(self._active)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def admission_probability(self) -> float:
        """AP over the measurement window (0 when no requests)."""
        if self.requests == 0:
            return 0.0
        return self.admitted / self.requests

    @property
    def mean_attempts(self) -> float:
        """Mean destinations tried per request."""
        return self.attempts.mean

    @property
    def mean_retrials(self) -> float:
        """Mean retrials per request (attempts beyond the first)."""
        return self.retrials.mean

    def admission_probability_ci(self, level: float = 0.95) -> tuple[float, float]:
        """Batch-means confidence interval on AP."""
        return self.admit_batches.confidence_interval(level)

    def per_source_ap(self) -> dict[NodeId, float]:
        """AP seen by each source over the measurement window."""
        return {
            source: self.source_admitted.get(source, 0) / count
            for source, count in sorted(
                self.source_requests.items(), key=lambda kv: repr(kv[0])
            )
            if count > 0
        }

    def fairness_index(self) -> float:
        """Jain's fairness index over the per-source APs.

        1.0 means every source enjoys the same admission probability;
        1/n means a single source gets everything.  Measures whether a
        selection algorithm starves poorly-placed sources — a question
        the paper's aggregate AP hides.
        """
        values = list(self.per_source_ap().values())
        if not values:
            return 1.0
        total = sum(values)
        squares = sum(v * v for v in values)
        if squares == 0:
            return 1.0
        return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class SimulationResult:
    """Summary of one simulation run, as the experiment harness reports it.

    Attributes mirror the paper's metrics.  ``mean_active_flows`` is
    the time-weighted average concurrent-flow count over the
    measurement window only (the warm-up ramp is dropped at
    ``warmup_s``).  ``link_utilization`` maps each directed link to
    its *instantaneous* utilization at the measurement horizon — a
    point-in-time snapshot, not a time-weighted average.
    """

    system_label: str
    arrival_rate: float
    duration_s: float
    warmup_s: float
    requests: int
    admitted: int
    admission_probability: float
    ap_ci_low: float
    ap_ci_high: float
    mean_attempts: float
    mean_retrials: float
    mean_active_flows: float
    destination_share: dict[NodeId, float] = field(default_factory=dict)
    attempt_histogram: dict[int, int] = field(default_factory=dict)
    link_utilization: dict[tuple[NodeId, NodeId], float] = field(
        default_factory=dict
    )
    per_source_ap: dict[NodeId, float] = field(default_factory=dict)
    fairness_index: float = 1.0

    @property
    def rejected(self) -> int:
        """Requests refused in the measurement window."""
        return self.requests - self.admitted

    def __str__(self) -> str:
        return (
            f"{self.system_label}: lambda={self.arrival_rate:g}/s  "
            f"AP={self.admission_probability:.4f} "
            f"[{self.ap_ci_low:.4f}, {self.ap_ci_high:.4f}]  "
            f"retrials={self.mean_retrials:.3f}  n={self.requests}"
        )
