"""Reproduction of Xuan & Jia, "Distributed Admission Control for
Anycast Flows with QoS Requirements" (ICDCS 2001).

An anycast flow may be delivered to any one member of a group of
designated recipients.  This library implements the paper's
Distributed Admission Control (DAC) procedure — randomized,
weight-driven destination selection, RSVP-style resource reservation
and counter-based retrial control — together with every substrate the
evaluation needs: a process-oriented discrete-event simulator, a
capacitated network model with the 19-node MCI backbone, baseline
systems (SP and the idealized GDI), and the reduced-load / fixed-point
mathematical analysis of the appendix.

Quickstart
----------
>>> import repro
>>> result = repro.quick_run("WD/D+H", retrials=2, arrival_rate=20.0, seed=1)
>>> 0.0 < result.admission_probability <= 1.0
True

Subpackages
-----------
``repro.core``
    The DAC procedure and its destination-selection algorithms.
``repro.network``
    Links, topologies and fixed-path routing.
``repro.flows``
    Anycast groups, flow requests, QoS and traffic models.
``repro.sim``
    Discrete-event simulation substrate and the experiment model.
``repro.signaling``
    RSVP-lite PATH/RESV signalling for overhead studies.
``repro.analysis``
    Erlang/UAA blocking and the reduced-load fixed-point analysis.
``repro.baselines``
    SP and GDI comparison systems.
``repro.experiments``
    Regeneration of every table and figure in the paper.
"""

from repro.core.system import SystemSpec, build_system
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import (
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    mci_backbone,
)
from repro.sim.metrics import SimulationResult
from repro.sim.simulation import AnycastSimulation, run_simulation

__version__ = "1.0.0"

__all__ = [
    "AnycastGroup",
    "AnycastSimulation",
    "MCI_GROUP_MEMBERS",
    "MCI_SOURCES",
    "SimulationResult",
    "SystemSpec",
    "WorkloadSpec",
    "build_system",
    "mci_backbone",
    "quick_run",
    "run_simulation",
]


def quick_run(
    algorithm: str = "WD/D+H",
    retrials: int = 2,
    arrival_rate: float = 20.0,
    warmup_s: float = 500.0,
    measure_s: float = 2000.0,
    seed: int = 0,
    queue: str = "heap",
) -> SimulationResult:
    """Run the paper's MCI-backbone experiment with sensible defaults.

    Parameters
    ----------
    algorithm:
        ``"ED"``, ``"WD/D"``, ``"WD/D+H"``, ``"WD/D+B"``, ``"SP"`` or
        ``"GDI"``.
    retrials:
        The retrial limit ``R``.
    arrival_rate:
        Aggregate Poisson request rate (requests/second).
    warmup_s, measure_s:
        Warm-up and measurement windows in simulated seconds.
    seed:
        Root random seed.
    queue:
        Pending-event set implementation (``"heap"`` or
        ``"calendar"``); results are bit-identical either way.
    """
    workload = WorkloadSpec(
        arrival_rate=arrival_rate,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
    )
    return run_simulation(
        network_factory=mci_backbone,
        system_spec=SystemSpec(algorithm, retrials=retrials),
        workload=workload,
        warmup_s=warmup_s,
        measure_s=measure_s,
        seed=seed,
        queue=queue,
    )
