"""Experiment execution: replicated points and parameter sweeps.

:func:`run_point` runs one ``(system, arrival rate)`` point with the
configured number of independent replications and aggregates the
admission probability and retrial overhead with confidence intervals.
:func:`sweep` maps that over a lambda grid for several systems,
producing the series behind each figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.system import SystemSpec
from repro.experiments.config import ExperimentConfig
from repro.sim.metrics import SimulationResult
from repro.sim.simulation import AnycastSimulation
from repro.sim.stats import confidence_interval


@dataclass(frozen=True)
class PointResult:
    """Aggregated result of one system at one arrival rate.

    Means are across replications; the confidence intervals are
    Student-t over replication means (or the single run's batch-means
    interval when ``replications == 1``).
    """

    system_label: str
    arrival_rate: float
    replications: int
    admission_probability: float
    ap_ci_low: float
    ap_ci_high: float
    mean_retrials: float
    mean_attempts: float
    requests: int
    runs: tuple = field(default=(), repr=False)

    def __str__(self) -> str:
        return (
            f"{self.system_label} @ lambda={self.arrival_rate:g}: "
            f"AP={self.admission_probability:.4f} "
            f"[{self.ap_ci_low:.4f}, {self.ap_ci_high:.4f}] "
            f"retrials={self.mean_retrials:.3f}"
        )


@dataclass(frozen=True)
class SweepResult:
    """One system's series over the arrival-rate grid."""

    system_label: str
    points: tuple

    def arrival_rates(self) -> list[float]:
        """The lambda grid of the series."""
        return [point.arrival_rate for point in self.points]

    def admission_probabilities(self) -> list[float]:
        """AP values in grid order."""
        return [point.admission_probability for point in self.points]

    def mean_retrials(self) -> list[float]:
        """Retrial overhead values in grid order."""
        return [point.mean_retrials for point in self.points]

    def point_at(self, arrival_rate: float) -> PointResult:
        """The point for a given lambda."""
        for point in self.points:
            if point.arrival_rate == arrival_rate:
                return point
        raise KeyError(f"no point at arrival rate {arrival_rate}")


def run_replication(
    spec: SystemSpec,
    arrival_rate: float,
    config: ExperimentConfig,
    replication: int,
) -> SimulationResult:
    """Run the ``replication``-th independent simulation of one point.

    Replication ``i`` uses seed ``config.seed + i`` for every stream,
    so different systems at the same replication index share identical
    arrival/lifetime/source sequences (common random numbers — the
    same variance-reduction the paper gets by comparing systems inside
    one simulator).  Each replication is fully self-contained (its own
    network, system and streams), which is what lets the parallel
    runner execute them in worker processes with identical results.
    """
    simulation = AnycastSimulation(
        network_factory=config.network_factory(),
        system_spec=spec,
        workload=config.workload(arrival_rate),
        warmup_s=config.warmup_s,
        measure_s=config.measure_s,
        seed=config.seed + replication,
    )
    return simulation.run()


def aggregate_point(
    spec: SystemSpec,
    arrival_rate: float,
    config: ExperimentConfig,
    runs: Sequence[SimulationResult],
) -> PointResult:
    """Fold per-replication results into one :class:`PointResult`.

    ``runs`` must be in replication order; the arithmetic is shared by
    the serial and parallel runners so both produce bit-identical
    aggregates.
    """
    runs = list(runs)
    aps = [run.admission_probability for run in runs]
    retrials = [run.mean_retrials for run in runs]
    attempts = [run.mean_attempts for run in runs]
    mean_ap = sum(aps) / len(aps)
    if len(runs) > 1:
        ci_low, ci_high = confidence_interval(aps)
    else:
        ci_low, ci_high = runs[0].ap_ci_low, runs[0].ap_ci_high
    return PointResult(
        system_label=spec.label,
        arrival_rate=arrival_rate,
        replications=config.replications,
        admission_probability=mean_ap,
        ap_ci_low=ci_low,
        ap_ci_high=ci_high,
        mean_retrials=sum(retrials) / len(retrials),
        mean_attempts=sum(attempts) / len(attempts),
        requests=sum(run.requests for run in runs),
        runs=tuple(runs),
    )


def run_point(
    spec: SystemSpec,
    arrival_rate: float,
    config: ExperimentConfig,
    workers: Optional[int] = None,
) -> PointResult:
    """Run ``spec`` at ``arrival_rate`` with replications.

    Parameters
    ----------
    workers:
        Process count for fanning replications out; ``None`` defers to
        ``config.workers`` (default 1 = the serial in-process path).
        Results are bit-identical for any worker count — see
        :mod:`repro.experiments.parallel`.
    """
    effective_workers = config.workers if workers is None else workers
    if effective_workers > 1 and config.replications > 1:
        from repro.experiments.parallel import ParallelRunner

        return ParallelRunner(workers=effective_workers).run_point(
            spec, arrival_rate, config
        )
    runs = [
        run_replication(spec, arrival_rate, config, replication)
        for replication in range(config.replications)
    ]
    return aggregate_point(spec, arrival_rate, config, runs)


def sweep(
    specs: Sequence[SystemSpec],
    config: ExperimentConfig,
    arrival_rates: Optional[Sequence[float]] = None,
    workers: Optional[int] = None,
) -> list[SweepResult]:
    """Run every system over the lambda grid.

    Returns one :class:`SweepResult` per spec, in input order.  With
    ``workers > 1`` (or ``config.workers > 1``) every independent
    ``(system, rate, replication)`` simulation of the grid is executed
    on a process pool; the series are bit-identical to a serial sweep.
    """
    rates = tuple(arrival_rates) if arrival_rates is not None else config.arrival_rates
    effective_workers = config.workers if workers is None else workers
    if effective_workers > 1:
        from repro.experiments.parallel import ParallelRunner

        return ParallelRunner(workers=effective_workers).sweep(specs, config, rates)
    results = []
    for spec in specs:
        points = tuple(
            run_point(spec, rate, config, workers=1) for rate in rates
        )
        results.append(SweepResult(system_label=spec.label, points=points))
    return results
