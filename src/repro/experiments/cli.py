"""Command-line interface: ``repro-anycast``.

Regenerates any table or figure of the paper from the terminal::

    repro-anycast fig6 --quick
    repro-anycast tab1
    repro-anycast all --quick --seed 7
    repro-anycast run --algorithm "WD/D+H" --retrials 2 --rate 35

``--quick`` switches to the scaled-down configuration (seconds per
figure); the default is the paper-scale setup (minutes per figure).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.core.system import ALGORITHM_NAMES, SystemSpec
from repro.experiments import ablations
from repro.experiments.config import paper_config, quick_config
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import format_table
from repro.experiments.runner import run_point
from repro.experiments.tables import ALL_TABLES

#: Ablation targets: name -> (runner, short description).
ABLATION_TARGETS = {
    "ablation-alpha": (
        lambda config, rate: ablations.alpha_sweep(config, rate),
        "WD/D+H history-decay alpha sweep",
    ),
    "ablation-info": (
        lambda config, rate: ablations.information_decomposition(config, rate),
        "ED vs WD/D vs WD/D+H vs WD/D+B decomposition",
    ),
    "ablation-staleness": (
        lambda config, rate: ablations.staleness_sweep(config, rate),
        "WD/D+B link-state staleness sweep",
    ),
    "ablation-retrial": (
        lambda config, rate: ablations.retrial_discipline(config, rate),
        "retrial sampling discipline",
    ),
}


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
    return count


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-anycast",
        description=(
            "Reproduce the evaluation of 'Distributed Admission Control for "
            "Anycast Flows with QoS Requirements' (ICDCS 2001)."
        ),
    )
    parser.add_argument(
        "target",
        choices=(
            sorted(ALL_FIGURES)
            + sorted(ALL_TABLES)
            + sorted(ABLATION_TARGETS)
            + ["chaos", "all", "run"]
        ),
        help=(
            "which figure/table/ablation to regenerate, 'chaos' (the "
            "signalling-robustness sweep), 'all' (figures+tables), or "
            "a single 'run'"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down horizons (seconds instead of minutes per figure)",
    )
    parser.add_argument("--seed", type=int, default=2001, help="root random seed")
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help=(
            "process count for the experiment runner; replications and "
            "sweep points fan out over a pool with bit-identical "
            "results (1 = serial)"
        ),
    )
    parser.add_argument(
        "--algorithm",
        choices=ALGORITHM_NAMES,
        default="WD/D+H",
        help="system algorithm for 'run'",
    )
    parser.add_argument(
        "--retrials", type=int, default=2, help="retrial limit R for 'run'"
    )
    parser.add_argument(
        "--rate", type=float, default=20.0, help="arrival rate for 'run'"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each result as CSV into this directory",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        help="also write each result as JSON into this directory",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render figures additionally as ASCII line charts",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-anycast`` console script."""
    args = _build_parser().parse_args(argv)
    config = quick_config(args.seed) if args.quick else paper_config(args.seed)
    if args.workers != 1:
        config = config.scaled(workers=args.workers)

    targets: list[str]
    if args.target == "all":
        targets = sorted(ALL_FIGURES) + sorted(ALL_TABLES)
    else:
        targets = [args.target]

    for target in targets:
        started = time.perf_counter()
        if target == "run":
            spec = SystemSpec(args.algorithm, retrials=args.retrials)
            point = run_point(spec, args.rate, config)
            print(point)
        elif target in ABLATION_TARGETS:
            runner, description = ABLATION_TARGETS[target]
            points = runner(config, args.rate)
            rows = [
                [
                    str(condition),
                    f"{point.admission_probability:.4f}",
                    f"{point.mean_retrials:.4f}",
                ]
                for condition, point in points.items()
            ]
            print(
                format_table(
                    ["condition", "AP", "retrials"],
                    rows,
                    title=f"{description} @ lambda={args.rate:g}",
                )
            )
        elif target == "chaos":
            # Not part of the paper's figure set (so excluded from
            # 'all'): sweeps signalling loss rate with the unreliable
            # plane enabled.  Imported lazily to keep the default
            # targets free of the signalling stack.
            from repro.experiments.chaos import chaos_figure

            result = chaos_figure(config)
            print(result.render())
            if args.plot:
                from repro.experiments.report import ascii_plot

                print()
                print(ascii_plot(list(result.x_values), result.series))
            _export(result, target, args, kind="figure")
        elif target in ALL_FIGURES:
            result = ALL_FIGURES[target](config)
            print(result.render())
            if args.plot:
                from repro.experiments.report import ascii_plot

                print()
                print(ascii_plot(list(result.x_values), result.series))
            _export(result, target, args, kind="figure")
        else:
            result = ALL_TABLES[target](config)
            print(result.render())
            print(f"max |analysis - simulation| = {result.max_absolute_gap:.6f}")
            _export(result, target, args, kind="table")
        elapsed = time.perf_counter() - started
        print(f"[{target}: {elapsed:.1f}s]", file=sys.stderr)
        print()
    return 0


def _export(result, target: str, args, kind: str) -> None:
    """Write CSV/JSON copies of a result if the user asked for them."""
    import os

    from repro.experiments import export as export_module

    for directory, suffix, exporter in (
        (args.csv, "csv", getattr(export_module, f"{kind}_to_csv")),
        (args.json, "json", getattr(export_module, f"{kind}_to_json")),
    ):
        if directory is None:
            continue
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{target}.{suffix}")
        exporter(result, path)
        print(f"[wrote {path}]", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
