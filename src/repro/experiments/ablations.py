"""Ablation studies as reusable library functions.

The benchmarks under ``benchmarks/test_ablation_*.py`` assert the
qualitative outcome of each study; these functions are the underlying
implementations, exposed so users can run the same studies with their
own configurations (different topologies, loads, seeds) and get
structured results back.

Every function takes an :class:`repro.experiments.config.
ExperimentConfig` plus study-specific knobs and returns a mapping of
condition label to :class:`repro.experiments.runner.PointResult`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.system import SystemSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_point

#: Default alpha grid of the WD/D+H decay study.
DEFAULT_ALPHAS: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)
#: Default snapshot refresh periods of the staleness study (seconds).
DEFAULT_REFRESH_PERIODS: tuple[float, ...] = (0.0, 1.0, 10.0, 60.0)


def alpha_sweep(
    config: ExperimentConfig,
    arrival_rate: float,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    retrials: int = 2,
) -> dict:
    """WD/D+H with varying history-decay alpha, plus the WD/D anchor.

    ``alpha = 1`` disables the history term entirely, so its result
    should match the ``"WD/D"`` entry up to simulation noise.
    """
    results: dict = {}
    for alpha in alphas:
        spec = SystemSpec("WD/D+H", retrials=retrials, alpha=alpha)
        results[alpha] = run_point(spec, arrival_rate, config)
    results["WD/D"] = run_point(
        SystemSpec("WD/D", retrials=retrials), arrival_rate, config
    )
    return results


def information_decomposition(
    config: ExperimentConfig, arrival_rate: float, retrials: int = 2
) -> dict:
    """ED vs WD/D vs WD/D+H vs WD/D+B: what each information source buys."""
    return {
        algorithm: run_point(
            SystemSpec(algorithm, retrials=retrials), arrival_rate, config
        )
        for algorithm in ("ED", "WD/D", "WD/D+H", "WD/D+B")
    }


def staleness_sweep(
    config: ExperimentConfig,
    arrival_rate: float,
    refresh_periods: Sequence[float] = DEFAULT_REFRESH_PERIODS,
    retrials: int = 2,
) -> dict:
    """WD/D+B with aging link-state snapshots, plus the WD/D anchor."""
    results: dict = {}
    for period in refresh_periods:
        spec = SystemSpec(
            "WD/D+B", retrials=retrials, bandwidth_refresh_s=period
        )
        results[period] = run_point(spec, arrival_rate, config)
    results["WD/D"] = run_point(
        SystemSpec("WD/D", retrials=retrials), arrival_rate, config
    )
    return results


def retrial_discipline(
    config: ExperimentConfig,
    arrival_rate: float,
    algorithm: str = "ED",
    retrials: int = 3,
) -> dict:
    """Without-replacement (paper reading) vs resampling failed members."""
    return {
        "exclude": run_point(
            SystemSpec(algorithm, retrials=retrials, resample_failed=False),
            arrival_rate,
            config,
        ),
        "resample": run_point(
            SystemSpec(algorithm, retrials=retrials, resample_failed=True),
            arrival_rate,
            config,
        ),
    }


def group_size_sweep(
    config: ExperimentConfig,
    arrival_rate: float,
    member_sets: dict,
    algorithm: str = "ED",
    retrials: int = 2,
) -> dict:
    """AP as the anycast group grows.

    Parameters
    ----------
    member_sets:
        ``{K: members_tuple}``; ideally nested prefixes so the only
        varying factor is group size.
    """
    results = {}
    for size, members in member_sets.items():
        sized = config.scaled(group_members=tuple(members))
        results[size] = run_point(
            SystemSpec(algorithm, retrials=retrials), arrival_rate, sized
        )
    return results


def retrial_limit_sweep(
    config: ExperimentConfig,
    arrival_rate: float,
    algorithm: str = "ED",
    limits: Optional[Sequence[int]] = None,
) -> dict:
    """AP and overhead as the retrial limit R grows (Figures 3-5 slice)."""
    limits = tuple(limits) if limits is not None else config.retrial_limits
    return {
        r: run_point(SystemSpec(algorithm, retrials=r), arrival_rate, config)
        for r in limits
    }
