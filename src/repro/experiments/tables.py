"""Regeneration of Tables 1 and 2 (Appendix A.3).

Both tables validate the mathematical analysis against simulation:
admission probabilities of ``<ED,1>`` (Table 1) and ``SP`` (Table 2)
at arrival rates 5, 20, 35 and 50 requests/second.  The paper's
observation — analysis and simulation "almost identical" — is what
the accompanying benchmarks assert (within the tolerance appropriate
to finite runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.admission import analyze_system
from repro.analysis.erlang import erlang_b
from repro.analysis.fixedpoint import BlockingFunction
from repro.core.system import SystemSpec
from repro.experiments.config import (
    TABLE_ARRIVAL_RATES,
    ExperimentConfig,
    paper_config,
)
from repro.experiments.report import format_table
from repro.experiments.runner import run_point


@dataclass(frozen=True)
class TableResult:
    """Analysis-vs-simulation comparison for one system.

    Attributes
    ----------
    table_id:
        ``"tab1"`` or ``"tab2"``.
    system_label:
        Which system the rows describe.
    arrival_rates:
        Column grid.
    analysis:
        Analytical AP per rate.
    simulation:
        Simulated AP per rate.
    """

    table_id: str
    system_label: str
    arrival_rates: tuple
    analysis: tuple
    simulation: tuple

    @property
    def max_absolute_gap(self) -> float:
        """Largest |analysis - simulation| across the grid."""
        return max(
            abs(a - s) for a, s in zip(self.analysis, self.simulation)
        )

    def render(self) -> str:
        """The table as aligned text, mirroring the paper's layout."""
        headers = ["Method"] + [f"lambda={rate:g}" for rate in self.arrival_rates]
        rows = [
            ["Mathematical Analysis"] + [f"{value:.6f}" for value in self.analysis],
            ["Computer Simulation"] + [f"{value:.6f}" for value in self.simulation],
        ]
        return format_table(
            headers,
            rows,
            title=(
                f"{self.table_id.upper()}: analysis vs simulation, "
                f"system {self.system_label}"
            ),
        )


def _analysis_vs_simulation(
    table_id: str,
    spec: SystemSpec,
    config: ExperimentConfig,
    arrival_rates: Sequence[float],
    blocking_function: BlockingFunction,
) -> TableResult:
    network = config.network_factory()()
    analysis_values = []
    simulation_values = []
    for rate in arrival_rates:
        workload = config.workload(rate)
        analysis = analyze_system(
            network, workload, spec, blocking_function=blocking_function
        )
        analysis_values.append(analysis.admission_probability)
        simulation_values.append(
            run_point(spec, rate, config).admission_probability
        )
    return TableResult(
        table_id=table_id,
        system_label=spec.label,
        arrival_rates=tuple(arrival_rates),
        analysis=tuple(analysis_values),
        simulation=tuple(simulation_values),
    )


def table1(
    config: Optional[ExperimentConfig] = None,
    blocking_function: BlockingFunction = erlang_b,
    arrival_rates: Optional[Sequence[float]] = None,
) -> TableResult:
    """Table 1: analysis vs simulation for ``<ED, 1>``.

    Parameters
    ----------
    config:
        Experiment setup; paper defaults when omitted.
    blocking_function:
        Link blocking model for the analysis — exact Erlang-B
        (default) or :func:`repro.analysis.erlang.uaa_blocking` for
        the paper's UAA pathway.
    arrival_rates:
        Overrides the paper's lambda grid; useful with rescaled
        lifetimes (AP depends only on the offered load lambda/mu).
    """
    config = config or paper_config()
    return _analysis_vs_simulation(
        "tab1",
        SystemSpec("ED", retrials=1),
        config,
        arrival_rates or TABLE_ARRIVAL_RATES,
        blocking_function,
    )


def table2(
    config: Optional[ExperimentConfig] = None,
    blocking_function: BlockingFunction = erlang_b,
    arrival_rates: Optional[Sequence[float]] = None,
) -> TableResult:
    """Table 2: analysis vs simulation for the SP baseline."""
    config = config or paper_config()
    return _analysis_vs_simulation(
        "tab2",
        SystemSpec("SP"),
        config,
        arrival_rates or TABLE_ARRIVAL_RATES,
        blocking_function,
    )


ALL_TABLES = {"tab1": table1, "tab2": table2}
