"""Plain-text rendering of experiment results.

The paper reports its evaluation as figures and tables; in a terminal
library the equivalent deliverable is aligned text: one column per
arrival rate, one row per system/series.  These helpers render the
structured results of :mod:`repro.experiments.runner`,
:mod:`repro.experiments.figures` and :mod:`repro.experiments.tables`.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row cells, already stringified; every row must have
        ``len(headers)`` cells.
    title:
        Optional title line printed above the table.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(header) for header in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render "one row per series, one column per x" (figure style).

    Parameters
    ----------
    x_label:
        Header of the leading column (e.g. ``"system"``).
    x_values:
        The x grid (e.g. arrival rates).
    series:
        Mapping of series label to y values aligned with ``x_values``.
    """
    headers = [x_label] + [f"{x:g}" for x in x_values]
    rows = []
    for label, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} values for "
                f"{len(x_values)} x points"
            )
        rows.append([label] + [f"{value:.{precision}f}" for value in values])
    return format_table(headers, rows, title=title)


def ascii_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """A rough terminal line chart for eyeballing trends.

    Each series is drawn with its own marker character; values are
    linearly mapped onto a ``width`` x ``height`` character grid.
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*o+x#@%&"
    all_values = [v for values in series.values() for v in values]
    y_min, y_max = min(all_values), max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(x_values, values):
            column = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.4f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.4f} +" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<10g}{'':^{max(0, width - 20)}}{x_max:>10g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {label}" for i, label in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
