"""Chaos scenario: admission control over an unreliable signalling plane.

The paper's DAC protocol negotiates admission hop-by-hop over
PATH/RESV signalling but is evaluated under perfectly reliable
delivery.  This scenario measures what a deployed controller would
face: control messages are dropped, delayed and duplicated by a
:class:`repro.signaling.channel.SignalingChannel`, senders recover
with per-hop timeouts, exponential backoff and a retransmission cap,
and reservations are soft state — leases refreshed by their owners,
with a garbage collector reclaiming the orphans left by lost
``Resv``/``Tear`` messages.

:func:`chaos_sweep` runs one system across a grid of loss rates;
:func:`chaos_figure` produces the paper-style summary (blocking
probability and mean signalled admission latency versus loss rate for
``<ED,2>`` against ``<WD/D+B,2>``).  Every run drains its event
calendar to completion and reports the bandwidth still reserved
afterwards — the headline robustness invariant is that this is zero:
whatever the loss rate, leases guarantee no reservation outlives its
flow by more than a TTL.

Determinism: each impairment and the backoff jitter draw from
dedicated named streams, so two runs with the same seed are
bit-identical, and disabling the impairments restores the exact event
sequence of a perfectly reliable plane.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Hashable, Optional

from repro import invariants as _invariants
from repro.core.retrial import CounterRetrialPolicy, ExponentialBackoff
from repro.core.selection import SelectionContext
from repro.core.system import SystemSpec, build_selector
from repro.experiments.config import ExperimentConfig, quick_config
from repro.experiments.figures import FigureResult
from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.traffic import TrafficModel, WorkloadSpec
from repro.network.routing import RouteTable
from repro.network.topology import Network
from repro.signaling.admission import SignalledACRouter, SignalledAdmissionResult
from repro.signaling.channel import RetransmitPolicy, SignalingChannel
from repro.signaling.rsvp import (
    DEFAULT_PROCESSING_DELAY_S,
    SignalledReservationEngine,
)
from repro.signaling.softstate import LeaseTable
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.random_streams import StreamFactory

NodeId = Hashable

#: Loss rates swept by the default chaos figure.
DEFAULT_LOSS_RATES: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2)

#: Systems contrasted by the chaos figure: the blind baseline vs the
#: bandwidth-informed selector, both with one retrial.
CHAOS_SPECS: tuple[SystemSpec, ...] = (
    SystemSpec("ED", retrials=2),
    SystemSpec("WD/D+B", retrials=2),
)


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of the unreliable signalling plane.

    Attributes
    ----------
    loss_rate, extra_delay_s, duplicate_rate:
        Channel impairments (see :class:`SignalingChannel`).
    initial_timeout_s, backoff_factor, max_timeout_s, timeout_jitter:
        The per-hop retransmission timeout schedule (see
        :class:`repro.core.retrial.ExponentialBackoff`).
    max_retransmits:
        Retransmissions per hop transfer before the sender gives up.
    lease_ttl_s:
        Soft-state lease lifetime; an unrefreshed reservation is
        collectable this long after its last refresh.
    refresh_interval_s:
        How often an admitted flow's source refreshes its lease.
    gc_interval_s:
        Period of the orphan-collection sweep.
    processing_delay_s:
        Per-hop message processing time.
    """

    loss_rate: float = 0.0
    extra_delay_s: float = 0.0
    duplicate_rate: float = 0.0
    initial_timeout_s: float = 0.05
    backoff_factor: float = 2.0
    max_timeout_s: float = 1.0
    timeout_jitter: float = 0.1
    max_retransmits: int = 4
    lease_ttl_s: float = 60.0
    refresh_interval_s: float = 20.0
    gc_interval_s: float = 10.0
    processing_delay_s: float = DEFAULT_PROCESSING_DELAY_S

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {self.loss_rate}")
        if self.refresh_interval_s <= 0 or self.refresh_interval_s >= self.lease_ttl_s:
            raise ValueError(
                "refresh interval must be positive and below the lease TTL "
                f"(got {self.refresh_interval_s} vs TTL {self.lease_ttl_s})"
            )


@dataclass(frozen=True)
class ChaosResult:
    """Summary of one chaos run.

    ``leaked_bps`` is the bandwidth still reserved after the run
    drained its calendar — the soft-state contract makes this zero,
    and the integration tests assert it at every loss rate.
    """

    system_label: str
    loss_rate: float
    arrival_rate: float
    requests: int
    admitted: int
    admission_probability: float
    mean_attempts: float
    mean_admission_latency_s: float
    signaling_messages: int
    retransmissions: int
    tear_messages: int
    refresh_messages: int
    timeouts: int
    channel_sent: int
    channel_dropped: int
    channel_duplicated: int
    orphans_collected: int
    reclaimed_bps: float
    leaked_bps: float

    @property
    def blocking_probability(self) -> float:
        """1 - AP, the paper-style degradation metric."""
        return 1.0 - self.admission_probability

    @property
    def messages_per_admitted(self) -> float:
        """Control-plane messages (incl. refreshes) per admitted flow."""
        if self.admitted == 0:
            return 0.0
        return (self.signaling_messages + self.refresh_messages) / self.admitted


class ChaosSimulation:
    """One run of the admission model over an unreliable plane.

    The signalled twin of
    :class:`repro.sim.simulation.AnycastSimulation`: the same Poisson
    arrival / exponential lifetime dynamics, but every admission runs
    the full PATH/RESV exchange through the impaired channel, admitted
    flows refresh their leases, and departures tear down through the
    same lossy channel.  Only distributed systems are supported (GDI
    has no signalling plane to impair).
    """

    def __init__(
        self,
        network_factory: Callable[[], Network],
        system_spec: SystemSpec,
        workload: WorkloadSpec,
        chaos: ChaosConfig,
        warmup_s: float = 200.0,
        measure_s: float = 800.0,
        seed: int = 0,
        batch_size: int = 200,
        queue: str = "heap",
    ) -> None:
        if warmup_s < 0 or measure_s <= 0:
            raise ValueError(
                f"need warmup >= 0 and measure > 0, got {warmup_s}, {measure_s}"
            )
        if not system_spec.is_distributed:
            raise ValueError("chaos scenario needs a distributed system (not GDI)")
        self.network = network_factory()
        self.system_spec = system_spec
        self.workload = workload
        self.chaos = chaos
        self.warmup_s = warmup_s
        self.measure_s = measure_s
        self.horizon_s = warmup_s + measure_s
        self.seed = seed
        self.streams = StreamFactory(seed)
        self.simulator = Simulator(queue=queue)
        self.channel = SignalingChannel(
            self.simulator,
            loss_rate=chaos.loss_rate,
            extra_delay_s=chaos.extra_delay_s,
            duplicate_rate=chaos.duplicate_rate,
            loss_rng=self.streams.stream("signaling.loss"),
            delay_rng=self.streams.stream("signaling.delay"),
            duplicate_rng=self.streams.stream("signaling.duplicate"),
        )
        backoff = ExponentialBackoff(
            chaos.initial_timeout_s,
            factor=chaos.backoff_factor,
            max_timeout_s=chaos.max_timeout_s,
            jitter=chaos.timeout_jitter,
            rng=(
                self.streams.stream("signaling.backoff")
                if chaos.timeout_jitter > 0
                else None
            ),
        )
        self.leases = LeaseTable(
            self.simulator,
            self.network,
            ttl_s=chaos.lease_ttl_s,
            sweep_interval_s=chaos.gc_interval_s,
        )
        self.engine = SignalledReservationEngine(
            self.simulator,
            self.network,
            processing_delay_s=chaos.processing_delay_s,
            channel=self.channel,
            retransmit=RetransmitPolicy(backoff, chaos.max_retransmits),
            leases=self.leases,
        )
        retrials = 1 if system_spec.algorithm == "SP" else system_spec.retrials
        self.routers: dict[NodeId, SignalledACRouter] = {}
        for source in workload.sources:
            routes = RouteTable(self.network, source, workload.group.members)
            context = SelectionContext(
                network=self.network, routes=routes, group=workload.group
            )
            self.routers[source] = SignalledACRouter(
                self.simulator,
                self.network,
                source,
                workload.group,
                build_selector(system_spec, context),
                CounterRetrialPolicy(retrials),
                rng=self.streams.stream(f"select.{source}"),
                engine=self.engine,
            )
        self.traffic = TrafficModel(workload, self.streams)
        self.metrics = MetricsCollector(
            clock=lambda: self.simulator.now, batch_size=batch_size
        )
        self._active: dict[int, AdmittedFlow] = {}
        self._decision_latency_total = 0.0
        self._decisions_in_window = 0
        self.refresh_messages = 0
        self._ran = False

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        request = self.traffic.next_request()
        if request.arrival_time > self.horizon_s:
            return
        self.simulator.schedule_at(
            request.arrival_time, lambda: self._handle_arrival(request)
        )

    def _handle_arrival(self, request: FlowRequest) -> None:
        self._schedule_next_arrival()
        router = self.routers[request.source]
        router.admit(
            request, lambda decision: self._handle_decision(request, decision)
        )

    def _handle_decision(
        self, request: FlowRequest, decision: SignalledAdmissionResult
    ) -> None:
        if request.arrival_time >= self.warmup_s:
            self.metrics.record_decision(decision.result)
            self._decision_latency_total += decision.latency_s
            self._decisions_in_window += 1
        if decision.admitted:
            flow = decision.result.flow
            assert flow is not None  # admitted implies a granted flow
            self.metrics.record_flow_start()
            self._active[flow.flow_id] = flow
            self.simulator.schedule(
                request.lifetime_s, lambda: self._handle_departure(flow)
            )
            key = decision.reservation_key
            self.simulator.schedule(
                self.chaos.refresh_interval_s, lambda: self._refresh(flow, key)
            )

    def _refresh(self, flow: AdmittedFlow, key: Hashable) -> None:
        """Periodic lease refresh by the flow's source.

        Refreshes are modelled as reliable (their Path/Resv pair is
        charged to the message totals but not dropped): a flow stays
        admitted while its owner lives, and only lost teardowns/
        reservations create orphans.  The loop ends with the flow.
        """
        if flow.released:
            return
        if not self.leases.refresh(key):
            return
        self.refresh_messages += 2 * max(0, len(flow.path) - 1)
        self.simulator.schedule(
            self.chaos.refresh_interval_s, lambda: self._refresh(flow, key)
        )

    def _handle_departure(self, flow: AdmittedFlow) -> None:
        self._active.pop(flow.flow_id, None)
        router = self.routers[flow.request.source]
        router.release(flow)
        self.metrics.record_flow_end()

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self) -> ChaosResult:
        """Execute the run, drain the calendar, and summarize.

        A simulation object is single-use; build a new one per run.
        """
        if self._ran:
            raise RuntimeError("ChaosSimulation objects are single-use")
        self._ran = True
        self.simulator.schedule_at(self.warmup_s, self.metrics.active_flows.reset)
        self._schedule_next_arrival()
        self.simulator.run(until=self.horizon_s)
        # Drain: arrivals have stopped; in-flight admissions decide,
        # departures tear down (lost TEARs strand orphans), leases
        # expire and the collector self-quiesces, so the unbounded run
        # terminates with an empty calendar.
        self.simulator.run()
        leaked = self.network.total_reserved_bps()
        if _invariants.enabled:
            _invariants.check_network(self.network)
            _invariants.check_soft_state(self.network, self.leases)
            _invariants.check_drained(self.network)
        mean_latency = (
            self._decision_latency_total / self._decisions_in_window
            if self._decisions_in_window
            else 0.0
        )
        return ChaosResult(
            system_label=self.system_spec.label,
            loss_rate=self.chaos.loss_rate,
            arrival_rate=self.workload.arrival_rate,
            requests=self.metrics.requests,
            admitted=self.metrics.admitted,
            admission_probability=self.metrics.admission_probability,
            mean_attempts=self.metrics.mean_attempts,
            mean_admission_latency_s=mean_latency,
            signaling_messages=self.engine.total_messages,
            retransmissions=self.engine.total_retransmissions,
            tear_messages=self.engine.tear_messages,
            refresh_messages=self.refresh_messages,
            timeouts=self.engine.timeouts,
            channel_sent=self.channel.sent,
            channel_dropped=self.channel.dropped,
            channel_duplicated=self.channel.duplicated,
            orphans_collected=self.leases.orphans_collected,
            reclaimed_bps=self.leases.reclaimed_bps,
            leaked_bps=leaked,
        )


def run_chaos_point(
    spec: SystemSpec,
    arrival_rate: float,
    config: ExperimentConfig,
    chaos: ChaosConfig,
    queue: str = "heap",
) -> ChaosResult:
    """One system at one arrival rate under one impairment setting."""
    simulation = ChaosSimulation(
        network_factory=config.network_factory(),
        system_spec=spec,
        workload=config.workload(arrival_rate),
        chaos=chaos,
        warmup_s=config.warmup_s,
        measure_s=config.measure_s,
        seed=config.seed,
        queue=queue,
    )
    return simulation.run()


def chaos_sweep(
    spec: SystemSpec,
    loss_rates: tuple[float, ...],
    config: ExperimentConfig,
    chaos: ChaosConfig,
    arrival_rate: float,
) -> tuple[ChaosResult, ...]:
    """Sweep ``spec`` over the loss-rate grid (single replication).

    Every point reuses the same seed, so the arrival process and
    selection dice are common random numbers across loss rates — the
    degradation curve measures the impairments, not sampling noise.
    """
    return tuple(
        run_chaos_point(spec, arrival_rate, config, replace(chaos, loss_rate=loss))
        for loss in loss_rates
    )


def chaos_figure(
    config: Optional[ExperimentConfig] = None,
    loss_rates: tuple[float, ...] = DEFAULT_LOSS_RATES,
    chaos: Optional[ChaosConfig] = None,
    arrival_rate: Optional[float] = None,
) -> FigureResult:
    """Blocking probability and admission latency vs loss rate.

    Contrasts ``<ED,2>`` with ``<WD/D+B,2>`` (the paper's blind vs
    bandwidth-informed endpoints) at one arrival rate — the middle of
    ``config.arrival_rates`` unless given — under increasing Bernoulli
    loss.  Two series per system: ``"<label> blocking"`` and
    ``"<label> latency_ms"``.
    """
    config = config if config is not None else quick_config()
    chaos = chaos if chaos is not None else ChaosConfig()
    if arrival_rate is None:
        rates = config.arrival_rates
        arrival_rate = float(rates[len(rates) // 2])
    series: dict[str, list[float]] = {}
    sweeps: list[tuple[ChaosResult, ...]] = []
    for spec in CHAOS_SPECS:
        results = chaos_sweep(spec, loss_rates, config, chaos, arrival_rate)
        sweeps.append(results)
        series[f"{spec.label} blocking"] = [
            round(r.blocking_probability, 6) for r in results
        ]
        series[f"{spec.label} latency_ms"] = [
            round(r.mean_admission_latency_s * 1e3, 4) for r in results
        ]
    return FigureResult(
        figure_id="figchaos",
        title=(
            "Blocking probability and signalled admission latency vs "
            f"signalling loss rate @ lambda={arrival_rate:g}/s"
        ),
        x_values=tuple(loss_rates),
        series=series,
        sweeps=tuple(sweeps),
    )
