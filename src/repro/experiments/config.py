"""Experiment configuration (the knobs of paper Section 5.1).

:class:`ExperimentConfig` bundles the topology, traffic model and
run-length parameters shared by every figure/table regeneration.  Two
presets are provided:

* :func:`paper_config` -- the paper's setup: MCI backbone, group at
  routers {0,4,8,12,16}, sources at odd routers, long runs with
  multiple replications.  Minutes of wall-clock per figure.
* :func:`quick_config` -- the same model with shorter horizons and a
  single replication; preserves every qualitative conclusion and runs
  each figure in seconds.  Used by the pytest benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.flows.group import AnycastGroup
from repro.flows.traffic import (
    DEFAULT_FLOW_BANDWIDTH_BPS,
    DEFAULT_MEAN_LIFETIME_S,
    WorkloadSpec,
)
from repro.network.topologies import (
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    mci_backbone,
    nsfnet,
    waxman_random,
)
from repro.network.topology import Network

#: Arrival-rate grid of the paper's x-axes (requests/second).
PAPER_ARRIVAL_RATES: tuple[float, ...] = (5.0, 12.5, 20.0, 27.5, 35.0, 42.5, 50.0)
#: Arrival rates of Tables 1 and 2.
TABLE_ARRIVAL_RATES: tuple[float, ...] = (5.0, 20.0, 35.0, 50.0)
#: Retrial limits swept in Figures 3-5 (the upper limit is the group size).
PAPER_RETRIAL_LIMITS: tuple[int, ...] = (1, 2, 3, 4, 5)

#: Named topology factories usable from configs and the CLI.
TOPOLOGY_FACTORIES: dict[str, Callable[[], Network]] = {
    "mci": mci_backbone,
    "nsfnet": nsfnet,
    "waxman20": lambda: waxman_random(20, seed=42),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything an experiment run needs besides the system spec.

    Attributes
    ----------
    topology:
        Key into :data:`TOPOLOGY_FACTORIES`.
    sources:
        Request-originating nodes.
    group_members:
        The anycast group, in weight-vector order.
    mean_lifetime_s, bandwidth_bps:
        Flow parameters (paper: 180 s, 64 kbit/s).
    warmup_s, measure_s:
        Per-run simulated warm-up and measurement horizons.
    replications:
        Independent replications per point (seeds derive from ``seed``).
    seed:
        Root seed for the whole experiment.
    arrival_rates:
        The lambda grid for sweeps.
    retrial_limits:
        The R grid for the sensitivity figures.
    source_weights:
        Optional relative request rates per source (hot-spot
        workloads); ``None`` is the paper's uniform choice.
    bandwidth_classes:
        Optional ``(bandwidth_bps, probability)`` mix; ``None`` is the
        paper's single 64 kbit/s class.
    workers:
        Process count for the experiment runner.  1 (default) runs
        serially in-process; > 1 fans independent replications and
        sweep points out over a :mod:`multiprocessing` pool with
        bit-identical results (see :mod:`repro.experiments.parallel`).
    """

    topology: str = "mci"
    sources: tuple = MCI_SOURCES
    group_members: tuple = MCI_GROUP_MEMBERS
    mean_lifetime_s: float = DEFAULT_MEAN_LIFETIME_S
    bandwidth_bps: float = DEFAULT_FLOW_BANDWIDTH_BPS
    warmup_s: float = 1000.0
    measure_s: float = 4000.0
    replications: int = 3
    seed: int = 2001
    arrival_rates: tuple = PAPER_ARRIVAL_RATES
    retrial_limits: tuple = PAPER_RETRIAL_LIMITS
    source_weights: tuple = None
    bandwidth_classes: tuple = None
    workers: int = 1

    def __post_init__(self):
        if self.topology not in TOPOLOGY_FACTORIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"known: {sorted(TOPOLOGY_FACTORIES)}"
            )
        if self.replications < 1:
            raise ValueError(f"replications must be >= 1, got {self.replications}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        object.__setattr__(self, "sources", tuple(self.sources))
        object.__setattr__(self, "group_members", tuple(self.group_members))
        object.__setattr__(self, "arrival_rates", tuple(self.arrival_rates))
        object.__setattr__(self, "retrial_limits", tuple(self.retrial_limits))

    def network_factory(self) -> Callable[[], Network]:
        """Factory building a fresh instance of the configured topology."""
        return TOPOLOGY_FACTORIES[self.topology]

    def group(self) -> AnycastGroup:
        """The anycast group object."""
        return AnycastGroup("A", self.group_members)

    def workload(self, arrival_rate: float) -> WorkloadSpec:
        """The workload at one arrival rate."""
        return WorkloadSpec(
            arrival_rate=arrival_rate,
            sources=self.sources,
            group=self.group(),
            mean_lifetime_s=self.mean_lifetime_s,
            bandwidth_bps=self.bandwidth_bps,
            source_weights=self.source_weights,
            bandwidth_classes=self.bandwidth_classes,
        )

    def scaled(self, **overrides) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


def paper_config(seed: int = 2001) -> ExperimentConfig:
    """The paper's full experimental setup."""
    return ExperimentConfig(seed=seed)


def quick_config(seed: int = 2001) -> ExperimentConfig:
    """Scaled-down setup for benchmarks and CI.

    One replication of a 200 s warm-up + 800 s measurement window and a
    four-point lambda grid: every ordering and trend of the paper
    survives (benchmarks assert them), at interactive wall-clock cost.
    """
    return ExperimentConfig(
        warmup_s=200.0,
        measure_s=800.0,
        replications=1,
        seed=seed,
        arrival_rates=TABLE_ARRIVAL_RATES,
    )
