"""Regeneration of the paper's evaluation (Section 5 + Appendix A.3).

Every table and figure in the paper maps to a function here:

==========  ====================================================
Paper item  Function
==========  ====================================================
Figure 3    :func:`repro.experiments.figures.figure3`
Figure 4    :func:`repro.experiments.figures.figure4`
Figure 5    :func:`repro.experiments.figures.figure5`
Figure 6    :func:`repro.experiments.figures.figure6`
Figure 7    :func:`repro.experiments.figures.figure7`
Table 1     :func:`repro.experiments.tables.table1`
Table 2     :func:`repro.experiments.tables.table2`
==========  ====================================================

All of them accept an :class:`repro.experiments.config.ExperimentConfig`
(or use paper defaults) and return structured results that
:mod:`repro.experiments.report` renders as aligned text tables.  The
``repro-anycast`` console script (:mod:`repro.experiments.cli`) exposes
everything from the command line.
"""

from repro.experiments.ablations import (
    alpha_sweep,
    group_size_sweep,
    information_decomposition,
    retrial_discipline,
    retrial_limit_sweep,
    staleness_sweep,
)
from repro.experiments.chaos import (
    ChaosConfig,
    ChaosResult,
    ChaosSimulation,
    chaos_figure,
    chaos_sweep,
    run_chaos_point,
)
from repro.experiments.config import ExperimentConfig, paper_config, quick_config
from repro.experiments.diagnostics import (
    CongestionReport,
    compare_congestion,
    congestion_report,
)
from repro.experiments.figures import (
    FigureResult,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.runner import PointResult, SweepResult, run_point, sweep
from repro.experiments.tables import TableResult, table1, table2

__all__ = [
    "ChaosConfig",
    "ChaosResult",
    "ChaosSimulation",
    "ExperimentConfig",
    "FigureResult",
    "PointResult",
    "SweepResult",
    "CongestionReport",
    "TableResult",
    "alpha_sweep",
    "chaos_figure",
    "chaos_sweep",
    "compare_congestion",
    "congestion_report",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "group_size_sweep",
    "information_decomposition",
    "paper_config",
    "quick_config",
    "retrial_discipline",
    "retrial_limit_sweep",
    "run_chaos_point",
    "run_point",
    "staleness_sweep",
    "sweep",
    "table1",
    "table2",
]
