"""Regeneration of Figures 3-7 of the paper.

Figures 3-5 are the retrial-sensitivity studies: admission probability
of ``<A, R>`` versus arrival rate, one curve per ``R`` in 1..5, for
``A`` = ED, WD/D+H and WD/D+B respectively.  Figure 6 compares
``<ED,2>``, ``<WD/D+H,2>`` and ``<WD/D+B,2>`` against the SP and GDI
baselines.  Figure 7 reports the average number of retrials of the
three DAC systems.

Each function returns a :class:`FigureResult` carrying the series and
a text rendering; absolute values depend on the exact MCI wiring (see
DESIGN.md) but the paper's qualitative observations are asserted by
the accompanying benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.system import SystemSpec
from repro.experiments.config import ExperimentConfig, paper_config
from repro.experiments.report import format_series_table
from repro.experiments.runner import sweep


@dataclass(frozen=True)
class FigureResult:
    """Series data for one figure.

    Attributes
    ----------
    figure_id:
        e.g. ``"fig3"``.
    title:
        Human-readable description.
    x_values:
        The arrival-rate grid.
    series:
        Mapping of curve label to y values (AP, or retrials for fig 7).
    sweeps:
        The underlying full sweep results, for drill-down.
    """

    figure_id: str
    title: str
    x_values: tuple
    series: dict
    sweeps: tuple

    def render(self) -> str:
        """The figure as an aligned text table."""
        return format_series_table(
            "series",
            self.x_values,
            self.series,
            title=f"{self.figure_id.upper()}: {self.title}",
        )

    def series_for(self, label: str) -> list[float]:
        """One curve's y values."""
        return list(self.series[label])


def _sensitivity_figure(
    figure_id: str,
    algorithm: str,
    config: ExperimentConfig,
) -> FigureResult:
    """Shared machinery of Figures 3-5."""
    specs = [
        SystemSpec(algorithm, retrials=r) for r in config.retrial_limits
    ]
    sweeps = sweep(specs, config)
    series = {
        result.system_label: result.admission_probabilities() for result in sweeps
    }
    return FigureResult(
        figure_id=figure_id,
        title=f"Admission probability of <{algorithm},R> vs arrival rate",
        x_values=tuple(config.arrival_rates),
        series=series,
        sweeps=tuple(sweeps),
    )


def figure3(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Figure 3: AP sensitivity of ``<ED, R>`` to lambda and R."""
    return _sensitivity_figure("fig3", "ED", config or paper_config())


def figure4(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Figure 4: AP sensitivity of ``<WD/D+H, R>`` to lambda and R."""
    return _sensitivity_figure("fig4", "WD/D+H", config or paper_config())


def figure5(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Figure 5: AP sensitivity of ``<WD/D+B, R>`` to lambda and R."""
    return _sensitivity_figure("fig5", "WD/D+B", config or paper_config())


#: The systems compared in Figures 6 and 7 (paper Section 5.2.2).
COMPARISON_SPECS: tuple[SystemSpec, ...] = (
    SystemSpec("SP"),
    SystemSpec("ED", retrials=2),
    SystemSpec("WD/D+H", retrials=2),
    SystemSpec("WD/D+B", retrials=2),
    SystemSpec("GDI"),
)


def figure6(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Figure 6: AP of the three DAC systems vs the SP/GDI baselines."""
    config = config or paper_config()
    sweeps = sweep(COMPARISON_SPECS, config)
    series = {
        result.system_label: result.admission_probabilities() for result in sweeps
    }
    return FigureResult(
        figure_id="fig6",
        title="Admission probability comparison with baseline systems",
        x_values=tuple(config.arrival_rates),
        series=series,
        sweeps=tuple(sweeps),
    )


def figure7(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Figure 7: average retrials of ``<ED,2>``, ``<WD/D+H,2>``, ``<WD/D+B,2>``.

    The overhead metric: each retrial costs one extra reservation
    round trip.
    """
    config = config or paper_config()
    specs = [
        SystemSpec("ED", retrials=2),
        SystemSpec("WD/D+H", retrials=2),
        SystemSpec("WD/D+B", retrials=2),
    ]
    sweeps = sweep(specs, config)
    series = {result.system_label: result.mean_retrials() for result in sweeps}
    return FigureResult(
        figure_id="fig7",
        title="Average number of retrials vs arrival rate",
        x_values=tuple(config.arrival_rates),
        series=series,
        sweeps=tuple(sweeps),
    )


ALL_FIGURES = {
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
}
