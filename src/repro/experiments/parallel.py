"""Parallel experiment execution over a process pool.

Replications are embarrassingly parallel: replication ``i`` derives
every random stream from ``config.seed + i`` and runs against its own
fresh network, so nothing is shared between replications but the
(immutable) configuration.  :class:`ParallelRunner` fans the
``(system, arrival rate, replication)`` simulations of a point or a
whole sweep out over a :mod:`multiprocessing` pool and aggregates the
results in replication order — the exact order the serial runner uses
— so a parallel run reproduces the serial run **bit for bit**:

* seeds are derived per task from the root seed, never from worker
  identity or scheduling order;
* workers return complete :class:`~repro.sim.metrics.SimulationResult`
  objects; all aggregation arithmetic happens in the parent, over the
  same sequence the serial loop would produce.

The serial path stays the default (``workers=1``); the determinism
guarantee is asserted by ``tests/experiments/test_parallel.py`` and
the speedup by ``benchmarks/test_parallel_microbench.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Optional, Sequence

from repro.core.system import SystemSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    PointResult,
    SweepResult,
    aggregate_point,
    run_replication,
)
from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class ReplicationTask:
    """One independent simulation: a point's ``replication``-th run.

    Picklable by construction — the worker rebuilds network, system
    and workload from the spec/config, exactly as the serial runner
    does, and returns only the plain-data summary.
    """

    spec: SystemSpec
    arrival_rate: float
    config: ExperimentConfig
    replication: int


def run_task(task: ReplicationTask) -> SimulationResult:
    """Execute one :class:`ReplicationTask` (the pool's map function)."""
    return run_replication(
        task.spec, task.arrival_rate, task.config, task.replication
    )


class ParallelRunner:
    """Fans independent replications out over worker processes.

    Parameters
    ----------
    workers:
        Process count; defaults to ``os.cpu_count()``.  ``1`` degrades
        to an in-process loop (no pool is created), so callers can pass
        the knob through unconditionally.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` uses the platform
        default.  Results are identical under any of them.
    chunksize:
        Tasks handed to a worker per dispatch.  1 (default) gives the
        best load balance for the long, unevenly-sized simulations the
        runner produces.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        chunksize: int = 1,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.workers = workers
        self.chunksize = chunksize
        self._context = get_context(start_method)

    def run_tasks(self, tasks: Sequence[ReplicationTask]) -> list[SimulationResult]:
        """Run every task, returning results in task order.

        Task order (not completion order) is what makes the parent-side
        aggregation bit-identical to the serial runner.
        """
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            return [run_task(task) for task in tasks]
        processes = min(self.workers, len(tasks))
        with self._context.Pool(processes=processes) as pool:
            return pool.map(run_task, tasks, chunksize=self.chunksize)

    def run_point(
        self, spec: SystemSpec, arrival_rate: float, config: ExperimentConfig
    ) -> PointResult:
        """Parallel equivalent of :func:`repro.experiments.runner.run_point`."""
        tasks = [
            ReplicationTask(spec, arrival_rate, config, replication)
            for replication in range(config.replications)
        ]
        return aggregate_point(spec, arrival_rate, config, self.run_tasks(tasks))

    def sweep(
        self,
        specs: Sequence[SystemSpec],
        config: ExperimentConfig,
        arrival_rates: Optional[Sequence[float]] = None,
    ) -> list[SweepResult]:
        """Parallel equivalent of :func:`repro.experiments.runner.sweep`.

        Every ``(system, rate, replication)`` simulation of the whole
        grid is submitted to one pool pass, so the pool stays busy even
        when single points have few replications.
        """
        rates = (
            tuple(arrival_rates)
            if arrival_rates is not None
            else config.arrival_rates
        )
        tasks = [
            ReplicationTask(spec, rate, config, replication)
            for spec in specs
            for rate in rates
            for replication in range(config.replications)
        ]
        runs = self.run_tasks(tasks)
        results: list[SweepResult] = []
        index = 0
        for spec in specs:
            points: list[PointResult] = []
            for rate in rates:
                chunk = runs[index : index + config.replications]
                index += config.replications
                points.append(aggregate_point(spec, rate, config, chunk))
            results.append(
                SweepResult(system_label=spec.label, points=tuple(points))
            )
        return results
