"""Network-level diagnostics of simulation runs.

The paper argues SP performs poorly because it "funnels" anycast
traffic and congests particular links.  These helpers make that
mechanism visible: they aggregate the per-link utilization snapshots a
:class:`repro.sim.metrics.SimulationResult` carries and render the
hottest links, so the congestion signature of each selection algorithm
can be inspected and compared directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.report import format_table
from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class LinkHotspot:
    """One directed link's load summary."""

    link: tuple
    utilization: float


@dataclass(frozen=True)
class CongestionReport:
    """Utilization profile of one simulation run.

    Attributes
    ----------
    system_label:
        Which system produced the profile.
    hotspots:
        Links sorted by descending utilization.
    mean_utilization:
        Average utilization across all directed links.
    peak_utilization:
        The hottest link's utilization.
    gini:
        Gini coefficient of link utilizations — 0 means perfectly even
        spreading; values near 1 mean a few funnels carry everything.
    """

    system_label: str
    hotspots: tuple
    mean_utilization: float
    peak_utilization: float
    gini: float

    def top(self, n: int = 5) -> list[LinkHotspot]:
        """The ``n`` hottest links."""
        return list(self.hotspots[:n])

    def render(self, n: int = 5) -> str:
        """Text table of the hottest links."""
        rows = [
            [f"{h.link[0]}->{h.link[1]}", f"{h.utilization:.1%}"]
            for h in self.top(n)
        ]
        rows.append(["(mean over all links)", f"{self.mean_utilization:.1%}"])
        return format_table(
            ["link", "utilization"],
            rows,
            title=(
                f"hottest links, {self.system_label} "
                f"(gini={self.gini:.3f})"
            ),
        )


def _gini(values: Sequence[float]) -> float:
    """Gini coefficient of non-negative values (0 when all equal)."""
    items = sorted(values)
    n = len(items)
    total = sum(items)
    if n == 0 or total == 0:
        return 0.0
    cumulative = 0.0
    for rank, value in enumerate(items, start=1):
        cumulative += rank * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


def congestion_report(result: SimulationResult) -> CongestionReport:
    """Build a :class:`CongestionReport` from a simulation result.

    Uses the end-of-run link utilization snapshot the simulation
    recorded; with a steady-state measurement window this is an
    unbiased sample of the stationary occupancy.
    """
    if not result.link_utilization:
        raise ValueError("simulation result carries no link utilization data")
    hotspots = tuple(
        LinkHotspot(link=link, utilization=utilization)
        for link, utilization in sorted(
            result.link_utilization.items(),
            key=lambda kv: (-kv[1], repr(kv[0])),
        )
    )
    values = [h.utilization for h in hotspots]
    return CongestionReport(
        system_label=result.system_label,
        hotspots=hotspots,
        mean_utilization=sum(values) / len(values),
        peak_utilization=values[0],
        gini=_gini(values),
    )


def compare_congestion(
    reports: Sequence[CongestionReport], top_n: int = 3
) -> str:
    """Side-by-side text comparison of several systems' profiles."""
    rows = []
    for report in reports:
        hottest = ", ".join(
            f"{h.link[0]}->{h.link[1]}({h.utilization:.0%})"
            for h in report.top(top_n)
        )
        rows.append(
            [
                report.system_label,
                f"{report.mean_utilization:.1%}",
                f"{report.peak_utilization:.1%}",
                f"{report.gini:.3f}",
                hottest,
            ]
        )
    return format_table(
        ["system", "mean util", "peak util", "gini", f"top-{top_n} links"],
        rows,
        title="congestion signatures",
    )
