"""Machine-readable export of experiment results (CSV / JSON).

The text tables of :mod:`repro.experiments.report` are for reading;
this module serializes the same structures for plotting pipelines and
archival: each figure becomes a long-format CSV (``series, x, y``),
each table a two-row CSV, and everything has a JSON form carrying the
full per-point detail (confidence intervals, retrials, request
counts).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Optional

from repro.experiments.figures import FigureResult
from repro.experiments.runner import PointResult, SweepResult
from repro.experiments.tables import TableResult


def _write(text: str, path: Optional[str]) -> str:
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text


def figure_to_csv(figure: FigureResult, path: Optional[str] = None) -> str:
    """Long-format CSV of a figure: ``series,x,y`` rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["series", "arrival_rate", "value"])
    for label, values in figure.series.items():
        for x, y in zip(figure.x_values, values):
            writer.writerow([label, f"{x:g}", f"{y:.6f}"])
    return _write(buffer.getvalue(), path)


def table_to_csv(table: TableResult, path: Optional[str] = None) -> str:
    """CSV of an analysis-vs-simulation table."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["method"] + [f"{rate:g}" for rate in table.arrival_rates])
    writer.writerow(["analysis"] + [f"{v:.6f}" for v in table.analysis])
    writer.writerow(["simulation"] + [f"{v:.6f}" for v in table.simulation])
    return _write(buffer.getvalue(), path)


def sweep_to_csv(sweeps: list[SweepResult], path: Optional[str] = None) -> str:
    """Full-detail CSV of sweep results (one row per point)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        [
            "system",
            "arrival_rate",
            "admission_probability",
            "ap_ci_low",
            "ap_ci_high",
            "mean_retrials",
            "mean_attempts",
            "requests",
            "replications",
        ]
    )
    for sweep in sweeps:
        for point in sweep.points:
            writer.writerow(
                [
                    point.system_label,
                    f"{point.arrival_rate:g}",
                    f"{point.admission_probability:.6f}",
                    f"{point.ap_ci_low:.6f}",
                    f"{point.ap_ci_high:.6f}",
                    f"{point.mean_retrials:.6f}",
                    f"{point.mean_attempts:.6f}",
                    point.requests,
                    point.replications,
                ]
            )
    return _write(buffer.getvalue(), path)


def _point_to_dict(point: PointResult) -> dict:
    return {
        "system": point.system_label,
        "arrival_rate": point.arrival_rate,
        "admission_probability": point.admission_probability,
        "ap_ci": [point.ap_ci_low, point.ap_ci_high],
        "mean_retrials": point.mean_retrials,
        "mean_attempts": point.mean_attempts,
        "requests": point.requests,
        "replications": point.replications,
    }


def figure_to_json(figure: FigureResult, path: Optional[str] = None) -> str:
    """Full-detail JSON of a figure, including per-point metadata."""
    payload = {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_values": list(figure.x_values),
        "series": {label: list(values) for label, values in figure.series.items()},
        "points": [
            _point_to_dict(point)
            for sweep in figure.sweeps
            for point in sweep.points
        ],
    }
    return _write(json.dumps(payload, indent=2, default=str), path)


def table_to_json(table: TableResult, path: Optional[str] = None) -> str:
    """JSON of an analysis-vs-simulation table."""
    payload = {
        "table_id": table.table_id,
        "system": table.system_label,
        "arrival_rates": list(table.arrival_rates),
        "analysis": list(table.analysis),
        "simulation": list(table.simulation),
        "max_absolute_gap": table.max_absolute_gap,
    }
    return _write(json.dumps(payload, indent=2), path)
