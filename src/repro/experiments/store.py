"""On-disk cache of experiment results.

Paper-scale points take minutes of simulation; sweeping many systems
over many rates re-runs unchanged points again and again.
:class:`ResultStore` memoizes :class:`repro.experiments.runner.
PointResult` objects on disk, keyed by a content hash of everything
that determines the outcome (system spec, arrival rate and every
workload-relevant config field) — so editing one parameter invalidates
exactly the points it affects.

Determinism makes this sound: identical keys genuinely produce
identical results (see ``tests/integration/test_determinism_golden``).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import Callable, Optional

from repro.core.system import SystemSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import PointResult, run_point

#: Config fields that affect simulation outcomes (and therefore key
#: the cache).  Display-only fields are deliberately absent.
_KEYED_FIELDS = (
    "topology",
    "sources",
    "group_members",
    "mean_lifetime_s",
    "bandwidth_bps",
    "warmup_s",
    "measure_s",
    "replications",
    "seed",
    "source_weights",
    "bandwidth_classes",
)


def _point_key(spec: SystemSpec, arrival_rate: float, config: ExperimentConfig) -> str:
    payload = {
        "spec": asdict(spec),
        "arrival_rate": arrival_rate,
        "config": {field: getattr(config, field) for field in _KEYED_FIELDS},
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


def _point_to_json(point: PointResult) -> dict:
    return {
        "system_label": point.system_label,
        "arrival_rate": point.arrival_rate,
        "replications": point.replications,
        "admission_probability": point.admission_probability,
        "ap_ci_low": point.ap_ci_low,
        "ap_ci_high": point.ap_ci_high,
        "mean_retrials": point.mean_retrials,
        "mean_attempts": point.mean_attempts,
        "requests": point.requests,
    }


def _point_from_json(payload: dict) -> PointResult:
    return PointResult(runs=(), **payload)


class ResultStore:
    """A directory of memoized experiment points.

    Parameters
    ----------
    directory:
        Created on first write if absent.  One JSON file per point.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(
        self, spec: SystemSpec, arrival_rate: float, config: ExperimentConfig
    ) -> Optional[PointResult]:
        """The cached point, or ``None``."""
        path = self._path(_point_key(spec, arrival_rate, config))
        if not os.path.exists(path):
            return None
        with open(path) as handle:
            return _point_from_json(json.load(handle))

    def put(
        self,
        spec: SystemSpec,
        arrival_rate: float,
        config: ExperimentConfig,
        point: PointResult,
    ) -> None:
        """Store a point (overwrites any previous value for the key)."""
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(_point_key(spec, arrival_rate, config))
        with open(path, "w") as handle:
            json.dump(_point_to_json(point), handle, indent=2)

    def get_or_run(
        self,
        spec: SystemSpec,
        arrival_rate: float,
        config: ExperimentConfig,
        runner: Callable[..., PointResult] = run_point,
    ) -> PointResult:
        """Return the cached point or run and cache it.

        ``runner`` is injectable for testing; it must have
        :func:`repro.experiments.runner.run_point`'s signature.
        """
        cached = self.get(spec, arrival_rate, config)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        point = runner(spec, arrival_rate, config)
        self.put(spec, arrival_rate, config, point)
        return point

    def entry_count(self) -> int:
        """Number of cached points on disk."""
        if not os.path.isdir(self.directory):
            return 0
        return sum(
            1 for name in os.listdir(self.directory) if name.endswith(".json")
        )

    def clear(self) -> None:
        """Delete every cached point."""
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                os.unlink(os.path.join(self.directory, name))
