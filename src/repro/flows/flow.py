"""Flow requests and admitted flows.

A :class:`FlowRequest` is what an application hands to the network:
"establish an anycast flow from this source to this group with this
QoS".  If the Distributed Admission Control procedure admits it, the
result is an :class:`AdmittedFlow` pinned to one destination and one
route for its whole lifetime — the paper's sequencing requirement that
every packet of a flow goes to the member the first packet reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement

NodeId = Hashable


@dataclass(frozen=True)
class FlowRequest:
    """An anycast flow establishment request.

    Attributes
    ----------
    flow_id:
        Unique identifier; also keys the per-link reservation ledgers.
    source:
        Source node (the AC-router that handles admission).
    group:
        The anycast destination group ``G(A)``.
    qos:
        QoS requirement; :attr:`bandwidth_bps` below is derived from it.
    arrival_time:
        Simulation time at which the request arrived.
    lifetime_s:
        Flow holding time, sampled at arrival (exponential in the
        paper's workload).  ``None`` for open-ended flows that are torn
        down explicitly.
    """

    flow_id: int
    source: NodeId
    group: AnycastGroup
    qos: QoSRequirement
    arrival_time: float = 0.0
    lifetime_s: Optional[float] = None

    def __post_init__(self):
        if self.lifetime_s is not None and self.lifetime_s < 0:
            raise ValueError(f"lifetime must be non-negative, got {self.lifetime_s}")

    @property
    def bandwidth_bps(self) -> float:
        """Effective bandwidth the network must reserve for this flow."""
        return self.qos.effective_bandwidth_bps

    @property
    def departure_time(self) -> Optional[float]:
        """Scheduled end of the flow, if the lifetime is known."""
        if self.lifetime_s is None:
            return None
        return self.arrival_time + self.lifetime_s


@dataclass
class AdmittedFlow:
    """An admitted anycast flow holding bandwidth along its route.

    Attributes
    ----------
    request:
        The originating request.
    destination:
        The group member selected by admission control.
    path:
        The node path the reservation was made on.
    admitted_at:
        Simulation time of admission.
    attempts:
        Number of destinations tried before success (>= 1).
    """

    request: FlowRequest
    destination: NodeId
    path: tuple
    admitted_at: float
    attempts: int = 1
    released: bool = field(default=False, compare=False)

    def __post_init__(self):
        if self.destination not in self.request.group:
            raise ValueError(
                f"destination {self.destination!r} is not in group "
                f"{self.request.group.address!r}"
            )
        if len(self.path) >= 1 and self.path[-1] != self.destination:
            raise ValueError(
                f"path {self.path} does not end at destination {self.destination!r}"
            )
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    @property
    def flow_id(self) -> int:
        """Identifier shared with the request and the link ledgers."""
        return self.request.flow_id

    @property
    def bandwidth_bps(self) -> float:
        """Bandwidth held on every link of :attr:`path`."""
        return self.request.bandwidth_bps

    @property
    def hop_count(self) -> int:
        """Number of links on the flow's route."""
        return max(0, len(self.path) - 1)
