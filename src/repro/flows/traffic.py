"""Workload generation (paper Section 5.1).

The paper's traffic model: anycast flow establishment requests form a
Poisson process with rate lambda; lifetimes are exponential with mean
180 s; every flow needs 64 kbit/s; the source of each request is drawn
uniformly from a designated source set (hosts at odd-ID routers in the
MCI experiments).

:class:`TrafficModel` turns a :class:`WorkloadSpec` into a stream of
:class:`repro.flows.flow.FlowRequest` objects, either lazily (for the
event-driven simulation) or eagerly (for analysis and tests).  All
randomness is drawn from named streams of a
:class:`repro.sim.random_streams.StreamFactory`, so identical seeds
yield identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Optional

from repro.flows.flow import FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement
from repro.sim.random_streams import StreamFactory

NodeId = Hashable

#: Paper defaults (Section 5.1).
DEFAULT_MEAN_LIFETIME_S = 180.0
DEFAULT_FLOW_BANDWIDTH_BPS = 64_000.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the Poisson anycast workload.

    Attributes
    ----------
    arrival_rate:
        Aggregate request rate lambda (requests per second) across all
        sources; each arrival picks its source uniformly at random,
        matching the paper's model.
    sources:
        Candidate source nodes.
    group:
        The anycast destination group.
    mean_lifetime_s:
        Mean of the exponential flow lifetime (paper: 180 s).
    bandwidth_bps:
        Per-flow bandwidth requirement (paper: 64 kbit/s).
    delay_bound_s:
        Optional delay bound forwarded into each request's QoS (the
        Section 6 extension); ``None`` reproduces the paper.
    source_weights:
        Optional relative request rates per source (aligned with
        ``sources``).  ``None`` reproduces the paper's uniform choice;
        weights let hot-spot workloads be modelled.
    bandwidth_classes:
        Optional mix of flow classes as ``(bandwidth_bps, probability)``
        pairs; each request draws its class independently.  ``None``
        reproduces the paper's single 64 kbit/s class.  Probabilities
        must sum to one.
    """

    arrival_rate: float
    sources: tuple
    group: AnycastGroup
    mean_lifetime_s: float = DEFAULT_MEAN_LIFETIME_S
    bandwidth_bps: float = DEFAULT_FLOW_BANDWIDTH_BPS
    delay_bound_s: Optional[float] = None
    source_weights: Optional[tuple] = None
    bandwidth_classes: Optional[tuple] = None

    def __post_init__(self):
        if self.arrival_rate <= 0:
            raise ValueError(
                f"arrival rate must be positive, got {self.arrival_rate}"
            )
        if not self.sources:
            raise ValueError("workload needs at least one source")
        if self.mean_lifetime_s <= 0:
            raise ValueError(
                f"mean lifetime must be positive, got {self.mean_lifetime_s}"
            )
        if self.bandwidth_bps <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth_bps}"
            )
        object.__setattr__(self, "sources", tuple(self.sources))
        if self.source_weights is not None:
            weights = tuple(float(w) for w in self.source_weights)
            if len(weights) != len(self.sources):
                raise ValueError(
                    f"{len(weights)} source weights for "
                    f"{len(self.sources)} sources"
                )
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError(
                    "source weights must be non-negative with positive sum"
                )
            object.__setattr__(self, "source_weights", weights)
        if self.bandwidth_classes is not None:
            classes = tuple(
                (float(bw), float(p)) for bw, p in self.bandwidth_classes
            )
            if not classes:
                raise ValueError("bandwidth class mix must not be empty")
            if any(bw <= 0 for bw, _ in classes):
                raise ValueError("class bandwidths must be positive")
            if any(p < 0 for _, p in classes) or abs(
                sum(p for _, p in classes) - 1.0
            ) > 1e-9:
                raise ValueError("class probabilities must sum to one")
            object.__setattr__(self, "bandwidth_classes", classes)

    @property
    def per_source_rate(self) -> float:
        """Arrival rate seen by each individual source (lambda / |S|)."""
        return self.arrival_rate / len(self.sources)

    @property
    def offered_load_erlangs(self) -> float:
        """Total offered traffic intensity ``rho = lambda / mu``."""
        return self.arrival_rate * self.mean_lifetime_s

    def qos(self, bandwidth_bps: Optional[float] = None) -> QoSRequirement:
        """The QoS requirement of a flow of this workload.

        ``bandwidth_bps`` overrides the default class (used when a
        class mix is configured).
        """
        return QoSRequirement(
            bandwidth_bps=bandwidth_bps or self.bandwidth_bps,
            delay_bound_s=self.delay_bound_s,
        )

    @property
    def mean_bandwidth_bps(self) -> float:
        """Expected per-flow bandwidth over the class mix."""
        if self.bandwidth_classes is None:
            return self.bandwidth_bps
        return sum(bw * p for bw, p in self.bandwidth_classes)


class TrafficModel:
    """Generates the request stream for a :class:`WorkloadSpec`.

    Parameters
    ----------
    spec:
        The workload parameters.
    streams:
        Stream factory; the model uses the named streams
        ``"traffic.interarrival"``, ``"traffic.source"`` and
        ``"traffic.lifetime"`` so that, e.g., changing the admission
        algorithm never perturbs the arrival sequence (common random
        numbers across compared systems).
    """

    def __init__(self, spec: WorkloadSpec, streams: StreamFactory):
        self.spec = spec
        self._interarrival = streams.stream("traffic.interarrival")
        self._source = streams.stream("traffic.source")
        self._lifetime = streams.stream("traffic.lifetime")
        self._class = streams.stream("traffic.class")
        self._next_flow_id = 0
        self._clock = 0.0

    @property
    def generated_count(self) -> int:
        """Number of requests generated so far."""
        return self._next_flow_id

    def next_request(self) -> FlowRequest:
        """Generate the next request; advances the internal arrival clock."""
        self._clock += self._interarrival.exponential(1.0 / self.spec.arrival_rate)
        if self.spec.source_weights is not None:
            source = self._source.weighted_choice(
                self.spec.sources, self.spec.source_weights
            )
        else:
            source = self._source.choice(self.spec.sources)
        lifetime = self._lifetime.exponential(self.spec.mean_lifetime_s)
        bandwidth: Optional[float] = None
        if self.spec.bandwidth_classes is not None:
            bandwidth = self._class.weighted_choice(
                [bw for bw, _ in self.spec.bandwidth_classes],
                [p for _, p in self.spec.bandwidth_classes],
            )
        request = FlowRequest(
            flow_id=self._next_flow_id,
            source=source,
            group=self.spec.group,
            qos=self.spec.qos(bandwidth),
            arrival_time=self._clock,
            lifetime_s=lifetime,
        )
        self._next_flow_id += 1
        return request

    def requests_until(self, horizon_s: float) -> Iterator[FlowRequest]:
        """Yield requests with arrival times up to ``horizon_s``.

        The generator stops *before* yielding the first request beyond
        the horizon; that arrival is lost (the model is memoryless so
        this does not bias the process).
        """
        while True:
            request = self.next_request()
            if request.arrival_time > horizon_s:
                return
            yield request

    def take(self, count: int) -> list[FlowRequest]:
        """Generate exactly ``count`` requests (eager helper for tests)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.next_request() for _ in range(count)]
