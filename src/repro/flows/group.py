"""Anycast groups.

An anycast flow is addressed to an anycast address ``A``; ``G(A)`` is
the group of designated recipients, any one of which may terminate the
flow (paper Section 3).  A unicast destination is the degenerate group
of size one.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

NodeId = Hashable


class AnycastGroup:
    """A group of designated recipients sharing one anycast address.

    Parameters
    ----------
    address:
        The anycast address (any hashable label, e.g. ``"A"``).
    members:
        The recipient nodes.  Order is preserved — weight vectors in
        the destination-selection algorithms are indexed by this order.
        Duplicates are rejected.
    """

    def __init__(self, address: Hashable, members: Sequence[NodeId]):
        members = tuple(members)
        if not members:
            raise ValueError("anycast group must have at least one member")
        if len(set(members)) != len(members):
            raise ValueError(f"duplicate members in group {address!r}: {members}")
        self.address = address
        self._members = members
        self._member_index = {member: i for i, member in enumerate(members)}

    @property
    def members(self) -> tuple:
        """Members in canonical (weight-vector) order."""
        return self._members

    @property
    def size(self) -> int:
        """Group size ``K``."""
        return len(self._members)

    @property
    def is_unicast(self) -> bool:
        """Whether this is the degenerate single-member (unicast) case."""
        return len(self._members) == 1

    def index_of(self, member: NodeId) -> int:
        """Position of ``member`` in the canonical order."""
        try:
            return self._member_index[member]
        except KeyError:
            raise ValueError(
                f"{member!r} is not a member of group {self.address!r}"
            ) from None

    def __contains__(self, member: NodeId) -> bool:
        return member in self._member_index

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnycastGroup):
            return NotImplemented
        return self.address == other.address and self._members == other._members

    def __hash__(self) -> int:
        return hash((self.address, self._members))

    def __repr__(self) -> str:
        return f"AnycastGroup({self.address!r}, members={self._members})"
