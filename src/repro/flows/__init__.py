"""Anycast flow, group, QoS and traffic models (paper Section 3, 5.1).

* :mod:`repro.flows.group` -- anycast groups: an address shared by a
  set of designated recipients.
* :mod:`repro.flows.flow` -- flow requests and admitted flows.
* :mod:`repro.flows.qos` -- QoS requirements, including the paper's
  Section 6 extension mapping end-to-end delay bounds to bandwidth
  under rate-based schedulers (WFQ / Virtual Clock).
* :mod:`repro.flows.traffic` -- the Poisson arrival / exponential
  lifetime workload of Section 5.1.
"""

from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import (
    QoSRequirement,
    delay_bound_to_bandwidth_wfq,
    wfq_delay_bound,
)
from repro.flows.traffic import TrafficModel, WorkloadSpec

__all__ = [
    "AdmittedFlow",
    "AnycastGroup",
    "FlowRequest",
    "QoSRequirement",
    "TrafficModel",
    "WorkloadSpec",
    "delay_bound_to_bandwidth_wfq",
    "wfq_delay_bound",
]
