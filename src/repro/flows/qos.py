"""QoS requirements and the delay-to-bandwidth mapping of Section 6.

The paper's admission control reserves *bandwidth*.  Its final remarks
note that in networks with rate-based schedulers (WFQ, Virtual Clock)
an end-to-end delay requirement "can be directly mapped to bandwidth
requirement", so delay QoS reduces to the bandwidth QoS the DAC
procedure already handles.  This module implements that mapping using
the classic WFQ (PGPS) end-to-end delay bound of Parekh & Gallager:

    delay <= sigma / g  +  (H - 1) * L_max / g  +  sum_h L_max / C_h

where ``g`` is the reserved rate, ``sigma`` the token-bucket burst,
``H`` the hop count, ``L_max`` the maximum packet size and ``C_h`` the
raw link speeds.  Solving for ``g`` gives the minimum reservation that
meets a target delay bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class QoSRequirement:
    """QoS demanded by a flow.

    At least a bandwidth requirement must be given; an optional delay
    bound *raises* the effective bandwidth via the WFQ mapping when
    route parameters are attached with :meth:`with_route`.

    Attributes
    ----------
    bandwidth_bps:
        Throughput requirement in bits per second.
    delay_bound_s:
        Optional end-to-end delay bound in seconds.
    burst_bits:
        Token-bucket burst size (sigma) in bits, used by the delay
        mapping.  Defaults to one maximum packet.
    max_packet_bits:
        Maximum packet size (L_max) in bits.
    """

    bandwidth_bps: float
    delay_bound_s: Optional[float] = None
    burst_bits: float = 12_000.0
    max_packet_bits: float = 12_000.0
    _delay_rate_bps: Optional[float] = None

    def __post_init__(self):
        if self.bandwidth_bps <= 0:
            raise ValueError(
                f"bandwidth requirement must be positive, got {self.bandwidth_bps}"
            )
        if self.delay_bound_s is not None and self.delay_bound_s <= 0:
            raise ValueError(
                f"delay bound must be positive, got {self.delay_bound_s}"
            )
        if self.burst_bits < 0 or self.max_packet_bits <= 0:
            raise ValueError("burst must be >= 0 and max packet > 0")

    @property
    def effective_bandwidth_bps(self) -> float:
        """Bandwidth the network must reserve to honour this QoS.

        The larger of the throughput requirement and (when a delay
        bound has been resolved against a concrete route via
        :meth:`with_route`) the WFQ rate needed for the delay bound.
        """
        if self._delay_rate_bps is None:
            return self.bandwidth_bps
        return max(self.bandwidth_bps, self._delay_rate_bps)

    def with_route(
        self, hop_count: int, link_speeds_bps: Sequence[float]
    ) -> "QoSRequirement":
        """Resolve the delay bound against a concrete route.

        Returns a new requirement whose effective bandwidth also
        satisfies the delay bound over a route with ``hop_count`` hops
        and the given raw link speeds.  A no-op if no delay bound was
        requested.

        Raises
        ------
        ValueError
            If the delay bound is infeasible even at full link speed.
        """
        if self.delay_bound_s is None:
            return self
        rate = delay_bound_to_bandwidth_wfq(
            delay_bound_s=self.delay_bound_s,
            burst_bits=self.burst_bits,
            max_packet_bits=self.max_packet_bits,
            hop_count=hop_count,
            link_speeds_bps=link_speeds_bps,
        )
        return QoSRequirement(
            bandwidth_bps=self.bandwidth_bps,
            delay_bound_s=self.delay_bound_s,
            burst_bits=self.burst_bits,
            max_packet_bits=self.max_packet_bits,
            _delay_rate_bps=rate,
        )


def wfq_delay_bound(
    rate_bps: float,
    burst_bits: float,
    max_packet_bits: float,
    hop_count: int,
    link_speeds_bps: Sequence[float],
) -> float:
    """Parekh-Gallager end-to-end delay bound under WFQ (seconds).

    ``delay = sigma/g + (H-1) L/g + sum_h L/C_h`` for a flow reserved
    rate ``g`` over ``H`` hops.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    if hop_count < 1:
        raise ValueError(f"hop count must be >= 1, got {hop_count}")
    if len(link_speeds_bps) != hop_count:
        raise ValueError(
            f"{hop_count} hops but {len(link_speeds_bps)} link speeds"
        )
    store_forward = sum(max_packet_bits / speed for speed in link_speeds_bps)
    return (
        burst_bits / rate_bps
        + (hop_count - 1) * max_packet_bits / rate_bps
        + store_forward
    )


def delay_bound_to_bandwidth_wfq(
    delay_bound_s: float,
    burst_bits: float,
    max_packet_bits: float,
    hop_count: int,
    link_speeds_bps: Sequence[float],
) -> float:
    """Minimum WFQ rate meeting ``delay_bound_s`` over a route.

    Inverts :func:`wfq_delay_bound` for the rate:

        g >= (sigma + (H-1) L) / (D - sum_h L/C_h)

    Raises
    ------
    ValueError
        If the fixed store-and-forward term alone exceeds the bound
        (no finite rate can help).
    """
    if delay_bound_s <= 0:
        raise ValueError(f"delay bound must be positive, got {delay_bound_s}")
    if hop_count < 1:
        raise ValueError(f"hop count must be >= 1, got {hop_count}")
    if len(link_speeds_bps) != hop_count:
        raise ValueError(
            f"{hop_count} hops but {len(link_speeds_bps)} link speeds"
        )
    store_forward = sum(max_packet_bits / speed for speed in link_speeds_bps)
    slack = delay_bound_s - store_forward
    numerator = burst_bits + (hop_count - 1) * max_packet_bits
    if numerator == 0:
        # A fluid flow with no burst meets any bound beyond store-and-forward.
        if slack <= 0:
            raise ValueError(
                f"delay bound {delay_bound_s}s is infeasible: store-and-forward "
                f"latency alone is {store_forward:.6g}s"
            )
        return 0.0
    if slack <= 0:
        raise ValueError(
            f"delay bound {delay_bound_s}s is infeasible: store-and-forward "
            f"latency alone is {store_forward:.6g}s"
        )
    return numerator / slack
