"""Baseline systems of the paper's evaluation (Section 5.1).

* ``SP`` -- always the nearest member over its fixed route; the
  selector lives in :mod:`repro.core.selection`
  (:class:`repro.core.selection.ShortestPathSelector`) because it runs
  inside an ordinary AC-router.
* ``GDI`` -- :class:`repro.baselines.gdi.GDIController`: perfect
  global dynamic information and freedom to use *any* path, the
  idealized upper bound.
"""

from repro.baselines.gdi import GDIController

__all__ = ["GDIController"]
