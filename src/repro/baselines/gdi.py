"""The GDI baseline: global dynamic information, any path.

The paper's idealized comparator assumes the admission controller
knows "the active flows and their usage of bandwidth on each link in
the network" and may route over *any* path, not only the fixed one.
Admission therefore succeeds exactly when some path from the source to
*some* group member has the required bandwidth available on every
link.

That existence question is a reachability problem on the subgraph of
links with ``AB_l >= b``, so the "exhaustive search for all the
available paths" reduces to one BFS per member; among feasible members
the minimum-hop path is used (deterministic tie-break), which also
makes GDI frugal with resources.

The paper stresses this system "is not realistic, and it is
difficult, if not impossible, to implement in practice" — it exists
to upper-bound the achievable admission probability.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.admission import AdmissionResult
from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.group import AnycastGroup
from repro.network.routing import feasible_path
from repro.network.topology import Network

NodeId = Hashable


class GDIController:
    """Centralized admission with perfect global knowledge.

    One instance serves every source (it is the antithesis of the
    distributed mechanism).  The interface mirrors
    :class:`repro.core.admission.ACRouter` so the simulation can drive
    either interchangeably.
    """

    def __init__(self, network: Network, group: AnycastGroup) -> None:
        self.network = network
        self.group = group
        self.requests_seen = 0
        self.requests_admitted = 0
        self.total_attempts = 0

    def admit(self, request: FlowRequest, now: Optional[float] = None) -> AdmissionResult:
        """Admit iff any member is reachable over links with room.

        Members are scanned in group order; the overall minimum-hop
        feasible path across members is reserved.
        """
        if request.group != self.group:
            raise ValueError(
                f"request group {request.group.address!r} does not match "
                f"controller group {self.group.address!r}"
            )
        decided_at = request.arrival_time if now is None else now
        self.requests_seen += 1
        self.total_attempts += 1
        best_path: Optional[list[NodeId]] = None
        for member in self.group.members:
            path = feasible_path(
                self.network, request.source, member, request.bandwidth_bps
            )
            if path is not None and (best_path is None or len(path) < len(best_path)):
                best_path = path
        if best_path is None:
            return AdmissionResult(
                request=request,
                flow=None,
                attempts=1,
                tried=tuple(self.group.members),
                decided_at=decided_at,
            )
        reserved = self.network.reserve_path(
            best_path, request.flow_id, request.bandwidth_bps
        )
        if not reserved:  # pragma: no cover - feasible_path guarantees room
            raise RuntimeError("feasible path refused reservation")
        self.requests_admitted += 1
        flow = AdmittedFlow(
            request=request,
            destination=best_path[-1],
            path=tuple(best_path),
            admitted_at=decided_at,
            attempts=1,
        )
        return AdmissionResult(
            request=request,
            flow=flow,
            attempts=1,
            tried=(best_path[-1],),
            decided_at=decided_at,
        )

    def release(self, flow: AdmittedFlow) -> None:
        """Tear down an admitted flow's reservations (idempotent)."""
        if flow.released:
            return
        self.network.release_path(flow.path, flow.flow_id)
        flow.released = True

    @property
    def admission_ratio(self) -> float:
        """Fraction of seen requests admitted (0 when none seen)."""
        if self.requests_seen == 0:
            return 0.0
        return self.requests_admitted / self.requests_seen

    @property
    def mean_attempts(self) -> float:
        """Always 1.0 per request once any request has been seen."""
        if self.requests_seen == 0:
            return 0.0
        return self.total_attempts / self.requests_seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GDIController(group={self.group.address!r}, seen={self.requests_seen})"
