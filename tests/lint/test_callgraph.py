"""Unit tests for the project call graph (repro.lint.callgraph)."""

import textwrap

from repro.lint.callgraph import CallGraph, build_callgraph, module_name_for


def dedented(**sources):
    return {path: textwrap.dedent(text) for path, text in sources.items()}


class TestModuleNames:
    def test_repro_anchored(self):
        assert (
            module_name_for("src/repro/experiments/parallel.py")
            == "repro.experiments.parallel"
        )

    def test_package_init_collapses(self):
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"

    def test_outside_repro_uses_stem(self):
        assert module_name_for("tests/lint/fixtures/flow/r7_leak.py") == "r7_leak"


class TestResolution:
    def test_same_module_call(self):
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    def helper():
                        return 1

                    def top():
                        return helper()
                    """
                }
            )
        )
        assert graph.lookup("repro.a.top").calls == ["repro.a.helper"]

    def test_from_import_call(self):
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    def helper():
                        return 1
                    """,
                    "src/repro/b.py": """
                    from repro.a import helper

                    def top():
                        return helper()
                    """,
                }
            )
        )
        assert graph.lookup("repro.b.top").calls == ["repro.a.helper"]

    def test_module_attribute_call(self):
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    def helper():
                        return 1
                    """,
                    "src/repro/b.py": """
                    import repro.a as aye

                    def top():
                        return aye.helper()
                    """,
                }
            )
        )
        assert graph.lookup("repro.b.top").calls == ["repro.a.helper"]

    def test_self_method_call(self):
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    class Runner:
                        def step(self):
                            return self.inner()

                        def inner(self):
                            return 1
                    """
                }
            )
        )
        assert graph.lookup("repro.a.Runner.step").calls == [
            "repro.a.Runner.inner"
        ]

    def test_constructor_resolves_to_init(self):
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    class Runner:
                        def __init__(self):
                            self.n = 0

                    def make():
                        return Runner()
                    """
                }
            )
        )
        assert graph.lookup("repro.a.make").calls == ["repro.a.Runner.__init__"]

    def test_unknown_method_over_approximates_by_name(self):
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    class Alpha:
                        def run(self):
                            return 1

                    class Beta:
                        def run(self):
                            return 2

                    def top(obj):
                        return obj.run()
                    """
                }
            )
        )
        assert sorted(graph.lookup("repro.a.top").calls) == [
            "repro.a.Alpha.run",
            "repro.a.Beta.run",
        ]

    def test_locally_bound_names_are_opaque(self):
        # A local rebinding shadows the imported helper: no false edge.
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    def helper():
                        return 1

                    def top(helper):
                        return helper()
                    """
                }
            )
        )
        assert graph.lookup("repro.a.top").calls == []


class TestFacts:
    def test_module_state_mutation_recorded(self):
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    CACHE = {}

                    def record(key, value):
                        CACHE[key] = value
                    """
                }
            )
        )
        info = graph.lookup("repro.a.record")
        assert [name for name, _ in info.mutates_module_state] == ["CACHE"]

    def test_global_statement_mutation_recorded(self):
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    COUNT = 0

                    def bump():
                        global COUNT
                        COUNT = COUNT + 1
                    """
                }
            )
        )
        info = graph.lookup("repro.a.bump")
        assert [name for name, _ in info.mutates_module_state] == ["COUNT"]

    def test_unseeded_rng_recorded(self):
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    import random

                    def jitter(x):
                        return x + random.random()
                    """
                }
            )
        )
        info = graph.lookup("repro.a.jitter")
        assert [name for name, _ in info.unseeded_rng] == ["random.random"]

    def test_seeded_constructor_is_exempt(self):
        graph = build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    import random

                    def make_stream(seed):
                        return random.Random(seed)
                    """
                }
            )
        )
        assert graph.lookup("repro.a.make_stream").unseeded_rng == []


class TestReachability:
    def graph(self):
        return build_callgraph(
            dedented(
                **{
                    "src/repro/a.py": """
                    def leaf():
                        return 1

                    def mid():
                        return leaf()

                    def top():
                        return mid()

                    def island():
                        return 0
                    """
                }
            )
        )

    def test_bfs_reaches_transitive_callees(self):
        reached = self.graph().reachable(["repro.a.top"])
        assert reached == ["repro.a.top", "repro.a.mid", "repro.a.leaf"]

    def test_islands_stay_unreached(self):
        assert "repro.a.island" not in self.graph().reachable(["repro.a.top"])

    def test_unknown_roots_ignored(self):
        assert self.graph().reachable(["repro.a.missing"]) == []


class TestCachePayload:
    def test_round_trip_preserves_everything(self):
        sources = dedented(
            **{
                "src/repro/a.py": """
                CACHE = {}
                import random

                def record(key):
                    CACHE[key] = random.random()

                def top(key):
                    return record(key)
                """
            }
        )
        graph = build_callgraph(sources)
        clone = CallGraph.from_payload(graph.to_payload())
        assert clone.to_payload() == graph.to_payload()
        assert clone.lookup("repro.a.top").calls == ["repro.a.record"]
        assert clone.matches_sources(sources)

    def test_stale_cache_detected(self):
        sources = dedented(
            **{
                "src/repro/a.py": """
                def helper():
                    return 1
                """
            }
        )
        graph = build_callgraph(sources)
        edited = dict(sources)
        edited["src/repro/a.py"] += "\n# trailing comment\n"
        assert not graph.matches_sources(edited)
