"""Unit tests for the CFG builder (repro.lint.cfg)."""

import ast
import textwrap

from repro.lint.cfg import (
    BREAK,
    EXCEPTION,
    FALLTHROUGH,
    NORMAL,
    RETURN,
    build_cfg,
    iter_function_defs,
    statement_can_raise,
)


def cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(iter_function_defs(tree)[0])


def edges(graph):
    """(source stmt or label, kind, target stmt or label) triples."""
    def name(block):
        if block.stmt is not None:
            return ast.unparse(block.stmt).splitlines()[0]
        return block.label
    return {
        (name(block), edge.kind, name(edge.target))
        for block in graph.blocks
        for edge in block.succ
    }


class TestCanRaise:
    def test_calls_can_raise(self):
        stmt = ast.parse("x = frobnicate()").body[0]
        assert statement_can_raise(stmt)

    def test_plain_assignment_cannot(self):
        stmt = ast.parse("x = 0").body[0]
        assert not statement_can_raise(stmt)

    def test_whitelisted_calls_cannot(self):
        stmt = ast.parse("out.append(x)").body[0]
        assert not statement_can_raise(stmt)

    def test_raise_and_assert_always_can(self):
        assert statement_can_raise(ast.parse("raise ValueError()").body[0])
        assert statement_can_raise(ast.parse("assert x").body[0])

    def test_defining_a_closure_cannot(self):
        stmt = ast.parse("def inner():\n    boom()").body[0]
        assert not statement_can_raise(stmt)


class TestLinearFlow:
    def test_straight_line_reaches_exit(self):
        graph = cfg_of(
            """
            def f():
                x = 1
                y = 2
            """
        )
        assert ("y = 2", FALLTHROUGH, "exit") in edges(graph)

    def test_raising_call_gets_exception_edge(self):
        graph = cfg_of(
            """
            def f():
                work()
            """
        )
        assert ("work()", EXCEPTION, "raise_exit") in edges(graph)

    def test_non_raising_statement_gets_none(self):
        graph = cfg_of(
            """
            def f(out, x):
                out.append(x)
            """
        )
        assert ("out.append(x)", EXCEPTION, "raise_exit") not in edges(graph)


class TestEarlyReturn:
    def test_return_edge_goes_to_exit(self):
        graph = cfg_of(
            """
            def f(flag):
                if flag:
                    return 1
                return 2
            """
        )
        all_edges = edges(graph)
        assert ("return 1", RETURN, "exit") in all_edges
        assert ("return 2", RETURN, "exit") in all_edges

    def test_code_after_return_is_unreachable(self):
        graph = cfg_of(
            """
            def f():
                return 1
                x = 2
            """
        )
        assert not any(
            block.stmt is not None and ast.unparse(block.stmt) == "x = 2"
            for block in graph.blocks
        )


class TestTryFinally:
    def test_finally_duplicated_per_continuation(self):
        graph = cfg_of(
            """
            def f():
                try:
                    work()
                finally:
                    cleanup()
            """
        )
        labels = [block.label for block in graph.blocks]
        assert "finally-exception" in labels
        assert "finally-normal" in labels
        # cleanup() appears once per live continuation copy
        copies = [
            block
            for block in graph.blocks
            if block.stmt is not None
            and ast.unparse(block.stmt) == "cleanup()"
        ]
        assert len(copies) >= 2

    def test_finally_completion_is_not_an_exception_edge(self):
        # The exceptional copy re-raises *after* the finally body runs
        # normally, so completing the copy must be a NORMAL edge into
        # raise_exit (carrying the post-state), not an EXCEPTION edge.
        graph = cfg_of(
            """
            def f():
                try:
                    work()
                finally:
                    cleanup()
            """
        )
        assert ("cleanup()", NORMAL, "raise_exit") in edges(graph)

    def test_return_through_finally(self):
        graph = cfg_of(
            """
            def f():
                try:
                    return work()
                finally:
                    cleanup()
            """
        )
        assert "finally-return" in [block.label for block in graph.blocks]


class TestExceptHandlers:
    def test_specific_handler_keeps_outward_edge(self):
        graph = cfg_of(
            """
            def f():
                try:
                    work()
                except ValueError:
                    recover()
            """
        )
        all_edges = edges(graph)
        # The dispatch can bypass the non-catch-all handler outward.
        assert ("except-dispatch", EXCEPTION, "raise_exit") in all_edges

    def test_catch_all_handler_swallows(self):
        graph = cfg_of(
            """
            def f():
                try:
                    work()
                except Exception:
                    recover()
            """
        )
        assert ("except-dispatch", EXCEPTION, "raise_exit") not in edges(graph)

    def test_raise_in_handler_escapes(self):
        graph = cfg_of(
            """
            def f():
                try:
                    work()
                except ValueError:
                    raise
            """
        )
        assert ("raise", EXCEPTION, "raise_exit") in edges(graph)


class TestWithBlocks:
    def test_with_body_exceptions_propagate(self):
        graph = cfg_of(
            """
            def f(lock):
                with lock:
                    work()
            """
        )
        assert ("work()", EXCEPTION, "raise_exit") in edges(graph)


class TestLoops:
    def test_loop_depth_recorded(self):
        graph = cfg_of(
            """
            def f(items):
                for item in items:
                    for sub in item:
                        work(sub)
                done()
            """
        )
        depth = {
            ast.unparse(block.stmt).splitlines()[0]: block.loop_depth
            for block in graph.statement_blocks()
        }
        assert depth["work(sub)"] == 2
        assert depth["done()"] == 0

    def test_break_exits_loop(self):
        graph = cfg_of(
            """
            def f(items):
                for item in items:
                    break
                done()
            """
        )
        assert ("break", BREAK, "after-loop") in edges(graph)
