"""Self-tests for the flow-sensitive rules (R5-R7) and the CLI.

Snippet tests pin each rule's semantics (including the acceptance
criterion that R5 traverses exception edges: leaks that exist *only*
on a ``raise`` path must be caught); the planted fixtures under
``fixtures/flow/`` pin exact file/line/rule reporting; CLI tests cover
exit codes, output formats, ``--show-source``, the baseline workflow,
and the call-graph cache; the final tests assert the shipped tree
itself is R5-R7 clean.
"""

import json
import textwrap
from pathlib import Path

from repro.lint import main
from repro.lint.callgraph import build_callgraph
from repro.lint.flowrules import check_flow_source

REPO_ROOT = Path(__file__).resolve().parents[2]
FLOW = Path(__file__).resolve().parent / "fixtures" / "flow"


def flow_codes(source: str, rules: set[str]) -> list[tuple[int, str]]:
    """(line, rule) pairs found in a dedented snippet."""
    violations = check_flow_source(
        textwrap.dedent(source), "snippet.py", rules=rules
    )
    return [(v.line, v.rule) for v in violations]


def fixture_findings(name: str) -> list[tuple[int, str]]:
    path = FLOW / name
    source = path.read_text(encoding="utf-8")
    graph = build_callgraph({str(path): source})
    violations = check_flow_source(
        source, path, rules={"R5", "R6", "R7"}, graph=graph
    )
    return [(v.line, v.rule) for v in violations]


class TestR5ExceptionPaths:
    def test_leak_only_on_raise_path_is_caught(self):
        # The normal path is perfectly balanced; the reservation leaks
        # *only* if charge() raises between reserve and release.  The
        # analysis must walk the exception edge to see it.
        source = """
        def f(link, flow_id, bw, charge):
            link.reserve(flow_id, bw)
            charge(flow_id)
            link.release(flow_id)
        """
        assert flow_codes(source, {"R5"}) == [(3, "R5")]

    def test_release_in_finally_is_clean(self):
        source = """
        def f(link, flow_id, bw, charge):
            link.reserve(flow_id, bw)
            try:
                charge(flow_id)
            finally:
                link.release(flow_id)
        """
        assert flow_codes(source, {"R5"}) == []

    def test_release_in_catch_all_handler_is_clean(self):
        source = """
        def f(link, flow_id, bw, charge):
            link.reserve(flow_id, bw)
            try:
                charge(flow_id)
            except Exception:
                link.release(flow_id)
                raise
            link.release(flow_id)
        """
        assert flow_codes(source, {"R5"}) == []

    def test_leak_on_early_return(self):
        source = """
        def f(link, flow_id, bw, budget):
            link.reserve(flow_id, bw)
            if budget < 0:
                return None
            link.release(flow_id)
        """
        assert flow_codes(source, {"R5"}) == [(3, "R5")]

    def test_balanced_straight_line_flags_exception_span_only(self):
        # With no call between reserve and release, nothing can raise
        # while the token is held: clean.
        source = """
        def f(link, flow_id, bw):
            link.reserve(flow_id, bw)
            link.release(flow_id)
        """
        assert flow_codes(source, {"R5"}) == []

    def test_escape_via_call_argument_transfers_ownership(self):
        source = """
        def f(link, flow_id, bw, ledger):
            link.reserve(flow_id, bw)
            ledger.append(link)
        """
        assert flow_codes(source, {"R5"}) == []

    def test_reserve_named_function_exempt_at_normal_exit(self):
        # A constructor-style helper hands the held link to its caller.
        source = """
        def reserve_leg(link, flow_id, bw):
            link.reserve(flow_id, bw)
            return None
        """
        assert flow_codes(source, {"R5"}) == []

    def test_fragile_rollback_loop_flagged(self):
        source = """
        def f(links, flow_id):
            for link in links:
                link.release(flow_id)
        """
        assert flow_codes(source, {"R5"}) == [(4, "R5")]

    def test_guarded_rollback_loop_clean(self):
        source = """
        def f(links, flow_id):
            for link in links:
                if link.holds(flow_id):
                    link.release(flow_id)
        """
        assert flow_codes(source, {"R5"}) == []


class TestR6Discipline:
    def test_stream_minting_flagged(self):
        source = """
        def on_path(factory):
            return factory.stream("handler")
        """
        assert flow_codes(source, {"R6"}) == [(3, "R6")]

    def test_column_access_flagged(self):
        source = """
        def on_resv(state, index):
            return state.reserved[index]
        """
        assert flow_codes(source, {"R6"}) == [(3, "R6")]

    def test_schedule_at_flagged(self):
        source = """
        def on_resv(simulator, callback):
            simulator.schedule_at(0.5, callback)
        """
        assert flow_codes(source, {"R6"}) == [(3, "R6")]

    def test_constant_negative_delay_flagged(self):
        source = """
        def on_resv(simulator, callback):
            delay = 0.5
            delay = delay - 1.0
            simulator.schedule(delay, callback)
        """
        assert flow_codes(source, {"R6"}) == [(5, "R6")]

    def test_branch_dependent_delay_not_constant(self):
        # Join over the branches loses constancy: no finding.
        source = """
        def on_resv(simulator, callback, fast):
            if fast:
                delay = 0.1
            else:
                delay = 0.5
            simulator.schedule(delay, callback)
        """
        assert flow_codes(source, {"R6"}) == []

    def test_link_api_access_clean(self):
        source = """
        def on_resv(link, flow_id):
            return link.available_bps()
        """
        assert flow_codes(source, {"R6"}) == []


class TestR7PoolPurity:
    def check(self, source: str) -> list[tuple[int, str]]:
        text = textwrap.dedent(source)
        graph = build_callgraph({"src/repro/experiments/job.py": text})
        violations = check_flow_source(
            text,
            "src/repro/experiments/job.py",
            rules={"R7"},
            graph=graph,
        )
        return [(v.line, v.rule) for v in violations]

    def test_module_state_mutation_through_pool(self):
        source = """
        CACHE = {}

        def record(task):
            CACHE[task] = True
            return task

        def run(pool, tasks):
            return pool.map(record, tasks)
        """
        assert self.check(source) == [(9, "R7")]

    def test_transitive_impurity_found(self):
        # The impurity is one call-graph hop below the pooled callable.
        source = """
        import random

        def draw():
            return random.random()

        def jittered(task):
            return task + draw()

        def run(pool, tasks):
            return pool.map(jittered, tasks)
        """
        assert self.check(source) == [(11, "R7")]

    def test_lambda_across_boundary_flagged(self):
        source = """
        def run(pool, tasks):
            return pool.map(lambda t: t + 1, tasks)
        """
        assert self.check(source) == [(3, "R7")]

    def test_pure_chain_clean(self):
        source = """
        def double(task):
            return task * 2

        def run(pool, tasks):
            return pool.map(double, tasks)
        """
        assert self.check(source) == []


class TestPlantedFlowFixtures:
    def test_r5_leak_exact_findings(self):
        assert fixture_findings("r5_leak.py") == [
            (9, "R5"),
            (15, "R5"),
            (24, "R5"),
        ]

    def test_r6_leak_exact_findings(self):
        assert fixture_findings("r6_leak.py") == [
            (9, "R6"),
            (13, "R6"),
            (17, "R6"),
            (23, "R6"),
        ]

    def test_r7_leak_exact_findings(self):
        assert fixture_findings("r7_leak.py") == [
            (22, "R7"),
            (26, "R7"),
            (30, "R7"),
        ]

    def test_clean_fixtures_have_no_findings(self):
        for name in ("r5_clean.py", "r6_clean.py", "r7_clean.py"):
            assert fixture_findings(name) == [], name


class TestCli:
    def test_each_leaking_fixture_exits_one(self):
        for name in ("r5_leak.py", "r6_leak.py", "r7_leak.py"):
            assert main(["--select", "R5,R6,R7", str(FLOW / name)]) == 1, name

    def test_each_clean_fixture_exits_zero(self):
        for name in ("r5_clean.py", "r6_clean.py", "r7_clean.py"):
            assert main(["--select", "R5,R6,R7", str(FLOW / name)]) == 0, name

    def test_unknown_select_code_exits_two(self):
        assert main(["--select", "R99", str(FLOW)]) == 2

    def test_unknown_ignore_code_exits_two(self):
        assert main(["--ignore", "bogus", str(FLOW)]) == 2

    def test_json_format_parses(self, capsys):
        assert main(
            ["--select", "R5", "--format", "json", str(FLOW / "r5_leak.py")]
        ) == 1
        findings = json.loads(capsys.readouterr().out)
        assert [(f["line"], f["rule"]) for f in findings] == [
            (9, "R5"),
            (15, "R5"),
            (24, "R5"),
        ]

    def test_sarif_format_parses(self, capsys):
        assert main(
            ["--select", "R6", "--format", "sarif", str(FLOW / "r6_leak.py")]
        ) == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["R6"] * 4
        assert {r["locations"][0]["physicalLocation"]["region"]["startLine"]
                for r in results} == {9, 13, 17, 23}
        driver_rules = {r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
        assert {"R1", "R5", "R6", "R7"} <= driver_rules

    def test_show_source_prints_snippet_and_caret(self, capsys):
        assert main(
            ["--select", "R5", "--show-source", str(FLOW / "r5_leak.py")]
        ) == 1
        out = capsys.readouterr().out
        assert "link.reserve(flow_id, bw)" in out
        assert "^" in out

    def test_baseline_workflow(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        fixture = str(FLOW / "r5_leak.py")
        # Record the current findings...
        assert main(
            ["--select", "R5", "--baseline", str(baseline), "--update-baseline",
             fixture]
        ) == 0
        recorded = json.loads(baseline.read_text(encoding="utf-8"))
        assert len(recorded["findings"]) == 3
        # ...after which the same findings are hidden and the run is clean.
        capsys.readouterr()
        assert main(
            ["--select", "R5", "--baseline", str(baseline), fixture]
        ) == 0
        assert "3 baselined findings hidden" in capsys.readouterr().err
        # A new finding (different rule set) still fails the gate.
        assert main(
            ["--select", "R5,R6", "--baseline", str(baseline),
             fixture, str(FLOW / "r6_leak.py")]
        ) == 1

    def test_update_baseline_requires_baseline(self):
        assert main(["--update-baseline", str(FLOW / "r5_clean.py")]) == 2

    def test_callgraph_cache_round_trip(self, tmp_path):
        cache = tmp_path / "callgraph.json"
        fixture = str(FLOW / "r7_leak.py")
        assert main(
            ["--select", "R7", "--callgraph-cache", str(cache), fixture]
        ) == 1
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        # Second run reuses the cache (identical digests) and agrees.
        before = cache.read_text(encoding="utf-8")
        assert main(
            ["--select", "R7", "--callgraph-cache", str(cache), fixture]
        ) == 1
        assert cache.read_text(encoding="utf-8") == before


class TestShippedTreeIsFlowClean:
    def test_flow_rules_pass_on_src(self):
        assert main(["--select", "R5,R6,R7", str(REPO_ROOT / "src" / "repro")]) == 0

    def test_committed_baseline_is_empty(self):
        # The shipped gate runs without suppressed debt: the committed
        # baseline must stay empty (delete entries as they are fixed).
        baseline = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text(encoding="utf-8")
        )
        assert baseline == {"version": 1, "findings": []}
