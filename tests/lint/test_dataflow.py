"""Unit tests for the worklist dataflow engine (repro.lint.dataflow)."""

import ast
import textwrap

import pytest

from repro.lint.cfg import build_cfg, iter_function_defs
from repro.lint.dataflow import ForwardAnalysis, run_forward


def cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(iter_function_defs(tree)[0])


class TokenAnalysis(ForwardAnalysis):
    """A miniature R5-shaped analysis over frozensets of names.

    ``x.acquire()`` gains the token ``x``; ``x.drop()`` kills it.  The
    exception hook keeps the default (pre-state) so tests can observe
    the built-in semantics.
    """

    def initial(self):
        return frozenset()

    def join(self, left, right):
        return left | right

    def transfer(self, block, state):
        stmt = block.stmt
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and isinstance(stmt.value.func.value, ast.Name)
        ):
            owner = stmt.value.func.value.id
            if stmt.value.func.attr == "acquire":
                return state | {owner}
            if stmt.value.func.attr == "drop":
                return state - {owner}
        return state


class TestFixpoint:
    def test_branch_join_is_union(self):
        graph = cfg_of(
            """
            def f(flag, a, b):
                if flag:
                    a.acquire()
                else:
                    b.acquire()
                done = 1
            """
        )
        result = run_forward(graph, TokenAnalysis())
        assert result.exit_state == frozenset({"a", "b"})

    def test_loop_reaches_fixpoint(self):
        graph = cfg_of(
            """
            def f(items, a):
                for item in items:
                    a.acquire()
                done = 1
            """
        )
        result = run_forward(graph, TokenAnalysis())
        # Zero-iteration path joins with the acquiring path.
        assert result.exit_state == frozenset({"a"})

    def test_sequential_acquire_drop_balances(self):
        graph = cfg_of(
            """
            def f(a):
                a.acquire()
                a.drop()
            """
        )
        result = run_forward(graph, TokenAnalysis())
        assert result.exit_state == frozenset()

    def test_unreachable_block_has_no_state(self):
        graph = cfg_of(
            """
            def f(a):
                a.acquire()
            """
        )
        result = run_forward(graph, TokenAnalysis())
        # No statement can ever raise here if acquire were whitelisted;
        # it is not, so raise_exit IS reachable — but the exit of a
        # function with `while True: pass`-style dead blocks would not
        # be.  Exercise via an explicit early return.
        graph2 = cfg_of(
            """
            def f(a):
                return a
            """
        )
        result2 = run_forward(graph2, TokenAnalysis())
        assert result2.raise_state is None
        assert result.raise_state is not None


class TestExceptionEdges:
    def test_exception_edge_carries_pre_state_by_default(self):
        # a.acquire() can raise; on that edge the acquire has NOT
        # happened, so raise_exit must see the empty pre-state.
        graph = cfg_of(
            """
            def f(a):
                a.acquire()
                a.drop()
            """
        )
        result = run_forward(graph, TokenAnalysis())
        # raise paths: acquire's own raise (pre = {}) joined with
        # drop's raise (pre = {a}).
        assert result.raise_state == frozenset({"a"})

    def test_transfer_exception_override(self):
        class KillCommitting(TokenAnalysis):
            def transfer_exception(self, block, state):
                # Commit drops but not acquires (the R5 semantics).
                out = self.transfer(block, state)
                return state & out

        graph = cfg_of(
            """
            def f(a):
                a.acquire()
                a.drop()
            """
        )
        result = run_forward(graph, KillCommitting())
        # drop's exception edge now carries {} instead of {a}.
        assert result.raise_state == frozenset()


class TestConvergenceGuard:
    def test_non_monotone_transfer_raises(self):
        class Oscillating(ForwardAnalysis):
            def initial(self):
                return 0

            def join(self, left, right):
                return max(left, right)

            def transfer(self, block, state):
                return state + 1  # grows forever: never converges

        graph = cfg_of(
            """
            def f(items):
                while items:
                    work()
            """
        )
        with pytest.raises(RuntimeError, match="did not converge"):
            run_forward(graph, Oscillating(), max_passes=2)
