"""R7 counterpart fixture that must lint clean (for R7)."""


def double(task):
    return 2 * task


def helper(task):
    return double(task) + 1


def run_pure(pool, tasks):
    return pool.map(helper, tasks)
