"""R5 counterpart fixtures that must lint clean.

Every acquisition below is released on all paths, handed off, or
covered by a lease; the sweep is hold-guarded.
"""


def release_in_finally(link, flow_id, bw, charge):
    link.reserve(flow_id, bw)
    try:
        charge(flow_id)
    finally:
        link.release(flow_id)


def handoff_to_ledger(link, flow_id, bw, ledger):
    link.reserve(flow_id, bw)
    ledger.append(link)  # ownership transferred: the ledger releases


def lease_registered(link, flow_id, bw, leases):
    link.reserve(flow_id, bw)
    leases.register(flow_id, link)  # soft state collects orphans


def guarded_sweep(links, flow_id):
    for link in links:
        if link.holds(flow_id):
            link.release(flow_id)


def tolerant_sweep(links, flow_id):
    for link in links:
        link.release_if_held(flow_id)
