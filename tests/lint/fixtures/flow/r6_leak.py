"""Planted R6 violations: signaling-handler discipline breaches.

Linted (never imported) by ``tests/lint/test_flow_rules.py``; keep
line numbers stable when editing.
"""


def mints_stream(factory):
    return factory.stream("handler.jitter")  # line 9: R6 (stream minting)


def reads_column(state, index):
    return state.reserved[index]  # line 13: R6 (raw column access)


def absolute_schedule(simulator, callback):
    simulator.schedule_at(0.5, callback)  # line 17: R6 (absolute time)


def negative_constant_delay(simulator, callback):
    delay = 0.5
    delay = delay - 1.0
    simulator.schedule(delay, callback)  # line 23: R6 (delay == -0.5)
