"""Planted R7 violations: impure callables cross the pool boundary.

Linted (never imported) by ``tests/lint/test_flow_rules.py``; keep
line numbers stable when editing.
"""

import random

RESULTS_CACHE = {}


def record(task):
    RESULTS_CACHE[task] = True  # module-state mutation
    return task


def jittered(task):
    return task + random.random()  # unseeded draw


def run_mutating(pool, tasks):
    return pool.map(record, tasks)  # line 22: R7 (module state)


def run_random(pool, tasks):
    return pool.map(jittered, tasks)  # line 26: R7 (unseeded rng)


def run_lambda(pool, tasks):
    return pool.map(lambda t: t + 1, tasks)  # line 30: R7 (lambda)
