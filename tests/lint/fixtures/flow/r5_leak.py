"""Planted R5 violations: reservation leaks on unexecuted paths.

Linted (never imported) by ``tests/lint/test_flow_rules.py``; keep
line numbers stable when editing.
"""


def leak_on_exception_only(link, flow_id, bw, charge):
    link.reserve(flow_id, bw)  # line 9: R5 (leaks iff charge() raises)
    charge(flow_id)
    link.release(flow_id)


def leak_on_early_return(link, flow_id, bw, budget):
    link.reserve(flow_id, bw)  # line 15: R5 (held on the True branch exit)
    if budget < 0:
        return None
    link.release(flow_id)
    return budget


def fragile_rollback(links, flow_id):
    for link in links:
        link.release(flow_id)  # line 24: R5 (KeyError strands the rest)
