"""R6 counterpart fixtures that must lint clean."""


def uses_injected_stream(rng):
    return rng.uniform(0.0, 1.0)


def reads_through_link_api(link):
    return link.available_bps


def relative_schedule(simulator, link, callback):
    delay = link.propagation_delay_s + 0.001
    simulator.schedule(delay, callback)


def branch_kills_constancy(simulator, flag, callback):
    delay = 1.0
    if flag:
        delay = -1.0  # not constant at the call site: joined away
    else:
        delay = 2.0
    simulator.schedule(delay, callback)
