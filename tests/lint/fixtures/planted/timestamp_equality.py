"""Planted R4 violations: exact equality on simulation timestamps.

Linted (never imported) by ``tests/lint/test_rules.py``; keep line
numbers stable when editing.
"""


def same_instant(event_time: float, now: float) -> bool:
    return event_time == now  # line 9: R4 (== on timestamps)


def not_yet(arrival_time: float, deadline: float) -> bool:
    return arrival_time != deadline  # line 13: R4 (!= on timestamps)


def ordered(event_time: float, now: float) -> bool:
    return event_time <= now  # allowed: ordering comparison


def label_check(kind: str) -> bool:
    return kind == "time"  # allowed: string constant comparison
