"""Planted-but-suppressed violations: this file must lint clean.

Every breach below carries a ``repro-lint: disable`` comment, so
``tests/lint/test_rules.py`` asserts zero findings here.
"""

import random  # repro-lint: disable=R1


def jitter() -> float:
    return random.random()  # repro-lint: disable=R1


def same_instant(event_time: float, now: float) -> bool:
    return event_time == now  # repro-lint: disable=R4


def drain(values: list) -> list:
    pending = set(values)
    return [item for item in pending]  # repro-lint: disable=R2
