"""Planted R2 violations: iterating unordered sets.

Linted (never imported) by ``tests/lint/test_rules.py``; keep line
numbers stable when editing.
"""


def walk_literal() -> list[int]:
    out = []
    for item in {3, 1, 2}:  # line 10: R2 (set literal iteration)
        out.append(item)
    return out


def walk_bound(values: list[int]) -> list[int]:
    pending = set(values)
    return [item for item in pending]  # line 17: R2 (bound set iteration)


def materialize(values: list[int]) -> list[int]:
    return list(set(values))  # line 21: R2 (list() over a set)


def keys_view(mapping: dict[str, int]) -> list[str]:
    return [key for key in mapping.keys()]  # line 25: R2 (.keys() view)


def sorted_is_fine(values: list[int]) -> list[int]:
    return sorted(set(values))  # allowed: sorted() imposes an order
