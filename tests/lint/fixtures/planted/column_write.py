"""Planted R3 violations: direct LinkStateArrays column writes.

Linted (never imported) by ``tests/lint/test_rules.py``; keep line
numbers stable when editing.
"""


def over_reserve(state, index: int, amount: float) -> None:
    state.reserved[index] += amount  # line 9: R3 (column write)


def resize_capacity(state, index: int, value: float) -> None:
    state.capacity[index] = value  # line 13: R3 (column write)


def grow(state, value: float) -> None:
    state.capacity.append(value)  # line 17: R3 (column mutator)


def read_only(state, index: int) -> float:
    return state.capacity[index] - state.reserved[index]  # line 21: R6 only
