"""Planted R1 violations: unseeded randomness and wall-clock reads.

This file is linted by ``tests/lint/test_rules.py`` and never
imported; the expected (line, rule) pairs are asserted there, so keep
line numbers stable when editing.
"""

import random  # line 8: R1 (banned module import)
import time

from time import monotonic  # line 11: R1 (wall clock via from-import)


def jitter() -> float:
    return random.random()  # line 15: R1 (unseeded draw)


def stamp() -> float:
    return time.time()  # line 19: R1 (wall clock)


def elapsed() -> float:
    return monotonic()  # line 23: R1 (wall clock via bound name)


def duration() -> float:
    return time.perf_counter()  # allowed: host-side benchmarking clock
