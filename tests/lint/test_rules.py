"""Self-tests for the determinism linter (rules R1-R4).

Each rule gets at least one fixture snippet it must catch and one it
must allow; the planted-violation files under ``fixtures/planted/``
pin exact file/line/rule reporting; and the final test asserts the
shipped tree itself lints clean.
"""

from pathlib import Path


from repro.lint import lint_paths, main
from repro.lint.rules import ALL_RULES, check_source, rules_for_path

REPO_ROOT = Path(__file__).resolve().parents[2]
PLANTED = Path(__file__).resolve().parent / "fixtures" / "planted"


def codes(source: str, rules: set[str]) -> list[str]:
    """Rule codes found in ``source`` when only ``rules`` are active."""
    return [v.rule for v in check_source(source, "snippet.py", rules=rules)]


class TestR1Randomness:
    def test_catches_stdlib_random_import(self):
        assert codes("import random\n", {"R1"}) == ["R1"]

    def test_catches_unseeded_draw(self):
        source = "import random\nx = random.random()\n"
        assert codes(source, {"R1"}) == ["R1", "R1"]

    def test_catches_numpy_global_random(self):
        source = "import numpy\nx = numpy.random.rand()\n"
        assert codes(source, {"R1"}) == ["R1"]

    def test_catches_wall_clock(self):
        source = "import time\nnow = time.time()\n"
        assert codes(source, {"R1"}) == ["R1"]

    def test_catches_datetime_now(self):
        source = "import datetime\nnow = datetime.datetime.now()\n"
        assert codes(source, {"R1"}) == ["R1"]

    def test_allows_perf_counter(self):
        source = "import time\nelapsed = time.perf_counter()\n"
        assert codes(source, {"R1"}) == []

    def test_allows_seeded_streams(self):
        source = (
            "from repro.sim.random_streams import StreamFactory\n"
            "rng = StreamFactory(7).stream('arrivals')\n"
        )
        assert codes(source, {"R1"}) == []

    def test_allows_unrelated_attribute_chains(self):
        # 'random' as a *local* attribute is not the random module.
        source = "value = config.random.seed\n"
        assert codes(source, {"R1"}) == []


class TestR2SetIteration:
    def test_catches_for_over_set_literal(self):
        assert codes("for x in {1, 2}:\n    pass\n", {"R2"}) == ["R2"]

    def test_catches_comprehension_over_bound_set(self):
        source = "s = set(items)\nout = [x for x in s]\n"
        assert codes(source, {"R2"}) == ["R2"]

    def test_catches_list_of_set(self):
        assert codes("out = list({1, 2})\n", {"R2"}) == ["R2"]

    def test_catches_keys_iteration(self):
        source = "for k in mapping.keys():\n    pass\n"
        assert codes(source, {"R2"}) == ["R2"]

    def test_allows_sorted_set(self):
        assert codes("out = sorted({1, 2})\n", {"R2"}) == []

    def test_allows_membership_and_dict_iteration(self):
        source = "ok = 1 in {1, 2}\nfor k in mapping:\n    pass\n"
        assert codes(source, {"R2"}) == []

    def test_rebinding_to_list_clears_set_taint(self):
        source = "s = set(items)\ns = sorted(s)\nout = [x for x in s]\n"
        assert codes(source, {"R2"}) == []


class TestR3ColumnWrites:
    def test_catches_subscript_assignment(self):
        assert codes("state.reserved[i] = 0.0\n", {"R3"}) == ["R3"]

    def test_catches_augmented_assignment(self):
        assert codes("state.reserved[i] += amount\n", {"R3"}) == ["R3"]

    def test_catches_capacity_mutator(self):
        assert codes("state.capacity.append(1.0)\n", {"R3"}) == ["R3"]

    def test_allows_reads(self):
        source = "available = state.capacity[i] - state.reserved[i]\n"
        assert codes(source, {"R3"}) == []


class TestR4TimestampEquality:
    def test_catches_equality_on_time(self):
        assert codes("hit = event.time == now\n", {"R4"}) == ["R4"]

    def test_catches_inequality_on_suffixed_name(self):
        assert codes("miss = arrival_time != deadline\n", {"R4"}) == ["R4"]

    def test_allows_ordering(self):
        assert codes("due = event.time <= now\n", {"R4"}) == []

    def test_allows_string_comparisons(self):
        assert codes("named = kind == 'time'\n", {"R4"}) == []

    def test_allows_non_time_names(self):
        assert codes("same = count == total\n", {"R4"}) == []


class TestSuppressions:
    def test_disable_comment_suppresses_matching_rule(self):
        source = "hit = event.time == now  # repro-lint: disable=R4\n"
        assert check_source(source, "snippet.py", rules={"R4"}) == []

    def test_disable_comment_is_rule_specific(self):
        source = "hit = event.time == now  # repro-lint: disable=R1\n"
        assert codes(source, {"R4"}) == ["R4"]

    def test_disable_many_rules_on_one_line(self):
        source = (
            "import random  # repro-lint: disable=R1, R2\n"
        )
        assert check_source(source, "snippet.py", rules={"R1", "R2"}) == []

    def test_suppressed_fixture_file_is_clean(self):
        assert lint_paths([PLANTED / "suppressed_clean.py"]) == []


class TestPathScoping:
    def test_sim_modules_get_all_rules(self):
        assert rules_for_path("src/repro/sim/engine.py") == {
            "R1", "R2", "R3", "R4",
        }

    def test_network_modules_may_write_columns(self):
        assert "R3" not in rules_for_path("src/repro/network/link.py")

    def test_random_streams_module_may_use_numpy_random(self):
        assert "R1" not in rules_for_path("src/repro/sim/random_streams.py")

    def test_parallel_runner_is_order_critical(self):
        assert "R2" in rules_for_path("src/repro/experiments/parallel.py")

    def test_signaling_modules_are_order_critical(self):
        assert rules_for_path("src/repro/signaling/rsvp.py") == {
            "R1", "R2", "R3", "R4", "R5", "R6",
        }
        assert "R2" in rules_for_path("src/repro/signaling/softstate.py")

    def test_other_experiments_modules_skip_r2(self):
        assert "R2" not in rules_for_path("src/repro/experiments/runner.py")

    def test_reservation_pairing_scope(self):
        assert "R5" in rules_for_path("src/repro/network/topology.py")
        assert "R5" in rules_for_path("src/repro/signaling/softstate.py")
        assert "R5" in rules_for_path("src/repro/core/admission.py")
        assert "R5" not in rules_for_path("src/repro/core/reservation.py")
        assert "R5" not in rules_for_path("src/repro/sim/engine.py")

    def test_signaling_discipline_scope(self):
        assert "R6" in rules_for_path("src/repro/signaling/channel.py")
        assert "R6" not in rules_for_path("src/repro/signaling/softstate.py")
        assert "R6" not in rules_for_path("src/repro/network/link.py")

    def test_pool_purity_scope(self):
        assert "R7" in rules_for_path("src/repro/experiments/parallel.py")
        assert "R7" not in rules_for_path("src/repro/experiments/runner.py")

    def test_files_outside_repro_get_every_rule(self):
        assert rules_for_path("tests/lint/fixtures/planted/x.py") == set(
            ALL_RULES
        )


class TestPlantedFixtures:
    """The planted files must be reported with exact file/line/rule."""

    EXPECTED = {
        ("column_write.py", 9, "R3"),
        ("column_write.py", 13, "R3"),
        ("column_write.py", 17, "R3"),
        # Fixture files sit outside repro/, so they also get the
        # R6 column-access rule on top of R3's write-only check.
        ("column_write.py", 9, "R6"),
        ("column_write.py", 13, "R6"),
        ("column_write.py", 17, "R6"),
        ("column_write.py", 21, "R6"),
        ("set_iteration.py", 10, "R2"),
        ("set_iteration.py", 17, "R2"),
        ("set_iteration.py", 21, "R2"),
        ("set_iteration.py", 25, "R2"),
        ("timestamp_equality.py", 9, "R4"),
        ("timestamp_equality.py", 13, "R4"),
        ("uses_wall_clock.py", 8, "R1"),
        ("uses_wall_clock.py", 11, "R1"),
        ("uses_wall_clock.py", 15, "R1"),
        ("uses_wall_clock.py", 19, "R1"),
        ("uses_wall_clock.py", 23, "R1"),
    }

    def test_every_planted_violation_is_reported(self):
        found = {
            (Path(v.path).name, v.line, v.rule)
            for v in lint_paths([PLANTED])
        }
        assert found == self.EXPECTED


class TestCli:
    def test_violating_tree_exits_one(self, capsys):
        assert main([str(PLANTED)]) == 1
        captured = capsys.readouterr()
        assert "uses_wall_clock.py" in captured.out
        assert "R1" in captured.out
        assert "violation" in captured.err

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        assert capsys.readouterr().out == ""

    def test_missing_path_exits_two(self, capsys):
        assert main([str(PLANTED / "no_such_file.py")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ALL_RULES:
            assert code in out

    def test_syntax_error_is_reported_not_raised(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main([str(broken)]) == 1
        assert "E999" in capsys.readouterr().out


class TestShippedTreeIsClean:
    def test_src_repro_lints_clean(self):
        violations = lint_paths([REPO_ROOT / "src" / "repro"])
        assert violations == [], "\n".join(v.format() for v in violations)
