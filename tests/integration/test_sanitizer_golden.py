"""Golden determinism with the runtime sanitizer armed (slow tier).

The sanitizer (:mod:`repro.invariants`) must be purely observational:
with every invariant hook firing, the pinned golden results and the
serial-vs-parallel bit-identity contract must hold unchanged, on both
pending-event set implementations.
"""

import os

import pytest

import repro
from repro import invariants
from repro.core.system import SystemSpec
from repro.experiments.config import quick_config
from repro.experiments.runner import sweep

from tests.integration.test_determinism_golden import GOLDEN

pytestmark = pytest.mark.slow


@pytest.fixture
def sanitizer_everywhere(monkeypatch):
    """Arm the sanitizer here *and* in spawned worker processes."""
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    previous = invariants.is_enabled()
    invariants.set_enabled(True)
    yield
    invariants.set_enabled(previous)


@pytest.mark.parametrize("queue", ["heap", "calendar"])
@pytest.mark.parametrize("algorithm", sorted(GOLDEN))
def test_golden_results_survive_sanitizer(algorithm, queue, sanitizer_everywhere):
    result = repro.quick_run(
        algorithm,
        retrials=2,
        arrival_rate=25.0,
        warmup_s=50.0,
        measure_s=200.0,
        seed=20010405,
        queue=queue,
    )
    requests, admitted, mean_attempts = GOLDEN[algorithm]
    assert result.requests == requests
    assert result.admitted == admitted
    assert result.mean_attempts == pytest.approx(mean_attempts, abs=1e-12)


def test_parallel_sweep_matches_serial_under_sanitizer(sanitizer_everywhere):
    # Workers are separate processes; they pick the sanitizer up from
    # REPRO_CHECK_INVARIANTS in the inherited environment.
    assert os.environ["REPRO_CHECK_INVARIANTS"] == "1"
    specs = (SystemSpec("ED", retrials=2), SystemSpec("SP"))
    config = quick_config(seed=23).scaled(
        warmup_s=20.0, measure_s=80.0, replications=2, arrival_rates=(15.0, 40.0)
    )
    serial = sweep(specs, config, workers=1)
    parallel = sweep(specs, config, workers=2)
    assert parallel == serial
