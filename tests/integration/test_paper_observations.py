"""Integration tests asserting the paper's qualitative observations.

Section 5.2 draws several conclusions from Figures 3-7; these tests
verify each on scaled-down runs (short lifetimes, proportionally
raised arrival rates keep the offered loads at paper levels while
shrinking transients).  The benchmarks re-verify them at paper scale.
"""

import pytest

from repro.core.system import SystemSpec
from repro.experiments.config import quick_config
from repro.experiments.runner import run_point

pytestmark = pytest.mark.slow  # minutes-long simulations; skip with -m 'not slow'

#: Offered-load-preserving rescaling: lifetime 180 s -> 30 s, rates x6.
CONFIG = quick_config(seed=101).scaled(
    mean_lifetime_s=30.0, warmup_s=150.0, measure_s=450.0
)
HEAVY_RATE = 6.0 * 35.0  # the paper's lambda = 35 point
MODERATE_RATE = 6.0 * 20.0


@pytest.fixture(scope="module")
def heavy_results():
    """All systems at the heavy-load point, shared across tests."""
    specs = {
        "SP": SystemSpec("SP"),
        "<ED,1>": SystemSpec("ED", retrials=1),
        "<ED,2>": SystemSpec("ED", retrials=2),
        "<ED,3>": SystemSpec("ED", retrials=3),
        "<WD/D+H,2>": SystemSpec("WD/D+H", retrials=2),
        "<WD/D+B,2>": SystemSpec("WD/D+B", retrials=2),
        "GDI": SystemSpec("GDI"),
    }
    return {
        label: run_point(spec, HEAVY_RATE, CONFIG)
        for label, spec in specs.items()
    }


class TestObservationRetrials:
    """Figures 3-5, observations 1-2: AP increases with R, mostly 1->2."""

    def test_ap_increases_with_r(self, heavy_results):
        ap1 = heavy_results["<ED,1>"].admission_probability
        ap2 = heavy_results["<ED,2>"].admission_probability
        ap3 = heavy_results["<ED,3>"].admission_probability
        assert ap2 > ap1
        assert ap3 >= ap2 - 0.01

    def test_first_retrial_gives_biggest_jump(self, heavy_results):
        ap1 = heavy_results["<ED,1>"].admission_probability
        ap2 = heavy_results["<ED,2>"].admission_probability
        ap3 = heavy_results["<ED,3>"].admission_probability
        assert (ap2 - ap1) > (ap3 - ap2) - 0.01


class TestObservationOrdering:
    """Figure 6: SP < DAC systems < GDI under load."""

    def test_sp_is_worst(self, heavy_results):
        sp = heavy_results["SP"].admission_probability
        for label in ("<ED,2>", "<WD/D+H,2>", "<WD/D+B,2>", "GDI"):
            assert heavy_results[label].admission_probability > sp

    def test_gdi_is_best(self, heavy_results):
        gdi = heavy_results["GDI"].admission_probability
        for label in ("SP", "<ED,2>", "<WD/D+H,2>", "<WD/D+B,2>"):
            assert heavy_results[label].admission_probability <= gdi + 0.01

    def test_informed_selection_beats_blind(self, heavy_results):
        """WD/D+H and WD/D+B outperform ED (observation 2, Fig. 6)."""
        ed = heavy_results["<ED,2>"].admission_probability
        assert heavy_results["<WD/D+H,2>"].admission_probability > ed - 0.01
        assert heavy_results["<WD/D+B,2>"].admission_probability > ed - 0.01

    def test_dac_systems_close_to_gdi(self, heavy_results):
        """The paper's headline: local-information DAC approaches GDI."""
        gdi = heavy_results["GDI"].admission_probability
        best_dac = heavy_results["<WD/D+B,2>"].admission_probability
        assert gdi - best_dac < 0.15


class TestObservationOverhead:
    """Figure 7: retrial overhead ED > WD/D+H > WD/D+B."""

    def test_ed_has_most_retrials(self, heavy_results):
        ed = heavy_results["<ED,2>"].mean_retrials
        assert ed >= heavy_results["<WD/D+H,2>"].mean_retrials - 0.02
        assert ed >= heavy_results["<WD/D+B,2>"].mean_retrials - 0.02

    def test_bandwidth_information_minimizes_retrials(self, heavy_results):
        wddb = heavy_results["<WD/D+B,2>"].mean_retrials
        assert wddb <= heavy_results["<ED,2>"].mean_retrials + 0.02


class TestLightLoad:
    """Figure 6: at very low rates all systems perform equally (AP ~ 1)."""

    def test_everything_admits_at_light_load(self):
        light_rate = 6.0 * 5.0
        for algorithm in ("SP", "ED", "WD/D+H", "WD/D+B", "GDI"):
            point = run_point(SystemSpec(algorithm, retrials=2), light_rate, CONFIG)
            assert point.admission_probability > 0.995, algorithm
