"""Integration: the fixed-point analysis against the simulator.

The paper's Appendix A.3 validates its approximation assumptions by
comparing analytical and simulated admission probabilities.  These
tests do the same on several independent scenarios, including ones
the paper did not publish (retrials, distance weighting, other
topologies), exercising the extension documented in
``repro.analysis.admission``.
"""

import pytest

from repro.analysis.admission import analyze_system
from repro.core.system import SystemSpec
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import (
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    mci_backbone,
    nsfnet,
    star,
)
from repro.sim.simulation import run_simulation

pytestmark = pytest.mark.slow  # minutes-long simulations; skip with -m 'not slow'


def compare(network_factory, workload, spec, seed=55, tolerance=0.03):
    analysis = analyze_system(network_factory(), workload, spec)
    simulation = run_simulation(
        network_factory=network_factory,
        system_spec=spec,
        workload=workload,
        warmup_s=200.0,
        measure_s=800.0,
        seed=seed,
    )
    assert analysis.converged
    assert simulation.admission_probability == pytest.approx(
        analysis.admission_probability, abs=tolerance
    ), f"{spec.label}: sim={simulation.admission_probability:.4f} vs analysis={analysis.admission_probability:.4f}"
    return analysis, simulation


def mci_workload(rate_scale: float) -> WorkloadSpec:
    # Offered-load-preserving rescaling (lifetime 18 s = paper/10,
    # rates x10) keeps loads at paper levels with short transients.
    return WorkloadSpec(
        arrival_rate=rate_scale * 10.0,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        mean_lifetime_s=18.0,
    )


class TestEdSingleAttempt:
    @pytest.mark.parametrize("rate", [20.0, 35.0, 50.0])
    def test_matches_on_mci(self, rate):
        compare(mci_backbone, mci_workload(rate), SystemSpec("ED", retrials=1))


class TestSpBaseline:
    @pytest.mark.parametrize("rate", [20.0, 35.0])
    def test_matches_on_mci(self, rate):
        compare(mci_backbone, mci_workload(rate), SystemSpec("SP"))


class TestRetrialExtension:
    def test_ed_with_two_retrials(self):
        compare(
            mci_backbone,
            mci_workload(35.0),
            SystemSpec("ED", retrials=2),
            tolerance=0.04,
        )

    def test_mean_attempts_match(self):
        workload = mci_workload(35.0)
        spec = SystemSpec("ED", retrials=2)
        analysis = analyze_system(mci_backbone(), workload, spec)
        simulation = run_simulation(
            network_factory=mci_backbone,
            system_spec=spec,
            workload=workload,
            warmup_s=200.0,
            measure_s=800.0,
            seed=77,
        )
        assert simulation.mean_attempts == pytest.approx(
            analysis.mean_attempts, abs=0.1
        )


class TestDistanceWeightExtension:
    def test_wdd_matches(self):
        compare(
            mci_backbone,
            mci_workload(35.0),
            SystemSpec("WD/D", retrials=1),
            tolerance=0.04,
        )


class TestOtherTopologies:
    def test_nsfnet(self):
        workload = WorkloadSpec(
            arrival_rate=120.0,
            sources=(1, 3, 7, 11),
            group=AnycastGroup("A", (0, 5, 9)),
            mean_lifetime_s=18.0,
        )
        compare(nsfnet, workload, SystemSpec("ED", retrials=1), tolerance=0.04)

    def test_star_is_exact(self):
        """One-hop routes on a star: only Monte-Carlo noise remains.

        The model is exactly per-spoke Erlang-B here, so a long run
        must converge to the analytical value."""
        network_factory = lambda: star(4, capacity_bps=20 * 64_000.0)
        workload = WorkloadSpec(
            arrival_rate=4.0,
            sources=(0,),
            group=AnycastGroup("A", (1, 2, 3, 4)),
            mean_lifetime_s=18.0,
        )
        analysis = analyze_system(
            network_factory(), workload, SystemSpec("ED", retrials=1)
        )
        simulation = run_simulation(
            network_factory=network_factory,
            system_spec=SystemSpec("ED", retrials=1),
            workload=workload,
            warmup_s=200.0,
            measure_s=3000.0,
            seed=56,
        )
        assert simulation.admission_probability == pytest.approx(
            analysis.admission_probability, abs=0.02
        )
