"""Integration tests for simulation under link faults.

Exercises the paper's Section 3 extension: the fault-free assumption
is dropped, and the DAC procedure absorbs failures through its
ordinary retrial mechanism.
"""

import pytest

from repro.core.system import SystemSpec
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import MCI_GROUP_MEMBERS, MCI_SOURCES, mci_backbone
from repro.sim.simulation import AnycastSimulation, FaultConfig


def make_simulation(fault_config, seed=5, algorithm="WD/D+H", retrials=3):
    workload = WorkloadSpec(
        arrival_rate=30.0,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        mean_lifetime_s=30.0,
    )
    return AnycastSimulation(
        network_factory=mci_backbone,
        system_spec=SystemSpec(algorithm, retrials=retrials),
        workload=workload,
        warmup_s=100.0,
        measure_s=400.0,
        seed=seed,
        fault_config=fault_config,
    )


class TestFaultConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(mean_time_to_failure_s=0.0, mean_time_to_repair_s=1.0)
        with pytest.raises(ValueError):
            FaultConfig(mean_time_to_failure_s=1.0, mean_time_to_repair_s=-1.0)

    def test_gdi_rejected(self):
        with pytest.raises(ValueError):
            make_simulation(
                FaultConfig(100.0, 10.0), algorithm="GDI", retrials=1
            )


class TestSimulationUnderFaults:
    def test_system_survives_faults(self):
        simulation = make_simulation(
            FaultConfig(mean_time_to_failure_s=200.0, mean_time_to_repair_s=20.0)
        )
        result = simulation.run()
        assert result.requests > 0
        assert 0.0 < result.admission_probability <= 1.0
        assert simulation._fault_injector.failures_injected > 0

    def test_flows_dropped_are_counted_and_cleaned(self):
        simulation = make_simulation(
            FaultConfig(mean_time_to_failure_s=100.0, mean_time_to_repair_s=50.0)
        )
        simulation.run()
        assert simulation.flows_dropped_by_faults > 0
        # Drain every surviving flow and verify conservation.
        simulation.simulator.run()
        for flow_id, (flow, _) in list(simulation._active.items()):
            pass  # all departures drained above
        leaked = simulation.network.total_reserved_bps()
        assert leaked == pytest.approx(0.0)

    def test_faults_reduce_admission_probability(self):
        healthy = make_simulation(None, seed=9).run()
        faulty = make_simulation(
            FaultConfig(mean_time_to_failure_s=100.0, mean_time_to_repair_s=100.0),
            seed=9,
        ).run()
        assert faulty.admission_probability < healthy.admission_probability

    def test_retrials_mitigate_faults(self):
        """More retrials recover some of the fault-induced losses."""
        config = FaultConfig(
            mean_time_to_failure_s=150.0, mean_time_to_repair_s=75.0
        )
        single = make_simulation(config, seed=13, retrials=1).run()
        many = make_simulation(config, seed=13, retrials=5).run()
        assert many.admission_probability >= single.admission_probability - 0.01

    def test_no_oversubscription_during_fault_churn(self):
        simulation = make_simulation(
            FaultConfig(mean_time_to_failure_s=50.0, mean_time_to_repair_s=25.0)
        )
        simulation.run()
        for link in simulation.network.links():
            assert link.reserved_bps <= link.capacity_bps + 1e-6
