"""End-to-end integration tests across the whole stack."""

import pytest

import repro
from repro.core.system import SystemSpec
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import (
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    mci_backbone,
    nsfnet,
    waxman_random,
)
from repro.sim.simulation import run_simulation


class TestPublicApi:
    def test_quick_run_smoke(self):
        result = repro.quick_run(
            "WD/D+H", retrials=2, arrival_rate=20.0,
            warmup_s=50.0, measure_s=200.0, seed=1,
        )
        assert 0.0 < result.admission_probability <= 1.0
        assert result.system_label == "<WD/D+H,2>"

    def test_version_exposed(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestEverySystemRuns:
    @pytest.mark.parametrize(
        "algorithm", ["ED", "WD/D", "WD/D+H", "WD/D+B", "SP", "GDI"]
    )
    def test_system_end_to_end(self, algorithm):
        result = repro.quick_run(
            algorithm, retrials=2, arrival_rate=30.0,
            warmup_s=50.0, measure_s=150.0, seed=2,
        )
        assert result.requests > 0
        assert 0.0 <= result.admission_probability <= 1.0


class TestAlternativeTopologies:
    def test_nsfnet_workload(self):
        group = AnycastGroup("A", (0, 5, 9))
        workload = WorkloadSpec(
            arrival_rate=15.0,
            sources=(1, 3, 7, 11),
            group=group,
            mean_lifetime_s=60.0,
        )
        result = run_simulation(
            network_factory=nsfnet,
            system_spec=SystemSpec("WD/D+H", retrials=2),
            workload=workload,
            warmup_s=60.0,
            measure_s=240.0,
            seed=3,
        )
        assert 0.0 < result.admission_probability <= 1.0

    def test_random_topology_workload(self):
        network_factory = lambda: waxman_random(16, seed=5)
        network = network_factory()
        nodes = network.nodes()
        group = AnycastGroup("A", tuple(nodes[:3]))
        workload = WorkloadSpec(
            arrival_rate=10.0,
            sources=tuple(nodes[5:9]),
            group=group,
            mean_lifetime_s=60.0,
        )
        result = run_simulation(
            network_factory=network_factory,
            system_spec=SystemSpec("ED", retrials=2),
            workload=workload,
            warmup_s=60.0,
            measure_s=240.0,
            seed=4,
        )
        assert result.requests > 0


class TestUnicastDegenerateCase:
    def test_group_of_one_behaves_like_unicast(self):
        """K=1: every algorithm collapses to the same single-route system."""
        group = AnycastGroup("U", (8,))
        workload = WorkloadSpec(
            arrival_rate=20.0,
            sources=MCI_SOURCES,
            group=group,
            mean_lifetime_s=30.0,
        )
        results = {}
        for algorithm in ("ED", "WD/D+H", "WD/D+B", "SP"):
            results[algorithm] = run_simulation(
                network_factory=mci_backbone,
                system_spec=SystemSpec(algorithm, retrials=3),
                workload=workload,
                warmup_s=60.0,
                measure_s=240.0,
                seed=6,
            ).admission_probability
        baseline = results["SP"]
        for algorithm, ap in results.items():
            assert ap == pytest.approx(baseline, abs=1e-12), algorithm


class TestDelayQosExtension:
    def test_delay_bound_reduces_admissions(self):
        """Tighter delay QoS -> larger effective bandwidth -> lower AP."""
        from repro.flows.qos import QoSRequirement
        from repro.core.system import build_system
        from repro.flows.flow import FlowRequest
        from repro.sim.random_streams import StreamFactory

        group = AnycastGroup("A", MCI_GROUP_MEMBERS)
        network = mci_backbone(capacity_bps=10 * 64_000.0)
        system = build_system(
            SystemSpec("WD/D+H", retrials=2),
            network, MCI_SOURCES, group, StreamFactory(0),
        )
        # Resolve a delay bound against the longest fixed route (4 hops
        # covers every route in the MCI tables used here).  0.25 s over
        # 4 hops needs ~192 kbit/s under WFQ — three slots per link.
        tight = QoSRequirement(
            bandwidth_bps=64_000.0, delay_bound_s=0.25
        ).with_route(4, [100e6] * 4)
        assert tight.effective_bandwidth_bps > 64_000.0
        admitted = 0
        for flow_id in range(60):
            request = FlowRequest(
                flow_id=flow_id, source=1, group=group, qos=tight
            )
            if system.admit(request).admitted:
                admitted += 1
        # Effective bandwidth > one slot, so fewer than 60 requests of
        # the 10-slot links can be simultaneously admitted.
        assert 0 < admitted < 60
