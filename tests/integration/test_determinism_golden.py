"""Golden determinism regression test.

The library promises bit-for-bit reproducibility: identical configs
and seeds must produce identical results on any machine, forever.
These pinned values were computed once; any change to them means the
deterministic contract broke (a new draw inserted into a shared
stream, a changed iteration order, a different tie-break...) and must
be treated as a breaking change, not a test update.
"""

import pytest

import repro

#: (requests, admitted, mean_attempts) for seed 20010405, lambda=25,
#: warmup 50 s, measure 200 s on the default MCI setup with R=2.
GOLDEN = {
    "ED": (5165, 4593, 1.2391093901258472),
    "WD/D+H": (5165, 5089, 1.0315585672797707),
    "WD/D+B": (5165, 5156, 1.0029041626331057),
    "SP": (5165, 3774, 1.0),
    "GDI": (5165, 5165, 1.0),
}


@pytest.mark.parametrize("queue", ["heap", "calendar"])
@pytest.mark.parametrize("algorithm", sorted(GOLDEN))
def test_golden_results_are_stable(algorithm, queue):
    # Both pending-event set implementations must reproduce the same
    # pinned values: execution order is part of the contract.
    result = repro.quick_run(
        algorithm,
        retrials=2,
        arrival_rate=25.0,
        warmup_s=50.0,
        measure_s=200.0,
        seed=20010405,
        queue=queue,
    )
    requests, admitted, mean_attempts = GOLDEN[algorithm]
    assert result.requests == requests
    assert result.admitted == admitted
    assert result.mean_attempts == pytest.approx(mean_attempts, abs=1e-12)


def test_workload_identical_across_systems():
    """Common random numbers: every system sees the same arrivals."""
    request_counts = {
        algorithm: GOLDEN[algorithm][0] for algorithm in GOLDEN
    }
    assert len(set(request_counts.values())) == 1
