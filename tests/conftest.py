"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.flows.flow import FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import (
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    line,
    mci_backbone,
)
from repro.network.topology import Network
from repro.sim.engine import Simulator
from repro.sim.random_streams import StreamFactory


@pytest.fixture
def simulator() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> StreamFactory:
    return StreamFactory(12345)


@pytest.fixture
def mci() -> Network:
    return mci_backbone()


@pytest.fixture
def mci_group() -> AnycastGroup:
    return AnycastGroup("A", MCI_GROUP_MEMBERS)


@pytest.fixture
def mci_workload(mci_group) -> WorkloadSpec:
    return WorkloadSpec(
        arrival_rate=20.0, sources=MCI_SOURCES, group=mci_group
    )


@pytest.fixture
def tiny_network() -> Network:
    """A 4-node line 0-1-2-3 with 10 trunk slots of 64 kbit/s each."""
    return line(4, capacity_bps=10 * 64_000.0)


@pytest.fixture
def tiny_group() -> AnycastGroup:
    """Group at both ends reachable from node 1."""
    return AnycastGroup("G", (0, 3))


def make_request(
    flow_id: int = 0,
    source=1,
    group: AnycastGroup | None = None,
    bandwidth_bps: float = 64_000.0,
    arrival_time: float = 0.0,
    lifetime_s: float | None = 10.0,
) -> FlowRequest:
    """Build a flow request with small-network defaults."""
    return FlowRequest(
        flow_id=flow_id,
        source=source,
        group=group if group is not None else AnycastGroup("G", (0, 3)),
        qos=QoSRequirement(bandwidth_bps=bandwidth_bps),
        arrival_time=arrival_time,
        lifetime_s=lifetime_s,
    )
