"""Unit tests for the multirate reduced-load solver."""

import pytest

from repro.analysis.fixedpoint import ReducedLoadSolver, RouteLoad
from repro.analysis.multirate import TrafficClass, class_blocking
from repro.analysis.multirate_fixedpoint import (
    ClassedRouteLoad,
    MultirateReducedLoadSolver,
)


class TestClassedRouteLoad:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClassedRouteLoad(links=("a",), load_erlangs=-1.0, slots=1)
        with pytest.raises(ValueError):
            ClassedRouteLoad(links=("a",), load_erlangs=1.0, slots=0)
        with pytest.raises(ValueError):
            ClassedRouteLoad(links=("a", "a"), load_erlangs=1.0, slots=1)


class TestSolverConstruction:
    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            MultirateReducedLoadSolver(
                capacities={"a": 5},
                routes=[ClassedRouteLoad(links=("ghost",), load_erlangs=1.0, slots=1)],
            )

    def test_inconsistent_class_slots_rejected(self):
        with pytest.raises(ValueError):
            MultirateReducedLoadSolver(
                capacities={"a": 5},
                routes=[
                    ClassedRouteLoad(("a",), 1.0, 1, "x"),
                    ClassedRouteLoad(("a",), 1.0, 2, "x"),
                ],
            )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MultirateReducedLoadSolver({}, [], damping=0.0)
        with pytest.raises(ValueError):
            MultirateReducedLoadSolver({}, [], tolerance=0.0)


class TestDegenerateSingleRate:
    def test_matches_single_rate_solver(self):
        """One single-slot class must reproduce the Erlang fixed point."""
        capacities = {"a": 8, "b": 4}
        single = ReducedLoadSolver(
            capacities,
            [
                RouteLoad(links=("a", "b"), load_erlangs=5.0),
                RouteLoad(links=("a",), load_erlangs=2.0),
            ],
        ).solve()
        multi = MultirateReducedLoadSolver(
            capacities,
            [
                ClassedRouteLoad(("a", "b"), 5.0, 1, "only"),
                ClassedRouteLoad(("a",), 2.0, 1, "only"),
            ],
        ).solve()
        assert multi.converged
        for link in capacities:
            assert multi.link_class_blocking[link]["only"] == pytest.approx(
                single.link_blocking[link], abs=1e-7
            )

    def test_single_link_matches_kaufman_roberts(self):
        classes = [
            ClassedRouteLoad(("l",), 3.0, 1, "thin"),
            ClassedRouteLoad(("l",), 1.0, 4, "wide"),
        ]
        solution = MultirateReducedLoadSolver({"l": 12}, classes).solve()
        expected = class_blocking(
            12, [TrafficClass(3.0, 1, "thin"), TrafficClass(1.0, 4, "wide")]
        )
        assert solution.link_class_blocking["l"]["thin"] == pytest.approx(
            expected[0], abs=1e-9
        )
        assert solution.link_class_blocking["l"]["wide"] == pytest.approx(
            expected[1], abs=1e-9
        )


class TestMultirateProperties:
    def test_wide_class_blocks_more_on_every_link(self):
        capacities = {"a": 10, "b": 10}
        routes = [
            ClassedRouteLoad(("a", "b"), 2.0, 1, "thin"),
            ClassedRouteLoad(("a", "b"), 2.0, 4, "wide"),
        ]
        solution = MultirateReducedLoadSolver(capacities, routes).solve()
        assert solution.converged
        for link in capacities:
            blocking = solution.link_class_blocking[link]
            assert blocking["wide"] > blocking["thin"]

    def test_route_rejection_per_class(self):
        capacities = {"a": 10, "b": 10}
        routes = [
            ClassedRouteLoad(("a", "b"), 3.0, 1, "thin"),
            ClassedRouteLoad(("a", "b"), 1.5, 4, "wide"),
        ]
        solution = MultirateReducedLoadSolver(capacities, routes).solve()
        thin = solution.route_rejection(("a", "b"), "thin")
        wide = solution.route_rejection(("a", "b"), "wide")
        assert 0.0 < thin < wide < 1.0

    def test_converges_under_overload(self):
        routes = [
            ClassedRouteLoad(("a", "b", "c"), 100.0, 1, "thin"),
            ClassedRouteLoad(("a", "b", "c"), 50.0, 5, "wide"),
        ]
        solution = MultirateReducedLoadSolver(
            {"a": 20, "b": 20, "c": 20}, routes
        ).solve()
        assert solution.converged
        for per_class in solution.link_class_blocking.values():
            for value in per_class.values():
                assert 0.0 <= value <= 1.0


class TestAgainstSimulation:
    def test_two_class_network_matches_simulation(self):
        """Mixed classes on the MCI backbone: analysis vs simulation.

        Uses <ED,1> so the attempt distribution is just the uniform
        weight split, per class.
        """
        from repro.flows.group import AnycastGroup
        from repro.flows.traffic import TrafficModel, WorkloadSpec
        from repro.core.system import SystemSpec
        from repro.network.routing import RouteTable
        from repro.network.topologies import (
            MCI_GROUP_MEMBERS,
            MCI_SOURCES,
            mci_backbone,
        )
        from repro.sim.simulation import AnycastSimulation
        from repro.sim.random_streams import StreamFactory
        from repro.sim.trace import TraceRecorder

        slot = 64_000.0
        mix = ((slot, 0.8), (4 * slot, 0.2))
        arrival_rate, lifetime = 120.0, 18.0  # paper load at lambda=12/s scale
        group = AnycastGroup("A", MCI_GROUP_MEMBERS)
        workload = WorkloadSpec(
            arrival_rate=arrival_rate,
            sources=MCI_SOURCES,
            group=group,
            mean_lifetime_s=lifetime,
            bandwidth_classes=mix,
        )

        # ---- analysis ------------------------------------------------
        network = mci_backbone()
        capacities = {
            (l.source, l.target): int(l.capacity_bps // slot)
            for l in network.links()
        }
        routes = []
        per_source = arrival_rate / len(MCI_SOURCES) * lifetime
        for source in MCI_SOURCES:
            table = RouteTable(network, source, group.members)
            for route in table.routes():
                links = tuple(zip(route.path, route.path[1:]))
                for name, slots, share in (("thin", 1, 0.8), ("wide", 4, 0.2)):
                    routes.append(
                        ClassedRouteLoad(
                            links,
                            per_source * share / group.size,
                            slots,
                            name,
                        )
                    )
        solution = MultirateReducedLoadSolver(capacities, routes).solve()
        assert solution.converged

        # Expected AP per class: average route acceptance over sources.
        def analytic_ap(class_name):
            total = 0.0
            for source in MCI_SOURCES:
                table = RouteTable(network, source, group.members)
                for route in table.routes():
                    links = tuple(zip(route.path, route.path[1:]))
                    total += (
                        1.0 - solution.route_rejection(links, class_name)
                    ) / (len(MCI_SOURCES) * group.size)
            return total

        # ---- simulation ----------------------------------------------
        trace = TraceRecorder()
        simulation = AnycastSimulation(
            network_factory=mci_backbone,
            system_spec=SystemSpec("ED", retrials=1),
            workload=workload,
            warmup_s=150.0,
            measure_s=600.0,
            seed=23,
            trace=trace,
        )
        simulation.run()
        model = TrafficModel(workload, StreamFactory(23))
        max_flow_id = max(record.flow_id for record in trace)
        bandwidth_by_id = {}
        while model.generated_count <= max_flow_id:
            request = model.next_request()
            bandwidth_by_id[request.flow_id] = request.bandwidth_bps
        stats = {"thin": [0, 0], "wide": [0, 0]}  # [offered, admitted]
        for record in trace:
            name = "thin" if bandwidth_by_id[record.flow_id] == slot else "wide"
            stats[name][0] += 1
            stats[name][1] += 1 if record.admitted else 0
        for name in ("thin", "wide"):
            offered, admitted = stats[name]
            assert offered > 500
            assert admitted / offered == pytest.approx(
                analytic_ap(name), abs=0.05
            ), name
        # Wide flows must suffer more blocking.
        assert stats["wide"][1] / stats["wide"][0] <= (
            stats["thin"][1] / stats["thin"][0]
        )
