"""Unit tests for system-level AP analysis (repro.analysis.admission)."""

import pytest

from repro.analysis.admission import (
    ANALYZABLE_ALGORITHMS,
    _sequential_trial_model,
    analyze_system,
)
from repro.analysis.erlang import erlang_b, uaa_blocking
from repro.core.system import SystemSpec
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import (
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    mci_backbone,
    star,
)


def mci_workload(arrival_rate: float) -> WorkloadSpec:
    return WorkloadSpec(
        arrival_rate=arrival_rate,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
    )


class TestSequentialTrialModel:
    def test_single_attempt_matches_weights(self):
        model = _sequential_trial_model(
            weights=[0.5, 0.3, 0.2], rejections=[0.5, 0.5, 0.5], max_attempts=1
        )
        assert model.attempt_probability == pytest.approx((0.5, 0.3, 0.2))
        assert model.admission_probability == pytest.approx(0.5)
        assert model.mean_attempts == pytest.approx(1.0)

    def test_no_blocking_single_attempt_suffices(self):
        model = _sequential_trial_model(
            weights=[0.25] * 4, rejections=[0.0] * 4, max_attempts=4
        )
        assert model.admission_probability == pytest.approx(1.0)
        assert model.mean_attempts == pytest.approx(1.0)

    def test_total_blocking_exhausts_retries(self):
        model = _sequential_trial_model(
            weights=[0.5, 0.5], rejections=[1.0, 1.0], max_attempts=2
        )
        assert model.admission_probability == 0.0
        assert model.mean_attempts == pytest.approx(2.0)
        assert model.attempt_probability == pytest.approx((1.0, 1.0))

    def test_uniform_two_member_closed_form(self):
        # ED with K=2, R=2, rejections p, q:
        # AP = 1 - p*q (each order tries both on failure).
        p, q = 0.4, 0.7
        model = _sequential_trial_model(
            weights=[0.5, 0.5], rejections=[p, q], max_attempts=2
        )
        assert model.admission_probability == pytest.approx(1 - p * q)

    def test_zero_weight_member_never_attempted(self):
        model = _sequential_trial_model(
            weights=[1.0, 0.0], rejections=[1.0, 0.0], max_attempts=2
        )
        assert model.attempt_probability[1] == 0.0
        assert model.admission_probability == 0.0

    def test_attempt_probabilities_bounded(self):
        model = _sequential_trial_model(
            weights=[0.4, 0.3, 0.3],
            rejections=[0.9, 0.8, 0.7],
            max_attempts=3,
        )
        for probability in model.attempt_probability:
            assert 0.0 <= probability <= 1.0
        assert model.mean_attempts <= 3.0


class TestAnalyzeSystemStructure:
    def test_unsupported_algorithms_raise(self):
        network = mci_backbone()
        workload = mci_workload(20.0)
        for name in ("WD/D+H", "WD/D+B", "GDI"):
            with pytest.raises(NotImplementedError):
                analyze_system(network, workload, SystemSpec(name, retrials=2))

    def test_analyzable_list(self):
        assert set(ANALYZABLE_ALGORITHMS) == {"ED", "WD/D", "SP"}

    def test_large_group_rejected(self):
        network = star(10)
        workload = WorkloadSpec(
            arrival_rate=1.0,
            sources=(0,),
            group=AnycastGroup("A", tuple(range(1, 10))),
        )
        with pytest.raises(ValueError):
            analyze_system(network, workload, SystemSpec("ED"))

    def test_result_fields_populated(self):
        result = analyze_system(
            mci_backbone(), mci_workload(20.0), SystemSpec("ED", retrials=1)
        )
        assert result.converged
        assert 0.0 <= result.admission_probability <= 1.0
        assert result.mean_attempts == pytest.approx(1.0)
        assert len(result.per_source_ap) == len(MCI_SOURCES)
        assert len(result.route_rejection) == len(MCI_SOURCES) * 5
        assert all(0.0 <= b <= 1.0 for b in result.link_blocking.values())


class TestAnalyticProperties:
    def test_light_load_admits_everything(self):
        result = analyze_system(
            mci_backbone(), mci_workload(5.0), SystemSpec("ED", retrials=1)
        )
        assert result.admission_probability == pytest.approx(1.0, abs=1e-6)

    def test_ap_decreases_with_load(self):
        aps = [
            analyze_system(
                mci_backbone(), mci_workload(rate), SystemSpec("ED", retrials=1)
            ).admission_probability
            for rate in (10.0, 25.0, 40.0)
        ]
        assert aps == sorted(aps, reverse=True)

    def test_retrials_improve_ap(self):
        workload = mci_workload(35.0)
        network = mci_backbone()
        aps = [
            analyze_system(
                network, workload, SystemSpec("ED", retrials=r)
            ).admission_probability
            for r in (1, 2, 3)
        ]
        assert aps[0] < aps[1] < aps[2]

    def test_ed_beats_sp_under_load(self):
        workload = mci_workload(35.0)
        network = mci_backbone()
        ed = analyze_system(network, workload, SystemSpec("ED", retrials=1))
        sp = analyze_system(network, workload, SystemSpec("SP"))
        assert ed.admission_probability > sp.admission_probability

    def test_mean_attempts_grow_with_load(self):
        network = mci_backbone()
        light = analyze_system(
            network, mci_workload(10.0), SystemSpec("ED", retrials=3)
        )
        heavy = analyze_system(
            network, mci_workload(45.0), SystemSpec("ED", retrials=3)
        )
        assert heavy.mean_attempts > light.mean_attempts

    def test_uaa_matches_exact_erlang_closely(self):
        workload = mci_workload(35.0)
        network = mci_backbone()
        exact = analyze_system(
            network, workload, SystemSpec("ED", retrials=1), blocking_function=erlang_b
        )
        approx = analyze_system(
            network,
            workload,
            SystemSpec("ED", retrials=1),
            blocking_function=uaa_blocking,
        )
        assert approx.admission_probability == pytest.approx(
            exact.admission_probability, abs=0.005
        )

    def test_wdd_distance_bias_beats_ed_mean_attempts(self):
        # Distance weighting concentrates on short (cheap) routes; at
        # moderate load its expected attempts stay <= ED's.
        workload = mci_workload(30.0)
        network = mci_backbone()
        ed = analyze_system(network, workload, SystemSpec("ED", retrials=2))
        wdd = analyze_system(network, workload, SystemSpec("WD/D", retrials=2))
        assert 0.0 < wdd.admission_probability <= 1.0
        assert wdd.mean_attempts == pytest.approx(ed.mean_attempts, abs=0.5)


class TestStarExactness:
    def test_star_single_source_matches_erlang(self):
        """On a star, each spoke is an independent Erlang link; the
        analysis must be *exact* for <ED,1> (one-link routes from hub)."""
        capacity_slots = 10
        network = star(3, capacity_bps=capacity_slots * 64_000.0)
        group = AnycastGroup("A", (1, 2, 3))
        rate = 0.5
        lifetime = 60.0
        workload = WorkloadSpec(
            arrival_rate=rate,
            sources=(0,),
            group=group,
            mean_lifetime_s=lifetime,
        )
        result = analyze_system(network, workload, SystemSpec("ED", retrials=1))
        per_route_load = rate * lifetime / 3
        expected_blocking = erlang_b(per_route_load, capacity_slots)
        assert result.admission_probability == pytest.approx(
            1 - expected_blocking, abs=1e-9
        )
