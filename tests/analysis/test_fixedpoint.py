"""Unit tests for the reduced-load fixed point (repro.analysis.fixedpoint)."""

import warnings

import pytest

from repro.analysis.erlang import erlang_b, uaa_blocking
from repro.analysis.fixedpoint import FixedPointSolution, ReducedLoadSolver, RouteLoad


class TestRouteLoad:
    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            RouteLoad(links=(("a", "b"),), load_erlangs=-1.0)

    def test_repeated_link_rejected(self):
        with pytest.raises(ValueError):
            RouteLoad(links=(("a", "b"), ("a", "b")), load_erlangs=1.0)

    def test_empty_route_allowed(self):
        route = RouteLoad(links=(), load_erlangs=2.0)
        assert route.links == ()


class TestSingleLink:
    def test_reduces_to_erlang_b(self):
        # One route over one link: fixed point is plain Erlang-B.
        solver = ReducedLoadSolver(
            capacities={"l": 10},
            routes=[RouteLoad(links=("l",), load_erlangs=8.0)],
        )
        solution = solver.solve()
        assert solution.converged
        assert solution.link_blocking["l"] == pytest.approx(erlang_b(8.0, 10))

    def test_superposition_of_routes(self):
        # Two routes sharing a link add their loads.
        solver = ReducedLoadSolver(
            capacities={"l": 10},
            routes=[
                RouteLoad(links=("l",), load_erlangs=3.0),
                RouteLoad(links=("l",), load_erlangs=5.0),
            ],
        )
        solution = solver.solve()
        assert solution.link_blocking["l"] == pytest.approx(erlang_b(8.0, 10))

    def test_unloaded_link_never_blocks(self):
        solver = ReducedLoadSolver(
            capacities={"used": 5, "idle": 5},
            routes=[RouteLoad(links=("used",), load_erlangs=4.0)],
        )
        solution = solver.solve()
        assert solution.link_blocking["idle"] == 0.0


class TestTwoHopThinning:
    def test_thinning_reduces_downstream_load(self):
        # A two-link route: each link sees load thinned by the other.
        solver = ReducedLoadSolver(
            capacities={"a": 5, "b": 5},
            routes=[RouteLoad(links=("a", "b"), load_erlangs=6.0)],
        )
        solution = solver.solve()
        assert solution.converged
        blocking = solution.link_blocking
        # Symmetric system: both links identical.
        assert blocking["a"] == pytest.approx(blocking["b"])
        # Thinned load must be below the raw offered load.
        assert solution.link_load["a"] < 6.0
        # And blocking below single-link Erlang-B at the raw load.
        assert blocking["a"] < erlang_b(6.0, 5)

    def test_fixed_point_self_consistency(self):
        solver = ReducedLoadSolver(
            capacities={"a": 8, "b": 4},
            routes=[
                RouteLoad(links=("a", "b"), load_erlangs=5.0),
                RouteLoad(links=("a",), load_erlangs=2.0),
            ],
        )
        solution = solver.solve()
        assert solution.converged
        # Verify B_l == L(v_l, C_l) at the returned point.
        for link, capacity in (("a", 8), ("b", 4)):
            assert solution.link_blocking[link] == pytest.approx(
                erlang_b(solution.link_load[link], capacity), abs=1e-8
            )


class TestRouteRejection:
    def test_independence_formula(self):
        solution = FixedPointSolution(
            link_blocking={"a": 0.1, "b": 0.2},
            link_load={"a": 0.0, "b": 0.0},
            iterations=1,
            converged=True,
        )
        assert solution.route_rejection(("a", "b")) == pytest.approx(
            1 - 0.9 * 0.8
        )

    def test_empty_route_never_rejected(self):
        solution = FixedPointSolution(
            link_blocking={}, link_load={}, iterations=1, converged=True
        )
        assert solution.route_rejection(()) == 0.0


class TestValidation:
    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            ReducedLoadSolver(
                capacities={"a": 5},
                routes=[RouteLoad(links=("a", "ghost"), load_erlangs=1.0)],
            )

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReducedLoadSolver(capacities={"a": -1}, routes=[])

    def test_bad_damping_rejected(self):
        with pytest.raises(ValueError):
            ReducedLoadSolver(capacities={}, routes=[], damping=0.0)
        with pytest.raises(ValueError):
            ReducedLoadSolver(capacities={}, routes=[], damping=1.5)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            ReducedLoadSolver(capacities={}, routes=[], tolerance=0.0)

    def test_bad_initial_blocking_rejected(self):
        solver = ReducedLoadSolver(capacities={"a": 5}, routes=[])
        with pytest.raises(ValueError):
            solver.solve(initial_blocking=1.0)


class TestRobustness:
    def test_damping_values_agree_on_fixed_point(self):
        routes = [
            RouteLoad(links=("a", "b"), load_erlangs=9.0),
            RouteLoad(links=("b", "c"), load_erlangs=7.0),
        ]
        capacities = {"a": 8, "b": 8, "c": 8}
        strong = ReducedLoadSolver(capacities, routes, damping=0.3).solve()
        mild = ReducedLoadSolver(capacities, routes, damping=0.7).solve()
        for link in capacities:
            assert strong.link_blocking[link] == pytest.approx(
                mild.link_blocking[link], abs=1e-7
            )

    def test_uaa_blocking_function_plugs_in(self):
        routes = [RouteLoad(links=("a",), load_erlangs=250.0)]
        exact = ReducedLoadSolver({"a": 312}, routes).solve()
        approx = ReducedLoadSolver(
            {"a": 312}, routes, blocking_function=uaa_blocking
        ).solve()
        assert approx.link_blocking["a"] == pytest.approx(
            exact.link_blocking["a"], rel=0.01
        )

    def test_overloaded_network_converges(self):
        routes = [RouteLoad(links=("a", "b", "c"), load_erlangs=500.0)]
        solution = ReducedLoadSolver({"a": 50, "b": 50, "c": 50}, routes).solve()
        assert solution.converged
        for value in solution.link_blocking.values():
            assert 0.0 <= value <= 1.0


def _oscillating_solver(**overrides):
    """A heavily loaded multi-hop instance that 2-cycles undamped.

    Plain successive substitution (damping=1.0) alternates between a
    high- and a low-blocking iterate — the classic Erlang fixed-point
    oscillation — so it exhausts ``max_iterations`` without meeting
    the tolerance.
    """
    options = dict(damping=1.0, max_iterations=200)
    options.update(overrides)
    return ReducedLoadSolver(
        capacities={"a": 50, "b": 50, "c": 50},
        routes=[RouteLoad(links=("a", "b", "c"), load_erlangs=500.0)],
        **options,
    )


class TestConvergenceReporting:
    def test_oscillating_instance_warns(self):
        solver = _oscillating_solver()
        with pytest.warns(RuntimeWarning, match="did not converge"):
            solution = solver.solve()
        assert not solution.converged
        assert solution.iterations == solver.max_iterations
        # The last iterate is still a sane probability vector.
        for value in solution.link_blocking.values():
            assert 0.0 <= value <= 1.0

    def test_damping_rescues_oscillating_instance(self):
        solver = _oscillating_solver(damping=0.5, max_iterations=10_000)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            solution = solver.solve()
        assert solution.converged
        assert solution.iterations < solver.max_iterations

    def test_grid_warns_on_stuck_points(self):
        solver = _oscillating_solver()
        with pytest.warns(RuntimeWarning, match="did not converge"):
            solutions = solver.solve_grid([0.001, 1.0])
        # The light point converges; the oscillating one reports it.
        assert solutions[0].converged
        assert not solutions[1].converged


class TestSolveGrid:
    CAPACITIES = {"a": 8, "b": 4, "c": 6}
    ROUTES = [
        RouteLoad(links=("a", "b"), load_erlangs=5.0),
        RouteLoad(links=("b", "c"), load_erlangs=3.0),
        RouteLoad(links=("a",), load_erlangs=2.0),
        RouteLoad(links=(), load_erlangs=2.0),  # zero-hop, never blocked
    ]
    SCALES = [0.25, 0.5, 1.0, 2.0, 4.0]

    def _solver(self, **overrides):
        return ReducedLoadSolver(self.CAPACITIES, self.ROUTES, **overrides)

    def _reference(self, scale):
        scaled = [
            RouteLoad(links=r.links, load_erlangs=r.load_erlangs * scale)
            for r in self.ROUTES
        ]
        return ReducedLoadSolver(self.CAPACITIES, scaled).solve()

    def test_matches_scalar_solves(self):
        solutions = self._solver().solve_grid(self.SCALES)
        assert len(solutions) == len(self.SCALES)
        for scale, solution in zip(self.SCALES, solutions):
            reference = self._reference(scale)
            assert solution.converged == reference.converged
            assert solution.iterations == reference.iterations
            for link in self.CAPACITIES:
                assert solution.link_blocking[link] == pytest.approx(
                    reference.link_blocking[link], abs=1e-9
                )
                assert solution.link_load[link] == pytest.approx(
                    reference.link_load[link], abs=1e-9
                )

    def test_custom_blocking_function_grid(self):
        # Non-default blocking functions take the elementwise path.
        solver = ReducedLoadSolver(
            {"a": 312},
            [RouteLoad(links=("a",), load_erlangs=250.0)],
            blocking_function=uaa_blocking,
        )
        low, nominal = solver.solve_grid([0.5, 1.0])
        assert nominal.link_blocking["a"] == pytest.approx(
            solver.solve().link_blocking["a"], abs=1e-12
        )
        assert low.link_blocking["a"] < nominal.link_blocking["a"]

    def test_empty_grid(self):
        assert self._solver().solve_grid([]) == []

    def test_zero_scale_never_blocks(self):
        (solution,) = self._solver().solve_grid([0.0])
        assert solution.converged
        assert all(b == 0.0 for b in solution.link_blocking.values())

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            self._solver().solve_grid([1.0, -0.5])

    def test_bad_initial_blocking_rejected(self):
        with pytest.raises(ValueError):
            self._solver().solve_grid([1.0], initial_blocking=1.0)

    def test_no_links_degenerate(self):
        solutions = ReducedLoadSolver({}, []).solve_grid([1.0, 2.0])
        assert all(s.converged and s.link_blocking == {} for s in solutions)

    def test_python_fallback_matches_numpy(self, monkeypatch):
        import repro.analysis.fixedpoint as fixedpoint_module

        if fixedpoint_module._np is None:
            pytest.skip("numpy unavailable; only the fallback path exists")
        vectorized = self._solver().solve_grid(self.SCALES)
        monkeypatch.setattr(fixedpoint_module, "_np", None)
        fallback = self._solver().solve_grid(self.SCALES)
        for fast, slow in zip(vectorized, fallback):
            assert fast.converged == slow.converged
            assert fast.iterations == slow.iterations
            for link in self.CAPACITIES:
                assert fast.link_blocking[link] == pytest.approx(
                    slow.link_blocking[link], abs=1e-9
                )
