"""Unit tests for capacity planning (repro.analysis.planning)."""

import pytest

from repro.analysis.admission import analyze_system
from repro.analysis.planning import max_arrival_rate, required_capacity
from repro.core.system import SystemSpec
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import MCI_GROUP_MEMBERS, MCI_SOURCES, mci_backbone

pytestmark = pytest.mark.slow  # minutes-long simulations; skip with -m 'not slow'


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(
        arrival_rate=20.0,  # template; planning overrides the rate
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
    )


@pytest.fixture(scope="module")
def spec():
    return SystemSpec("ED", retrials=1)


class TestMaxArrivalRate:
    def test_boundary_rate_hits_target(self, workload, spec):
        network = mci_backbone()
        target = 0.9
        rate = max_arrival_rate(
            network, workload, spec, target_ap=target, rate_upper_bound=200.0
        )
        assert rate > 0
        from dataclasses import replace

        at_boundary = analyze_system(
            network, replace(workload, arrival_rate=rate), spec
        ).admission_probability
        assert at_boundary == pytest.approx(target, abs=0.01)

    def test_stricter_target_means_lower_rate(self, workload, spec):
        network = mci_backbone()
        loose = max_arrival_rate(network, workload, spec, 0.8, 200.0)
        strict = max_arrival_rate(network, workload, spec, 0.95, 200.0)
        assert strict < loose

    def test_trivial_target_saturates_bracket(self, workload, spec):
        network = mci_backbone(capacity_bps=1e12)
        rate = max_arrival_rate(network, workload, spec, 0.5, rate_upper_bound=50.0)
        assert rate == 50.0

    def test_validation(self, workload, spec):
        network = mci_backbone()
        with pytest.raises(ValueError):
            max_arrival_rate(network, workload, spec, target_ap=0.0)
        with pytest.raises(ValueError):
            max_arrival_rate(network, workload, spec, 0.9, rate_upper_bound=0.0)


class TestRequiredCapacity:
    def test_minimal_capacity_meets_target(self, workload, spec):
        builder = lambda capacity: mci_backbone(capacity_bps=capacity)
        target = 0.95
        slots = required_capacity(builder, workload, spec, target, max_slots=4000)
        network_ok = builder(slots * workload.bandwidth_bps)
        network_small = builder((slots - 1) * workload.bandwidth_bps)
        assert (
            analyze_system(network_ok, workload, spec).admission_probability
            >= target
        )
        assert (
            analyze_system(network_small, workload, spec).admission_probability
            < target
        )

    def test_higher_demand_needs_more_capacity(self, spec):
        builder = lambda capacity: mci_backbone(capacity_bps=capacity)
        group = AnycastGroup("A", MCI_GROUP_MEMBERS)
        light = WorkloadSpec(arrival_rate=10.0, sources=MCI_SOURCES, group=group)
        heavy = WorkloadSpec(arrival_rate=40.0, sources=MCI_SOURCES, group=group)
        assert required_capacity(
            builder, heavy, spec, 0.9, max_slots=4000
        ) > required_capacity(builder, light, spec, 0.9, max_slots=4000)

    def test_unreachable_target_raises(self, workload, spec):
        # Capacity can't fix a group member behind a zero-capacity cap.
        builder = lambda capacity: mci_backbone(capacity_bps=capacity)
        with pytest.raises(ValueError):
            required_capacity(builder, workload, spec, 0.99999999, max_slots=1)

    def test_validation(self, workload, spec):
        builder = lambda capacity: mci_backbone(capacity_bps=capacity)
        with pytest.raises(ValueError):
            required_capacity(builder, workload, spec, 1.5)
        with pytest.raises(ValueError):
            required_capacity(builder, workload, spec, 0.9, max_slots=0)
