"""Unit tests for the Kaufman-Roberts multirate analysis."""

import math

import pytest

from repro.analysis.erlang import erlang_b
from repro.analysis.multirate import (
    TrafficClass,
    analyze_link,
    class_blocking,
    occupancy_distribution,
    single_class_check,
)


class TestTrafficClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficClass(load_erlangs=-1.0, slots=1)
        with pytest.raises(ValueError):
            TrafficClass(load_erlangs=1.0, slots=0)


class TestOccupancyDistribution:
    def test_sums_to_one(self):
        classes = [TrafficClass(3.0, 1), TrafficClass(1.0, 4)]
        distribution = occupancy_distribution(20, classes)
        assert math.fsum(distribution) == pytest.approx(1.0)
        assert all(q >= 0 for q in distribution)

    def test_empty_link(self):
        distribution = occupancy_distribution(5, [])
        assert distribution == [1.0, 0.0, 0.0, 0.0, 0.0, 0.0]

    def test_zero_capacity(self):
        distribution = occupancy_distribution(0, [TrafficClass(2.0, 1)])
        assert distribution == [1.0]

    def test_single_class_matches_erlang_distribution(self):
        # With one single-slot class the occupancy is truncated Poisson.
        load, capacity = 4.0, 8
        distribution = occupancy_distribution(capacity, [TrafficClass(load, 1)])
        weights = [load**n / math.factorial(n) for n in range(capacity + 1)]
        total = sum(weights)
        for ours, expected in zip(distribution, weights):
            assert ours == pytest.approx(expected / total, rel=1e-9)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            occupancy_distribution(-1, [])


class TestClassBlocking:
    def test_single_class_equals_erlang_b(self):
        for load, capacity in ((2.0, 5), (8.0, 10), (300.0, 312)):
            assert single_class_check(capacity, load) == pytest.approx(
                erlang_b(load, capacity), rel=1e-9
            )

    def test_wider_class_blocks_more(self):
        classes = [TrafficClass(2.0, 1, "thin"), TrafficClass(2.0, 4, "wide")]
        thin, wide = class_blocking(12, classes)
        assert wide > thin

    def test_blocking_bounded(self):
        classes = [TrafficClass(100.0, 3), TrafficClass(50.0, 1)]
        for value in class_blocking(10, classes):
            assert 0.0 <= value <= 1.0

    def test_class_larger_than_link_always_blocked(self):
        classes = [TrafficClass(1.0, 8)]
        (blocked,) = class_blocking(5, classes)
        assert blocked == pytest.approx(1.0)

    def test_zero_load_classes_never_blocked_on_empty_link(self):
        classes = [TrafficClass(0.0, 2)]
        (blocked,) = class_blocking(10, classes)
        assert blocked == 0.0

    def test_monotone_in_background_load(self):
        """More background traffic can only hurt the foreground class."""
        def fg_blocking(background_load):
            classes = [
                TrafficClass(2.0, 1, "fg"),
                TrafficClass(background_load, 5, "bg"),
            ]
            return class_blocking(15, classes)[0]

        values = [fg_blocking(load) for load in (0.0, 1.0, 3.0, 6.0)]
        assert values == sorted(values)


class TestAnalyzeLink:
    def test_report_fields(self):
        classes = [TrafficClass(4.0, 1), TrafficClass(1.0, 3)]
        report = analyze_link(16, classes)
        assert report.capacity == 16
        assert len(report.blocking) == 2
        assert 0.0 < report.utilization < 1.0

    def test_utilization_tracks_load(self):
        light = analyze_link(20, [TrafficClass(2.0, 1)])
        heavy = analyze_link(20, [TrafficClass(15.0, 1)])
        assert heavy.utilization > light.utilization

    def test_carried_load_consistency(self):
        """Utilization equals carried load / capacity (single class)."""
        load, capacity = 12.0, 20
        report = analyze_link(capacity, [TrafficClass(load, 1)])
        carried = load * (1.0 - report.blocking[0])
        assert report.utilization == pytest.approx(carried / capacity, rel=1e-9)


class TestAgainstSimulation:
    def test_two_class_blocking_matches_simulation(self):
        """Cross-validate Kaufman-Roberts with a two-class loss sim."""
        from repro.sim.engine import Simulator
        from repro.sim.random_streams import StreamFactory

        capacity = 12
        classes = [TrafficClass(3.0, 1, "thin"), TrafficClass(1.2, 4, "wide")]
        expected = class_blocking(capacity, classes)

        sim = Simulator()
        streams = StreamFactory(99)
        state = {"used": 0}
        counts = {cls.name: [0, 0] for cls in classes}  # [offered, blocked]

        def arrival(cls: TrafficClass, rate: float):
            stream = streams.stream(f"arr.{cls.name}")
            hold = streams.stream(f"hold.{cls.name}")

            def handle():
                if sim.now > 500.0:
                    return
                counts[cls.name][0] += 1
                if state["used"] + cls.slots <= capacity:
                    state["used"] += cls.slots
                    sim.schedule(
                        hold.exponential(1.0),
                        lambda: state.__setitem__(
                            "used", state["used"] - cls.slots
                        ),
                    )
                else:
                    counts[cls.name][1] += 1
                sim.schedule(stream.exponential(1.0 / rate), handle)

            sim.schedule(stream.exponential(1.0 / rate), handle)

        for cls in classes:
            arrival(cls, cls.load_erlangs)  # mu = 1 => rate == load
        sim.run(until=500.0)

        for cls, expected_blocking in zip(classes, expected):
            offered, blocked = counts[cls.name]
            assert offered > 300
            assert blocked / offered == pytest.approx(
                expected_blocking, abs=0.05
            )
