"""Unit tests for Erlang-B and the UAA (repro.analysis.erlang)."""

import math

import pytest

from repro.analysis.erlang import erlang_b, erlang_b_inverse_load, uaa_blocking


class TestErlangB:
    def test_zero_load_never_blocks(self):
        assert erlang_b(0.0, 10) == 0.0

    def test_zero_capacity_always_blocks(self):
        assert erlang_b(5.0, 0) == 1.0
        assert erlang_b(0.0, 0) == 1.0

    def test_single_server_closed_form(self):
        # B(v, 1) = v / (1 + v).
        for load in (0.1, 1.0, 5.0):
            assert erlang_b(load, 1) == pytest.approx(load / (1 + load))

    def test_two_servers_closed_form(self):
        # B(v, 2) = v^2 / (2 + 2v + v^2).
        load = 3.0
        expected = load**2 / (2 + 2 * load + load**2)
        assert erlang_b(load, 2) == pytest.approx(expected)

    def test_direct_formula_small_case(self):
        # Compare against the direct sum for v=4, C=6.
        load, capacity = 4.0, 6
        numerator = load**capacity / math.factorial(capacity)
        denominator = sum(load**k / math.factorial(k) for k in range(capacity + 1))
        assert erlang_b(load, capacity) == pytest.approx(numerator / denominator)

    def test_monotonic_in_load(self):
        values = [erlang_b(v, 50) for v in (10.0, 30.0, 50.0, 70.0)]
        assert values == sorted(values)

    def test_monotonic_in_capacity(self):
        values = [erlang_b(40.0, c) for c in (10, 30, 50, 70)]
        assert values == sorted(values, reverse=True)

    def test_bounded_in_unit_interval(self):
        for load in (0.0, 1.0, 100.0, 10_000.0):
            for capacity in (1, 10, 312):
                assert 0.0 <= erlang_b(load, capacity) <= 1.0

    def test_heavy_traffic_limit(self):
        # As v -> inf, B -> 1 - C/v.
        assert erlang_b(1e6, 100) == pytest.approx(1 - 100 / 1e6, abs=1e-6)

    def test_stable_for_huge_capacity(self):
        value = erlang_b(90_000.0, 100_000)
        assert 0.0 <= value < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b(-1.0, 10)
        with pytest.raises(ValueError):
            erlang_b(1.0, -1)


class TestUaaBlocking:
    @pytest.mark.parametrize(
        "capacity,load",
        [
            (312, 100.0),
            (312, 250.0),
            (312, 350.0),
            (312, 500.0),
            (100, 50.0),
            (100, 130.0),
            (50, 40.0),
        ],
    )
    def test_close_to_exact_erlang_b(self, capacity, load):
        exact = erlang_b(load, capacity)
        approx = uaa_blocking(load, capacity)
        assert approx == pytest.approx(exact, rel=0.01, abs=1e-12)

    def test_critical_window_delegates_to_exact(self):
        capacity = 312
        load = float(capacity)  # z* == 1
        assert uaa_blocking(load, capacity) == erlang_b(load, capacity)

    def test_extreme_overload_delegates_to_exact(self):
        # Regression: at load/capacity ~ 7.3, F(z*) ~ -740 puts exp(F)
        # in the subnormal range where the M cancellation loses all
        # precision and the approximation clamped to 1.0 instead of
        # tracking the heavy-traffic limit 1 - C/v.
        assert uaa_blocking(1252.0, 171) == erlang_b(1252.0, 171)
        exact = erlang_b(1300.0, 150)
        assert uaa_blocking(1300.0, 150) == pytest.approx(exact, rel=1e-9)

    def test_zero_load(self):
        assert uaa_blocking(0.0, 312) == 0.0

    def test_bounded(self):
        for load in (1.0, 300.0, 3000.0):
            assert 0.0 <= uaa_blocking(load, 312) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            uaa_blocking(-1.0, 10)
        with pytest.raises(ValueError):
            uaa_blocking(1.0, 0)


class TestInverseLoad:
    def test_round_trip(self):
        load = erlang_b_inverse_load(50, 0.01)
        assert erlang_b(load, 50) == pytest.approx(0.01, rel=1e-6)

    def test_monotonic_in_target(self):
        low = erlang_b_inverse_load(50, 0.001)
        high = erlang_b_inverse_load(50, 0.1)
        assert high > low

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b_inverse_load(0, 0.01)
        with pytest.raises(ValueError):
            erlang_b_inverse_load(10, 0.0)
        with pytest.raises(ValueError):
            erlang_b_inverse_load(10, 1.0)
