"""Exact CTMC validation of the Kaufman-Roberts recursion.

For a single link shared by two Poisson classes under complete
sharing, the joint occupancy process (n1, n2) is a reversible CTMC
whose stationary distribution can be computed exactly by solving the
balance equations over the (small) truncated state space.  The
Kaufman-Roberts recursion must reproduce the *aggregate* occupancy
distribution and the per-class blocking probabilities exactly — a much
stronger check than the Monte-Carlo comparison elsewhere in the suite.
"""


import numpy as np
import pytest

from repro.analysis.multirate import (
    TrafficClass,
    class_blocking,
    occupancy_distribution,
)


def exact_two_class_distribution(capacity, load1, slots1, load2, slots2):
    """Stationary distribution of the exact joint CTMC.

    Classes have arrival rates a_k (mu_k = 1, so rate == load) and hold
    slots_k servers.  State (n1, n2) is feasible iff
    n1*slots1 + n2*slots2 <= capacity.
    """
    states = [
        (n1, n2)
        for n1 in range(capacity // slots1 + 1)
        for n2 in range(capacity // slots2 + 1)
        if n1 * slots1 + n2 * slots2 <= capacity
    ]
    index = {state: i for i, state in enumerate(states)}
    size = len(states)
    generator = np.zeros((size, size))
    for (n1, n2), i in index.items():
        # class-1 arrival
        if (n1 + 1) * slots1 + n2 * slots2 <= capacity:
            generator[i, index[(n1 + 1, n2)]] += load1
        # class-2 arrival
        if n1 * slots1 + (n2 + 1) * slots2 <= capacity:
            generator[i, index[(n1, n2 + 1)]] += load2
        # departures (mu = 1 per flow)
        if n1 > 0:
            generator[i, index[(n1 - 1, n2)]] += n1
        if n2 > 0:
            generator[i, index[(n1, n2 - 1)]] += n2
    np.fill_diagonal(generator, -generator.sum(axis=1))
    # Solve pi Q = 0 with normalization.
    a = np.vstack([generator.T, np.ones(size)])
    b = np.zeros(size + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    return states, pi


CASES = [
    # (capacity, load1, slots1, load2, slots2)
    (6, 1.5, 1, 0.8, 2),
    (10, 3.0, 1, 1.0, 4),
    (8, 2.0, 2, 2.0, 3),
    (12, 5.0, 1, 0.5, 6),
]


@pytest.mark.parametrize("capacity,load1,slots1,load2,slots2", CASES)
class TestExactAgreement:
    def test_aggregate_occupancy_matches(
        self, capacity, load1, slots1, load2, slots2
    ):
        states, pi = exact_two_class_distribution(
            capacity, load1, slots1, load2, slots2
        )
        kr = occupancy_distribution(
            capacity,
            [TrafficClass(load1, slots1), TrafficClass(load2, slots2)],
        )
        aggregate = np.zeros(capacity + 1)
        for (n1, n2), probability in zip(states, pi):
            aggregate[n1 * slots1 + n2 * slots2] += probability
        for n in range(capacity + 1):
            assert kr[n] == pytest.approx(aggregate[n], abs=1e-9), n

    def test_per_class_blocking_matches(
        self, capacity, load1, slots1, load2, slots2
    ):
        states, pi = exact_two_class_distribution(
            capacity, load1, slots1, load2, slots2
        )
        kr_block = class_blocking(
            capacity,
            [TrafficClass(load1, slots1), TrafficClass(load2, slots2)],
        )
        exact_block = [0.0, 0.0]
        for (n1, n2), probability in zip(states, pi):
            used = n1 * slots1 + n2 * slots2
            if used + slots1 > capacity:
                exact_block[0] += probability
            if used + slots2 > capacity:
                exact_block[1] += probability
        assert kr_block[0] == pytest.approx(exact_block[0], abs=1e-9)
        assert kr_block[1] == pytest.approx(exact_block[1], abs=1e-9)
