"""Unit tests for the on-disk result store (repro.experiments.store)."""

import pytest

from repro.core.system import SystemSpec
from repro.experiments.config import quick_config
from repro.experiments.runner import PointResult
from repro.experiments.store import ResultStore, _point_key


def make_point(label="<ED,2>", rate=20.0):
    return PointResult(
        system_label=label,
        arrival_rate=rate,
        replications=1,
        admission_probability=0.8,
        ap_ci_low=0.78,
        ap_ci_high=0.82,
        mean_retrials=0.3,
        mean_attempts=1.3,
        requests=500,
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "cache"))


@pytest.fixture
def config():
    return quick_config(seed=1)


SPEC = SystemSpec("ED", retrials=2)


class TestKeying:
    def test_same_inputs_same_key(self, config):
        assert _point_key(SPEC, 20.0, config) == _point_key(SPEC, 20.0, config)

    def test_rate_changes_key(self, config):
        assert _point_key(SPEC, 20.0, config) != _point_key(SPEC, 25.0, config)

    def test_spec_changes_key(self, config):
        other = SystemSpec("ED", retrials=3)
        assert _point_key(SPEC, 20.0, config) != _point_key(other, 20.0, config)

    def test_seed_changes_key(self, config):
        other = config.scaled(seed=2)
        assert _point_key(SPEC, 20.0, config) != _point_key(SPEC, 20.0, other)

    def test_alpha_changes_key(self, config):
        a = SystemSpec("WD/D+H", retrials=2, alpha=0.25)
        b = SystemSpec("WD/D+H", retrials=2, alpha=0.75)
        assert _point_key(a, 20.0, config) != _point_key(b, 20.0, config)


class TestRoundTrip:
    def test_put_then_get(self, store, config):
        point = make_point()
        store.put(SPEC, 20.0, config, point)
        loaded = store.get(SPEC, 20.0, config)
        assert loaded is not None
        assert loaded.admission_probability == point.admission_probability
        assert loaded.requests == point.requests
        assert loaded.system_label == point.system_label

    def test_missing_returns_none(self, store, config):
        assert store.get(SPEC, 20.0, config) is None

    def test_entry_count_and_clear(self, store, config):
        assert store.entry_count() == 0
        store.put(SPEC, 20.0, config, make_point())
        store.put(SPEC, 25.0, config, make_point(rate=25.0))
        assert store.entry_count() == 2
        store.clear()
        assert store.entry_count() == 0


class TestGetOrRun:
    def test_runs_once_then_caches(self, store, config):
        calls = []

        def fake_runner(spec, rate, cfg):
            calls.append((spec.label, rate))
            return make_point(spec.label, rate)

        first = store.get_or_run(SPEC, 20.0, config, runner=fake_runner)
        second = store.get_or_run(SPEC, 20.0, config, runner=fake_runner)
        assert calls == [("<ED,2>", 20.0)]
        assert store.hits == 1
        assert store.misses == 1
        assert first.admission_probability == second.admission_probability

    def test_different_points_run_separately(self, store, config):
        calls = []

        def fake_runner(spec, rate, cfg):
            calls.append(rate)
            return make_point(spec.label, rate)

        store.get_or_run(SPEC, 20.0, config, runner=fake_runner)
        store.get_or_run(SPEC, 25.0, config, runner=fake_runner)
        assert calls == [20.0, 25.0]

    def test_real_run_end_to_end(self, store):
        tiny = quick_config(seed=3).scaled(
            mean_lifetime_s=20.0, warmup_s=20.0, measure_s=60.0
        )
        first = store.get_or_run(SPEC, 60.0, tiny)
        second = store.get_or_run(SPEC, 60.0, tiny)
        assert store.hits == 1
        assert first.admission_probability == second.admission_probability
