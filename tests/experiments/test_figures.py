"""Tests for figure regeneration (repro.experiments.figures).

Uses a miniature configuration so the whole module runs in seconds;
the full-shape assertions live in benchmarks/.
"""

import pytest

from repro.experiments.config import quick_config
from repro.experiments.figures import (
    ALL_FIGURES,
    COMPARISON_SPECS,
    figure3,
    figure6,
    figure7,
)


@pytest.fixture(scope="module")
def mini_config():
    return quick_config(seed=21).scaled(
        warmup_s=20.0,
        measure_s=80.0,
        arrival_rates=(10.0, 40.0),
        retrial_limits=(1, 2),
    )


class TestSensitivityFigures:
    def test_figure3_structure(self, mini_config):
        result = figure3(mini_config)
        assert result.figure_id == "fig3"
        assert result.x_values == (10.0, 40.0)
        assert set(result.series) == {"<ED,1>", "<ED,2>"}
        for values in result.series.values():
            assert len(values) == 2
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_retrials_never_hurt(self, mini_config):
        result = figure3(mini_config)
        r1 = result.series_for("<ED,1>")
        r2 = result.series_for("<ED,2>")
        for ap1, ap2 in zip(r1, r2):
            assert ap2 >= ap1 - 0.02  # noise margin

    def test_render_contains_series(self, mini_config):
        text = figure3(mini_config).render()
        assert "FIG3" in text
        assert "<ED,2>" in text


class TestComparisonFigures:
    def test_figure6_includes_baselines(self, mini_config):
        result = figure6(mini_config)
        assert set(result.series) == {
            "SP",
            "<ED,2>",
            "<WD/D+H,2>",
            "<WD/D+B,2>",
            "GDI",
        }

    def test_comparison_specs_use_r2(self):
        for spec in COMPARISON_SPECS:
            if spec.algorithm not in ("SP", "GDI"):
                assert spec.retrials == 2

    def test_figure7_reports_retrials(self, mini_config):
        result = figure7(mini_config)
        assert set(result.series) == {"<ED,2>", "<WD/D+H,2>", "<WD/D+B,2>"}
        for values in result.series.values():
            # With R=2 the retrial count per request is in [0, 1].
            assert all(0.0 <= v <= 1.0 for v in values)


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(ALL_FIGURES) == {"fig3", "fig4", "fig5", "fig6", "fig7"}
