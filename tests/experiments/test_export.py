"""Unit tests for result export (repro.experiments.export)."""

import csv
import io
import json

import pytest

from repro.experiments.export import (
    figure_to_csv,
    figure_to_json,
    sweep_to_csv,
    table_to_csv,
    table_to_json,
)
from repro.experiments.figures import FigureResult
from repro.experiments.runner import PointResult, SweepResult
from repro.experiments.tables import TableResult


def make_point(label="<ED,2>", rate=20.0, ap=0.8):
    return PointResult(
        system_label=label,
        arrival_rate=rate,
        replications=2,
        admission_probability=ap,
        ap_ci_low=ap - 0.02,
        ap_ci_high=ap + 0.02,
        mean_retrials=0.3,
        mean_attempts=1.3,
        requests=1000,
    )


@pytest.fixture
def figure():
    sweep = SweepResult(
        system_label="<ED,2>",
        points=(make_point(rate=5.0, ap=1.0), make_point(rate=50.0, ap=0.5)),
    )
    return FigureResult(
        figure_id="fig6",
        title="test figure",
        x_values=(5.0, 50.0),
        series={"<ED,2>": [1.0, 0.5]},
        sweeps=(sweep,),
    )


@pytest.fixture
def table():
    return TableResult(
        table_id="tab1",
        system_label="<ED,1>",
        arrival_rates=(5.0, 50.0),
        analysis=(1.0, 0.49),
        simulation=(1.0, 0.5),
    )


class TestCsvExports:
    def test_figure_long_format(self, figure):
        text = figure_to_csv(figure)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["series", "arrival_rate", "value"]
        assert rows[1] == ["<ED,2>", "5", "1.000000"]
        assert rows[2] == ["<ED,2>", "50", "0.500000"]

    def test_table_rows(self, table):
        text = table_to_csv(table)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["method", "5", "50"]
        assert rows[1][0] == "analysis"
        assert rows[2][0] == "simulation"

    def test_sweep_full_detail(self, figure):
        text = sweep_to_csv(list(figure.sweeps))
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 3  # header + 2 points
        header = rows[0]
        assert "ap_ci_low" in header and "requests" in header
        assert rows[1][0] == "<ED,2>"

    def test_write_to_file(self, figure, tmp_path):
        path = tmp_path / "fig.csv"
        text = figure_to_csv(figure, str(path))
        assert path.read_text() == text


class TestJsonExports:
    def test_figure_json_structure(self, figure):
        payload = json.loads(figure_to_json(figure))
        assert payload["figure_id"] == "fig6"
        assert payload["series"]["<ED,2>"] == [1.0, 0.5]
        assert len(payload["points"]) == 2
        assert payload["points"][0]["ap_ci"] == [0.98, 1.02]

    def test_table_json_structure(self, table):
        payload = json.loads(table_to_json(table))
        assert payload["table_id"] == "tab1"
        assert payload["max_absolute_gap"] == pytest.approx(0.01)

    def test_json_to_file(self, table, tmp_path):
        path = tmp_path / "tab.json"
        text = table_to_json(table, str(path))
        assert json.loads(path.read_text()) == json.loads(text)
