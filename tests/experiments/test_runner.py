"""Unit tests for the experiment runner (repro.experiments.runner)."""

import pytest

from repro.core.system import SystemSpec
from repro.experiments.config import quick_config
from repro.experiments.runner import run_point, sweep


@pytest.fixture(scope="module")
def tiny_config():
    return quick_config(seed=11).scaled(
        warmup_s=20.0, measure_s=100.0, arrival_rates=(10.0, 40.0)
    )


class TestRunPoint:
    def test_basic_fields(self, tiny_config):
        point = run_point(SystemSpec("ED", retrials=2), 20.0, tiny_config)
        assert point.system_label == "<ED,2>"
        assert point.arrival_rate == 20.0
        assert 0.0 <= point.admission_probability <= 1.0
        assert point.ap_ci_low <= point.admission_probability <= point.ap_ci_high
        assert point.requests > 0
        assert len(point.runs) == tiny_config.replications

    def test_replications_aggregate(self, tiny_config):
        config = tiny_config.scaled(replications=3)
        point = run_point(SystemSpec("ED", retrials=1), 30.0, config)
        assert point.replications == 3
        assert len(point.runs) == 3
        aps = [run.admission_probability for run in point.runs]
        assert point.admission_probability == pytest.approx(sum(aps) / 3)

    def test_deterministic(self, tiny_config):
        a = run_point(SystemSpec("SP"), 30.0, tiny_config)
        b = run_point(SystemSpec("SP"), 30.0, tiny_config)
        assert a.admission_probability == b.admission_probability

    def test_str_contains_label(self, tiny_config):
        point = run_point(SystemSpec("SP"), 30.0, tiny_config)
        assert "SP" in str(point)


class TestSweep:
    def test_series_structure(self, tiny_config):
        results = sweep(
            [SystemSpec("ED", retrials=1), SystemSpec("SP")], tiny_config
        )
        assert [r.system_label for r in results] == ["<ED,1>", "SP"]
        for result in results:
            assert result.arrival_rates() == [10.0, 40.0]
            assert len(result.admission_probabilities()) == 2
            assert len(result.mean_retrials()) == 2

    def test_point_lookup(self, tiny_config):
        (result,) = sweep([SystemSpec("ED", retrials=1)], tiny_config)
        point = result.point_at(40.0)
        assert point.arrival_rate == 40.0
        with pytest.raises(KeyError):
            result.point_at(99.0)

    def test_explicit_rates_override_config(self, tiny_config):
        (result,) = sweep(
            [SystemSpec("ED", retrials=1)], tiny_config, arrival_rates=(15.0,)
        )
        assert result.arrival_rates() == [15.0]

    def test_common_random_numbers_across_systems(self, tiny_config):
        """Systems at the same replication share identical workloads."""
        ed, sp = sweep(
            [SystemSpec("ED", retrials=1), SystemSpec("SP")], tiny_config
        )
        # Same arrivals -> same request counts in the window.
        assert ed.point_at(10.0).requests == sp.point_at(10.0).requests
