"""Integration tests for the chaos scenario (repro.experiments.chaos).

Qualitative contract of the unreliable signalling plane: admission
degrades monotonically with loss, latency grows (timeouts + backoff),
orphans appear and are collected — and no bandwidth is ever leaked,
whatever the loss rate.
"""

import dataclasses

import pytest

from repro import invariants
from repro.core.system import SystemSpec
from repro.experiments.chaos import (
    ChaosConfig,
    ChaosSimulation,
    chaos_figure,
    chaos_sweep,
    run_chaos_point,
)
from repro.experiments.config import quick_config

LOSS_GRID = (0.0, 0.05, 0.2)


def small_config():
    return dataclasses.replace(quick_config(), warmup_s=20.0, measure_s=120.0)


@pytest.fixture(scope="module")
def ed_sweep():
    """One shared ED sweep over the loss grid (module-scoped: ~seconds)."""
    was_enabled = invariants.enabled
    invariants.set_enabled(True)
    try:
        return chaos_sweep(
            SystemSpec("ED", retrials=2),
            LOSS_GRID,
            small_config(),
            ChaosConfig(),
            arrival_rate=20.0,
        )
    finally:
        invariants.set_enabled(was_enabled)


class TestQualitativeDegradation:
    def test_blocking_monotone_in_loss(self, ed_sweep):
        blocking = [r.blocking_probability for r in ed_sweep]
        # Monotone up to small sampling noise, and strictly worse at
        # the high end than under perfect signalling.
        for lo, hi in zip(blocking, blocking[1:]):
            assert hi >= lo - 0.01
        assert blocking[-1] > blocking[0]

    def test_latency_grows_with_loss(self, ed_sweep):
        latency = [r.mean_admission_latency_s for r in ed_sweep]
        for lo, hi in zip(latency, latency[1:]):
            assert hi >= lo
        assert latency[-1] > 1.5 * latency[0]

    def test_retransmissions_and_timeouts_appear(self, ed_sweep):
        perfect, lossy = ed_sweep[0], ed_sweep[-1]
        assert perfect.retransmissions == 0
        assert perfect.timeouts == 0
        assert perfect.channel_dropped == 0
        assert lossy.retransmissions > 0
        assert lossy.channel_dropped > 0

    def test_zero_leaked_bandwidth_at_every_loss_rate(self, ed_sweep):
        for result in ed_sweep:
            assert result.leaked_bps == 0.0

    def test_orphans_collected_under_loss(self, ed_sweep):
        assert ed_sweep[0].orphans_collected == 0
        assert ed_sweep[-1].orphans_collected > 0
        assert ed_sweep[-1].reclaimed_bps > 0.0


class TestDeterminism:
    def test_same_seed_same_result(self):
        def run():
            return run_chaos_point(
                SystemSpec("ED", retrials=2),
                20.0,
                small_config(),
                ChaosConfig(loss_rate=0.1),
            )

        assert run() == run()

    def test_queue_implementations_agree(self):
        def run(queue):
            return run_chaos_point(
                SystemSpec("WD/D+B", retrials=2),
                20.0,
                small_config(),
                ChaosConfig(loss_rate=0.1),
                queue=queue,
            )

        assert run("heap") == run("calendar")


class TestConfigValidation:
    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            ChaosConfig(loss_rate=1.0)

    def test_refresh_must_beat_ttl(self):
        with pytest.raises(ValueError):
            ChaosConfig(lease_ttl_s=10.0, refresh_interval_s=10.0)

    def test_gdi_rejected(self):
        config = small_config()
        with pytest.raises(ValueError):
            ChaosSimulation(
                network_factory=config.network_factory(),
                system_spec=SystemSpec("GDI"),
                workload=config.workload(20.0),
                chaos=ChaosConfig(),
            )

    def test_single_use(self):
        config = small_config()
        simulation = ChaosSimulation(
            network_factory=config.network_factory(),
            system_spec=SystemSpec("ED", retrials=2),
            workload=config.workload(5.0),
            chaos=ChaosConfig(),
            warmup_s=1.0,
            measure_s=5.0,
        )
        simulation.run()
        with pytest.raises(RuntimeError):
            simulation.run()


class TestFigure:
    def test_figure_shape_and_render(self):
        config = dataclasses.replace(quick_config(), warmup_s=5.0, measure_s=30.0)
        result = chaos_figure(config, loss_rates=(0.0, 0.1))
        assert result.x_values == (0.0, 0.1)
        assert set(result.series) == {
            "<ED,2> blocking",
            "<ED,2> latency_ms",
            "<WD/D+B,2> blocking",
            "<WD/D+B,2> latency_ms",
        }
        for values in result.series.values():
            assert len(values) == 2
        rendered = result.render()
        assert "FIGCHAOS" in rendered
        assert "<ED,2> blocking" in rendered
