"""Determinism tests for the parallel runner (repro.experiments.parallel).

The contract under test: any ``workers`` count produces **bit-identical**
results to the serial runner — same seeds, same aggregation order, only
the execution substrate differs.
"""

import pytest

from repro.core.system import SystemSpec
from repro.experiments.config import quick_config
from repro.experiments.parallel import ParallelRunner, ReplicationTask, run_task
from repro.experiments.runner import run_point, run_replication, sweep

SPECS = (SystemSpec("ED", retrials=2), SystemSpec("SP"))


@pytest.fixture(scope="module")
def tiny_config():
    return quick_config(seed=23).scaled(
        warmup_s=20.0, measure_s=80.0, replications=2, arrival_rates=(15.0, 40.0)
    )


@pytest.fixture(scope="module")
def serial_sweep(tiny_config):
    return sweep(SPECS, tiny_config, workers=1)


class TestBitIdenticalResults:
    def test_parallel_sweep_matches_serial(self, tiny_config, serial_sweep):
        parallel = sweep(SPECS, tiny_config, workers=2)
        assert parallel == serial_sweep

    def test_parallel_run_point_matches_serial(self, tiny_config, serial_sweep):
        point = ParallelRunner(workers=2).run_point(SPECS[0], 40.0, tiny_config)
        assert point == serial_sweep[0].point_at(40.0)

    def test_config_workers_field_drives_run_point(self, tiny_config, serial_sweep):
        config = tiny_config.scaled(workers=2)
        point = run_point(SPECS[0], 15.0, config)
        assert point == serial_sweep[0].point_at(15.0)

    def test_single_worker_runner_is_in_process(self, tiny_config, serial_sweep):
        runner = ParallelRunner(workers=1)
        point = runner.run_point(SPECS[1], 15.0, tiny_config)
        assert point == serial_sweep[1].point_at(15.0)


class TestTaskPlumbing:
    def test_run_task_equals_run_replication(self, tiny_config):
        task = ReplicationTask(SPECS[0], 15.0, tiny_config, replication=1)
        assert run_task(task) == run_replication(SPECS[0], 15.0, tiny_config, 1)

    def test_tasks_are_picklable(self, tiny_config):
        import pickle

        task = ReplicationTask(SPECS[0], 15.0, tiny_config, replication=0)
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=0)
        with pytest.raises(ValueError):
            ParallelRunner(workers=2, chunksize=0)
