"""Tests for table regeneration (repro.experiments.tables)."""

import pytest

from repro.analysis.erlang import uaa_blocking
from repro.experiments.config import quick_config
from repro.experiments.tables import ALL_TABLES, table1, table2

pytestmark = pytest.mark.slow  # minutes-long simulations; skip with -m 'not slow'


# AP in a loss network depends on the offered load lambda/mu only, so
# the tests shrink lifetimes 6x and scale lambda up 6x: identical loads
# to the paper's grid, but the warm-up transient is 6x shorter.
_SCALED_RATES = tuple(6.0 * rate for rate in (5.0, 20.0, 35.0, 50.0))


@pytest.fixture(scope="module")
def mini_config():
    return quick_config(seed=31).scaled(
        mean_lifetime_s=30.0, warmup_s=150.0, measure_s=450.0
    )


@pytest.fixture(scope="module")
def tab1(mini_config):
    return table1(mini_config, arrival_rates=_SCALED_RATES)


@pytest.fixture(scope="module")
def tab2(mini_config):
    return table2(mini_config, arrival_rates=_SCALED_RATES)


class TestTable1:
    def test_structure(self, tab1):
        assert tab1.table_id == "tab1"
        assert tab1.system_label == "<ED,1>"
        assert tab1.arrival_rates == _SCALED_RATES
        assert len(tab1.analysis) == 4
        assert len(tab1.simulation) == 4

    def test_light_load_admits_everything(self, tab1):
        assert tab1.analysis[0] == pytest.approx(1.0, abs=1e-6)
        assert tab1.simulation[0] == pytest.approx(1.0, abs=0.01)

    def test_analysis_matches_simulation(self, tab1):
        # The paper's headline claim (Appendix A.3): near-identical.
        assert tab1.max_absolute_gap < 0.04

    def test_ap_decreases_with_load(self, tab1):
        assert list(tab1.analysis) == sorted(tab1.analysis, reverse=True)
        assert list(tab1.simulation) == sorted(tab1.simulation, reverse=True)

    def test_render(self, tab1):
        text = tab1.render()
        assert "Mathematical Analysis" in text
        assert "Computer Simulation" in text
        assert "lambda=300" in text


class TestTable2:
    def test_structure(self, tab2):
        assert tab2.system_label == "SP"

    def test_analysis_matches_simulation(self, tab2):
        assert tab2.max_absolute_gap < 0.04

    def test_sp_below_ed_under_load(self, tab1, tab2):
        # Paper Tables 1 vs 2: SP admits less at every loaded rate.
        for ed, sp in list(zip(tab1.analysis, tab2.analysis))[1:]:
            assert sp < ed


class TestUaaPathway:
    def test_uaa_blocking_function_accepted(self, mini_config):
        result = table1(
            mini_config,
            blocking_function=uaa_blocking,
            arrival_rates=_SCALED_RATES,
        )
        assert result.max_absolute_gap < 0.05


class TestRegistry:
    def test_all_tables_registered(self):
        assert set(ALL_TABLES) == {"tab1", "tab2"}
