"""Unit tests for congestion diagnostics (repro.experiments.diagnostics)."""

import pytest

from repro.experiments.diagnostics import (
    _gini,
    compare_congestion,
    congestion_report,
)
from repro.sim.metrics import SimulationResult


def make_result(link_utilization, label="<ED,2>"):
    return SimulationResult(
        system_label=label,
        arrival_rate=20.0,
        duration_s=100.0,
        warmup_s=10.0,
        requests=100,
        admitted=80,
        admission_probability=0.8,
        ap_ci_low=0.75,
        ap_ci_high=0.85,
        mean_attempts=1.2,
        mean_retrials=0.2,
        mean_active_flows=50.0,
        link_utilization=link_utilization,
    )


class TestGini:
    def test_equal_values_zero(self):
        assert _gini([0.5, 0.5, 0.5]) == pytest.approx(0.0)

    def test_single_funnel_near_one(self):
        # One link carries everything among many.
        values = [1.0] + [0.0] * 99
        assert _gini(values) == pytest.approx(0.99, abs=0.001)

    def test_empty_and_zero(self):
        assert _gini([]) == 0.0
        assert _gini([0.0, 0.0]) == 0.0

    def test_known_value(self):
        # Two values (0, 1): Gini = 0.5.
        assert _gini([0.0, 1.0]) == pytest.approx(0.5)


class TestCongestionReport:
    def test_hotspots_sorted_descending(self):
        report = congestion_report(
            make_result({(0, 1): 0.2, (1, 2): 0.9, (2, 3): 0.5})
        )
        utils = [h.utilization for h in report.hotspots]
        assert utils == sorted(utils, reverse=True)
        assert report.peak_utilization == 0.9
        assert report.mean_utilization == pytest.approx((0.2 + 0.9 + 0.5) / 3)

    def test_top_n(self):
        report = congestion_report(
            make_result({(0, 1): 0.2, (1, 2): 0.9, (2, 3): 0.5})
        )
        top = report.top(2)
        assert [h.link for h in top] == [(1, 2), (2, 3)]

    def test_empty_utilization_rejected(self):
        with pytest.raises(ValueError):
            congestion_report(make_result({}))

    def test_render_contains_links(self):
        report = congestion_report(make_result({(0, 1): 0.42}))
        text = report.render()
        assert "0->1" in text
        assert "42.0%" in text


class TestCompare:
    def test_comparison_table(self):
        a = congestion_report(make_result({(0, 1): 0.9, (1, 2): 0.1}, "SP"))
        b = congestion_report(
            make_result({(0, 1): 0.5, (1, 2): 0.5}, "<ED,2>")
        )
        text = compare_congestion([a, b])
        assert "SP" in text and "<ED,2>" in text
        assert a.gini > b.gini  # SP's funnel shows up


class TestEndToEnd:
    def test_sp_funnels_more_than_ed(self):
        """The paper's congestion argument, measured: SP's utilization
        distribution is more unequal than ED's on identical workloads."""
        import repro

        reports = []
        for algorithm in ("SP", "ED"):
            result = repro.quick_run(
                algorithm, retrials=2, arrival_rate=30.0,
                warmup_s=100.0, measure_s=300.0, seed=6,
            )
            reports.append(congestion_report(result))
        sp_report, ed_report = reports
        assert sp_report.gini > ed_report.gini
        assert sp_report.peak_utilization >= ed_report.peak_utilization - 0.02
