"""Unit tests for experiment configuration (repro.experiments.config)."""

import pytest

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_ARRIVAL_RATES,
    PAPER_RETRIAL_LIMITS,
    TABLE_ARRIVAL_RATES,
    paper_config,
    quick_config,
)
from repro.network.topologies import MCI_GROUP_MEMBERS, MCI_SOURCES


class TestPresets:
    def test_paper_defaults(self):
        config = paper_config()
        assert config.topology == "mci"
        assert config.sources == MCI_SOURCES
        assert config.group_members == MCI_GROUP_MEMBERS
        assert config.mean_lifetime_s == 180.0
        assert config.bandwidth_bps == 64_000.0
        assert config.arrival_rates == PAPER_ARRIVAL_RATES
        assert config.retrial_limits == PAPER_RETRIAL_LIMITS

    def test_quick_is_shorter(self):
        quick = quick_config()
        paper = paper_config()
        assert quick.measure_s < paper.measure_s
        assert quick.replications <= paper.replications
        assert quick.arrival_rates == TABLE_ARRIVAL_RATES

    def test_paper_grid_matches_tables(self):
        assert set(TABLE_ARRIVAL_RATES) <= set(PAPER_ARRIVAL_RATES)
        assert PAPER_RETRIAL_LIMITS == (1, 2, 3, 4, 5)


class TestValidation:
    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(topology="atlantis")

    def test_zero_replications_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(replications=0)


class TestHelpers:
    def test_network_factory_builds_fresh_instances(self):
        config = paper_config()
        a = config.network_factory()()
        b = config.network_factory()()
        assert a is not b
        assert a.node_count == b.node_count == 19

    def test_group_helper(self):
        group = paper_config().group()
        assert group.members == MCI_GROUP_MEMBERS

    def test_workload_helper(self):
        workload = paper_config().workload(25.0)
        assert workload.arrival_rate == 25.0
        assert workload.sources == MCI_SOURCES

    def test_scaled_copy(self):
        config = paper_config()
        scaled = config.scaled(measure_s=123.0, seed=9)
        assert scaled.measure_s == 123.0
        assert scaled.seed == 9
        assert scaled.topology == config.topology
        assert config.measure_s != 123.0  # original untouched


class TestWorkloadExtensionsPropagate:
    def test_source_weights_flow_into_workload(self):
        weights = tuple(float(i + 1) for i in range(9))
        config = ExperimentConfig(source_weights=weights)
        workload = config.workload(10.0)
        assert workload.source_weights == weights

    def test_bandwidth_classes_flow_into_workload(self):
        mix = ((64_000.0, 0.5), (128_000.0, 0.5))
        config = ExperimentConfig(bandwidth_classes=mix)
        workload = config.workload(10.0)
        assert workload.bandwidth_classes == mix

    def test_defaults_reproduce_paper(self):
        workload = ExperimentConfig().workload(10.0)
        assert workload.source_weights is None
        assert workload.bandwidth_classes is None
