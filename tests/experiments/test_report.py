"""Unit tests for text rendering (repro.experiments.report)."""

import pytest

from repro.experiments.report import ascii_plot, format_series_table, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", "1"], ["b", "22"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert "-----" in lines[2]
        # Columns aligned: 'value' column starts at same offset everywhere.
        assert lines[3].index("1") == lines[4].index("2")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_no_title(self):
        text = format_table(["h"], [["x"]])
        assert text.splitlines()[0] == "h"

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeriesTable:
    def test_renders_all_series(self):
        text = format_series_table(
            "system",
            [5.0, 20.0],
            {"<ED,2>": [1.0, 0.8], "SP": [1.0, 0.7]},
        )
        assert "<ED,2>" in text
        assert "SP" in text
        assert "0.8000" in text

    def test_precision(self):
        text = format_series_table("s", [1.0], {"x": [0.123456]}, precision=2)
        assert "0.12" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series_table("s", [1.0, 2.0], {"x": [0.5]})


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = ascii_plot(
            [0.0, 1.0, 2.0],
            {"up": [0.0, 0.5, 1.0], "down": [1.0, 0.5, 0.0]},
            width=20,
            height=5,
        )
        assert "*" in text
        assert "o" in text
        assert "up" in text and "down" in text

    def test_flat_series_handled(self):
        text = ascii_plot([0.0, 1.0], {"flat": [0.5, 0.5]}, width=10, height=3)
        assert "flat" in text

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([0.0], {})
