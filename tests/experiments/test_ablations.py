"""Tests for the ablation library (repro.experiments.ablations).

These run tiny configurations; the full-scale qualitative assertions
live in benchmarks/.
"""

import pytest

from repro.experiments.ablations import (
    alpha_sweep,
    group_size_sweep,
    information_decomposition,
    retrial_discipline,
    retrial_limit_sweep,
    staleness_sweep,
)
from repro.experiments.config import quick_config

pytestmark = pytest.mark.slow  # minutes-long simulations; skip with -m 'not slow'


@pytest.fixture(scope="module")
def tiny():
    return quick_config(seed=77).scaled(
        mean_lifetime_s=30.0, warmup_s=50.0, measure_s=150.0
    )


RATE = 150.0  # paper lambda=25 at the rescaled lifetime


class TestAlphaSweep:
    def test_structure(self, tiny):
        results = alpha_sweep(tiny, RATE, alphas=(0.0, 1.0))
        assert set(results) == {0.0, 1.0, "WD/D"}
        for point in results.values():
            assert 0.0 <= point.admission_probability <= 1.0

    def test_alpha_one_close_to_wdd(self, tiny):
        results = alpha_sweep(tiny, RATE, alphas=(1.0,))
        assert results[1.0].admission_probability == pytest.approx(
            results["WD/D"].admission_probability, abs=0.05
        )


class TestDecomposition:
    def test_all_algorithms_present(self, tiny):
        results = information_decomposition(tiny, RATE)
        assert set(results) == {"ED", "WD/D", "WD/D+H", "WD/D+B"}


class TestStalenessSweep:
    def test_structure(self, tiny):
        results = staleness_sweep(tiny, RATE, refresh_periods=(0.0, 30.0))
        assert set(results) == {0.0, 30.0, "WD/D"}

    def test_zero_period_is_live_wddb(self, tiny):
        from repro.core.system import SystemSpec
        from repro.experiments.runner import run_point

        sweep = staleness_sweep(tiny, RATE, refresh_periods=(0.0,))
        direct = run_point(SystemSpec("WD/D+B", retrials=2), RATE, tiny)
        assert sweep[0.0].admission_probability == pytest.approx(
            direct.admission_probability, abs=1e-12
        )


class TestRetrialDiscipline:
    def test_exclude_at_least_as_good(self, tiny):
        results = retrial_discipline(tiny, RATE)
        assert set(results) == {"exclude", "resample"}
        assert (
            results["exclude"].admission_probability
            >= results["resample"].admission_probability - 0.03
        )


class TestGroupSizeSweep:
    def test_structure(self, tiny):
        results = group_size_sweep(
            tiny, RATE, member_sets={1: (8,), 3: (8, 0, 16)}
        )
        assert set(results) == {1, 3}
        assert (
            results[3].admission_probability
            >= results[1].admission_probability - 0.05
        )


class TestRetrialLimitSweep:
    def test_defaults_use_config_grid(self, tiny):
        results = retrial_limit_sweep(tiny, RATE)
        assert set(results) == set(tiny.retrial_limits)

    def test_monotone_in_r(self, tiny):
        results = retrial_limit_sweep(tiny, RATE, limits=(1, 3))
        assert (
            results[3].admission_probability
            >= results[1].admission_probability - 0.02
        )
