"""Tests for the command-line interface (repro.experiments.cli)."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_run_subcommand(self, capsys):
        exit_code = main(
            ["run", "--quick", "--algorithm", "SP", "--rate", "10", "--seed", "3"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "SP" in out
        assert "AP=" in out

    def test_table_target(self, capsys, monkeypatch):
        # Shrink the quick config further for test speed.
        import repro.experiments.cli as cli_module
        from repro.experiments.config import quick_config

        original = cli_module.quick_config
        monkeypatch.setattr(
            cli_module,
            "quick_config",
            lambda seed: original(seed).scaled(warmup_s=20.0, measure_s=60.0),
        )
        assert main(["tab2", "--quick", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "TAB2" in out
        assert "analysis - simulation" in out

    def test_workers_flag_accepted(self, capsys):
        exit_code = main(
            [
                "run", "--quick", "--algorithm", "SP", "--rate", "10",
                "--seed", "3", "--workers", "2",
            ]
        )
        assert exit_code == 0
        assert "AP=" in capsys.readouterr().out

    def test_invalid_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--quick", "--workers", "0"])

    def test_invalid_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "MAGIC"])

    def test_ablation_target(self, capsys, monkeypatch):
        import repro.experiments.cli as cli_module

        original = cli_module.quick_config
        monkeypatch.setattr(
            cli_module,
            "quick_config",
            lambda seed: original(seed).scaled(
                mean_lifetime_s=30.0, warmup_s=30.0, measure_s=90.0
            ),
        )
        assert main(["ablation-retrial", "--quick", "--rate", "180"]) == 0
        out = capsys.readouterr().out
        assert "exclude" in out
        assert "resample" in out
