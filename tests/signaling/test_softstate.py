"""Unit tests for soft-state leases (repro.signaling.softstate)."""

import pytest

from repro import invariants
from repro.network.topologies import line
from repro.signaling.softstate import LeaseTable
from repro.sim.engine import Simulator


@pytest.fixture
def network():
    return line(4, capacity_bps=10 * 64_000.0)


def table(simulator, network, ttl=10.0, sweep=2.0):
    return LeaseTable(simulator, network, ttl_s=ttl, sweep_interval_s=sweep)


class TestLeaseLifecycle:
    def test_register_and_cover(self, simulator, network):
        leases = table(simulator, network)
        link = network.link(0, 1)
        leases.register("f", link)
        assert leases.covers("f", link)
        assert not leases.covers("f", network.link(1, 2))
        assert leases.live_leases() == 1

    def test_refresh_extends(self, simulator, network):
        leases = table(simulator, network, ttl=10.0, sweep=6.0)
        link = network.link(0, 1)
        link.reserve("f", 64_000.0)
        leases.register("f", link)
        # Keep refreshing past several TTLs: never collected.
        for _ in range(5):
            simulator.run(until=simulator.now + 5.0)
            assert leases.refresh("f")
        assert link.holds("f")
        assert leases.orphans_collected == 0

    def test_refresh_unknown_key(self, simulator, network):
        assert not table(simulator, network).refresh("ghost")

    def test_drop_link_removes_empty_lease(self, simulator, network):
        leases = table(simulator, network)
        a, b = network.link(0, 1), network.link(1, 2)
        leases.register("f", a)
        leases.register("f", b)
        leases.drop_link("f", a)
        assert not leases.covers("f", a)
        assert leases.covers("f", b)
        leases.drop_link("f", b)
        assert leases.live_leases() == 0


class TestOrphanCollection:
    def test_expired_lease_is_released(self, simulator, network):
        leases = table(simulator, network, ttl=10.0, sweep=2.0)
        for u, v in ((0, 1), (1, 2)):
            link = network.link(u, v)
            link.reserve("orphan", 64_000.0)
            leases.register("orphan", link)
        simulator.run(until=15.0)
        assert leases.orphans_collected == 1
        assert leases.reclaimed_bps == pytest.approx(2 * 64_000.0)
        assert network.total_reserved_bps() == 0.0

    def test_live_lease_survives_sweeps(self, simulator, network):
        leases = table(simulator, network, ttl=100.0, sweep=2.0)
        link = network.link(0, 1)
        link.reserve("f", 64_000.0)
        leases.register("f", link)
        simulator.run(until=50.0)
        assert link.holds("f")
        assert leases.orphans_collected == 0

    def test_collection_tolerates_already_released(self, simulator, network):
        """A fault/tear may free a leg before the lease expires."""
        leases = table(simulator, network, ttl=5.0, sweep=2.0)
        link = network.link(0, 1)
        link.reserve("f", 64_000.0)
        leases.register("f", link)
        link.release("f")  # someone else got there first
        simulator.run(until=10.0)
        assert leases.orphans_collected == 1
        assert leases.reclaimed_bps == 0.0

    def test_sweep_self_quiesces(self, simulator, network):
        leases = table(simulator, network, ttl=5.0, sweep=2.0)
        link = network.link(0, 1)
        link.reserve("f", 64_000.0)
        leases.register("f", link)
        simulator.run()  # unbounded drain must terminate
        assert simulator.peek() is None
        assert leases.orphans_collected == 1
        # A new registration re-arms the sweep.
        link.reserve("g", 64_000.0)
        leases.register("g", link)
        assert simulator.pending_count == 1
        simulator.run()
        assert simulator.peek() is None
        assert network.total_reserved_bps() == 0.0


class TestSoftStateInvariant:
    def test_sweep_checks_coverage_when_armed(self, simulator, network):
        was_enabled = invariants.enabled
        invariants.set_enabled(True)
        try:
            leases = table(simulator, network, ttl=5.0, sweep=2.0)
            link = network.link(0, 1)
            link.reserve("covered", 64_000.0)
            leases.register("covered", link)
            # A reservation the lease table never heard about: leaked.
            network.link(1, 2).reserve("rogue", 64_000.0)
            with pytest.raises(invariants.InvariantViolation):
                simulator.run(until=3.0)
        finally:
            invariants.set_enabled(was_enabled)

    def test_check_drained_flags_residue(self, network):
        network.link(0, 1).reserve("left-over", 64_000.0)
        with pytest.raises(invariants.InvariantViolation):
            invariants.check_drained(network)
        network.link(0, 1).release("left-over")
        invariants.check_drained(network)  # clean now


class TestValidation:
    def test_bad_ttl(self, simulator, network):
        with pytest.raises(ValueError):
            LeaseTable(simulator, network, ttl_s=0.0, sweep_interval_s=1.0)

    def test_bad_sweep(self, simulator, network):
        with pytest.raises(ValueError):
            LeaseTable(simulator, network, ttl_s=1.0, sweep_interval_s=0.0)
