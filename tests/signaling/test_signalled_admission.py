"""Tests for the signalling-driven DAC loop (repro.signaling.admission)."""

import pytest

from repro.core.retrial import CounterRetrialPolicy
from repro.core.selection import EvenDistribution, SelectionContext
from repro.flows.flow import FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement
from repro.network.routing import RouteTable
from repro.network.topologies import line, mci_backbone
from repro.signaling.admission import SignalledACRouter
from repro.sim.engine import Simulator
from repro.sim.random_streams import StreamFactory


def make_router(network, simulator, source=1, members=(0, 3), retrials=2, seed=7):
    group = AnycastGroup("G", members)
    routes = RouteTable(network, source, members)
    context = SelectionContext(network=network, routes=routes, group=group)
    return SignalledACRouter(
        simulator=simulator,
        network=network,
        source=source,
        group=group,
        selector=EvenDistribution(context),
        retrial_policy=CounterRetrialPolicy(retrials),
        rng=StreamFactory(seed).stream("router"),
    )


def make_request(flow_id=0, source=1, members=(0, 3)):
    return FlowRequest(
        flow_id=flow_id,
        source=source,
        group=AnycastGroup("G", members),
        qos=QoSRequirement(bandwidth_bps=64_000.0),
    )


def admit_sync(router, simulator, request):
    """Drive one admission to completion and return the outcome."""
    outcomes = []
    router.admit(request, outcomes.append)
    simulator.run()
    assert len(outcomes) == 1
    return outcomes[0]


class TestDecisions:
    def test_admission_with_latency_and_messages(self):
        network = line(4, capacity_bps=64_000.0, propagation_delay_s=0.001)
        simulator = Simulator()
        router = make_router(network, simulator)
        outcome = admit_sync(router, simulator, make_request())
        assert outcome.admitted
        assert outcome.latency_s > 0.0
        assert outcome.messages >= 2  # at least one hop out and back
        assert outcome.result.flow.admitted_at == outcome.result.decided_at

    def test_retrial_costs_extra_round_trip(self):
        network = line(4, capacity_bps=64_000.0, propagation_delay_s=0.001)
        simulator = Simulator()
        # Block the short route (toward 0) so a retrial is forced when
        # the first draw lands there.
        network.link(1, 0).reserve("blocker", 64_000.0)
        router = make_router(network, simulator, retrials=2, seed=3)
        latencies = []
        for flow_id in range(12):
            outcome = admit_sync(
                router, simulator, make_request(flow_id=flow_id)
            )
            if outcome.admitted:
                latencies.append((outcome.result.attempts, outcome.latency_s))
            router.release(outcome.result.flow) if outcome.admitted else None
        one_try = [lat for attempts, lat in latencies if attempts == 1]
        two_tries = [lat for attempts, lat in latencies if attempts == 2]
        assert one_try and two_tries
        assert min(two_tries) > max(one_try) * 0.9  # extra round trip

    def test_rejection_after_exhausting_retrials(self):
        network = line(4, capacity_bps=64_000.0)
        simulator = Simulator()
        network.link(1, 0).reserve("b1", 64_000.0)
        network.link(1, 2).reserve("b2", 64_000.0)
        router = make_router(network, simulator, retrials=2)
        outcome = admit_sync(router, simulator, make_request())
        assert not outcome.admitted
        assert outcome.result.attempts == 2
        assert set(outcome.result.tried) == {0, 3}

    def test_source_and_group_validation(self):
        network = line(4)
        simulator = Simulator()
        router = make_router(network, simulator)
        with pytest.raises(ValueError):
            router.admit(make_request(source=2), lambda o: None)
        with pytest.raises(ValueError):
            router.admit(make_request(members=(0,)), lambda o: None)

    def test_release_is_idempotent(self):
        network = line(4, capacity_bps=64_000.0)
        simulator = Simulator()
        router = make_router(network, simulator)
        outcome = admit_sync(router, simulator, make_request())
        router.release(outcome.result.flow)
        router.release(outcome.result.flow)
        assert network.total_reserved_bps() == 0.0


class TestEquivalenceWithAtomicRouter:
    def test_sequential_decisions_match_atomic_router(self):
        """With no signalling concurrency, decisions equal ACRouter's."""
        from repro.core.admission import ACRouter
        from repro.core.retrial import CounterRetrialPolicy

        members = (0, 4, 8, 12, 16)
        group = AnycastGroup("G", members)

        def build_atomic(network):
            routes = RouteTable(network, 9, members)
            context = SelectionContext(
                network=network, routes=routes, group=group
            )
            return ACRouter(
                network=network,
                source=9,
                group=group,
                selector=EvenDistribution(context),
                retrial_policy=CounterRetrialPolicy(2),
                rng=StreamFactory(42).stream("router"),
            )

        def build_signalled(network, simulator):
            routes = RouteTable(network, 9, members)
            context = SelectionContext(
                network=network, routes=routes, group=group
            )
            return SignalledACRouter(
                simulator=simulator,
                network=network,
                source=9,
                group=group,
                selector=EvenDistribution(context),
                retrial_policy=CounterRetrialPolicy(2),
                rng=StreamFactory(42).stream("router"),
            )

        atomic_network = mci_backbone(capacity_bps=3 * 64_000.0)
        signalled_network = mci_backbone(capacity_bps=3 * 64_000.0)
        atomic = build_atomic(atomic_network)
        simulator = Simulator()
        signalled = build_signalled(signalled_network, simulator)
        for flow_id in range(120):
            request = FlowRequest(
                flow_id=flow_id,
                source=9,
                group=group,
                qos=QoSRequirement(bandwidth_bps=64_000.0),
            )
            atomic_result = atomic.admit(request)
            signalled_outcome = admit_sync(signalled, simulator, request)
            assert signalled_outcome.admitted == atomic_result.admitted
            if atomic_result.admitted:
                assert (
                    signalled_outcome.result.flow.destination
                    == atomic_result.flow.destination
                )
