"""Unit tests for the unreliable channel (repro.signaling.channel)."""

import pytest

from repro.core.retrial import ExponentialBackoff
from repro.signaling.channel import RetransmitPolicy, SignalingChannel
from repro.sim.engine import Simulator
from repro.sim.random_streams import StreamFactory


def streams(seed=0):
    return StreamFactory(seed)


class TestPerfectChannel:
    def test_single_schedule_no_rng(self, simulator):
        channel = SignalingChannel(simulator)
        delivered = []
        channel.send(0.5, lambda: delivered.append(simulator.now))
        assert simulator.pending_count == 1
        simulator.run()
        assert delivered == [0.5]
        assert (channel.sent, channel.dropped, channel.duplicated) == (1, 0, 0)

    def test_bit_identical_to_direct_scheduling(self):
        """Sequence numbers must match a build without the channel."""
        direct = Simulator()
        order_direct = []
        for tag in ("a", "b", "c"):
            direct.schedule(1.0, lambda t=tag: order_direct.append(t))
        direct.run()

        chan_sim = Simulator()
        channel = SignalingChannel(chan_sim)
        order_channel = []
        for tag in ("a", "b", "c"):
            channel.send(1.0, lambda t=tag: order_channel.append(t))
        chan_sim.run()
        assert order_channel == order_direct

    def test_not_impaired(self, simulator):
        assert not SignalingChannel(simulator).impaired


class TestLoss:
    def test_loss_rate_one_is_rejected(self, simulator):
        with pytest.raises(ValueError):
            SignalingChannel(
                simulator, loss_rate=1.0, loss_rng=streams().stream("loss")
            )

    def test_loss_requires_rng(self, simulator):
        with pytest.raises(ValueError):
            SignalingChannel(simulator, loss_rate=0.1)

    def test_empirical_loss_fraction(self, simulator):
        channel = SignalingChannel(
            simulator, loss_rate=0.3, loss_rng=streams(7).stream("loss")
        )
        hits = []
        for _ in range(2000):
            channel.send(0.001, lambda: hits.append(1))
        simulator.run()
        assert channel.sent == 2000
        assert channel.dropped + len(hits) == 2000
        assert 0.25 < channel.dropped / 2000 < 0.35

    def test_deterministic_under_seed(self):
        def run(seed):
            simulator = Simulator()
            channel = SignalingChannel(
                simulator,
                loss_rate=0.5,
                loss_rng=StreamFactory(seed).stream("loss"),
            )
            outcomes = []
            for i in range(50):
                channel.send(0.001, lambda i=i: outcomes.append(i))
            simulator.run()
            return outcomes

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestDelayAndDuplication:
    def test_extra_delay_bounds(self):
        simulator = Simulator()
        channel = SignalingChannel(
            simulator,
            extra_delay_s=0.2,
            delay_rng=streams(1).stream("delay"),
        )
        arrivals = []
        for _ in range(200):
            channel.send(0.1, lambda: arrivals.append(simulator.now))
        simulator.run()
        assert len(arrivals) == 200
        assert min(arrivals) >= 0.1
        assert max(arrivals) < 0.3
        assert max(arrivals) > 0.1  # the delay draw actually happened

    def test_duplicates_deliver_twice(self):
        simulator = Simulator()
        channel = SignalingChannel(
            simulator,
            duplicate_rate=0.5,
            duplicate_rng=streams(2).stream("dup"),
        )
        count = [0]
        for _ in range(500):
            channel.send(0.001, lambda: count.__setitem__(0, count[0] + 1))
        simulator.run()
        assert count[0] == 500 + channel.duplicated
        assert 0.4 < channel.duplicated / 500 < 0.6

    def test_streams_are_independent(self):
        """Enabling duplication must not change which messages are lost."""

        def losses(duplicate_rate):
            simulator = Simulator()
            factory = StreamFactory(11)
            channel = SignalingChannel(
                simulator,
                loss_rate=0.3,
                duplicate_rate=duplicate_rate,
                loss_rng=factory.stream("loss"),
                duplicate_rng=factory.stream("dup"),
            )
            lost = []
            for _ in range(100):
                channel.send(0.001, lambda: None)
                lost.append(channel.dropped)
            simulator.run()
            return lost

        assert losses(0.0) == losses(0.4)


class TestRetransmitPolicy:
    def test_delegates_to_backoff(self):
        backoff = ExponentialBackoff(0.1, factor=2.0, max_timeout_s=1.0)
        policy = RetransmitPolicy(backoff, max_retransmits=2)
        assert policy.timeout(0) == pytest.approx(0.1)
        assert policy.timeout(3) == pytest.approx(0.8)
        assert policy.timeout(10) == pytest.approx(1.0)  # capped

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            RetransmitPolicy(ExponentialBackoff(0.1), max_retransmits=-1)
