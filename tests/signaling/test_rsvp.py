"""Unit tests for RSVP-lite sessions (repro.signaling.rsvp)."""

import pytest

from repro.network.routing import Route
from repro.network.topologies import line
from repro.signaling.rsvp import RsvpSession, SignalledReservationEngine
from repro.sim.engine import Simulator


@pytest.fixture
def network():
    # 0-1-2-3 line, one 64 kbit/s slot per link, 1 ms propagation.
    return line(4, capacity_bps=64_000.0, propagation_delay_s=0.001)


ROUTE = Route(source=0, destination=3, path=(0, 1, 2, 3))


def run_session(simulator, network, route, flow_id, bandwidth):
    outcomes = []
    session = RsvpSession(
        simulator, network, route, flow_id, bandwidth, outcomes.append
    )
    session.start()
    simulator.run()
    assert len(outcomes) == 1
    return outcomes[0]


class TestSuccessfulReservation:
    def test_reserves_every_link(self, simulator, network):
        outcome = run_session(simulator, network, ROUTE, "f1", 64_000.0)
        assert outcome.success
        for u, v in ((0, 1), (1, 2), (2, 3)):
            assert network.link(u, v).holds("f1")

    def test_message_count_is_two_per_hop(self, simulator, network):
        outcome = run_session(simulator, network, ROUTE, "f1", 64_000.0)
        # 3 PATH hops + 3 RESV hops.
        assert outcome.messages == 6

    def test_latency_is_round_trip(self, simulator, network):
        outcome = run_session(simulator, network, ROUTE, "f1", 64_000.0)
        # 6 hops x (1 ms propagation + 0.2 ms processing).
        assert outcome.latency_s == pytest.approx(6 * 0.0012, rel=1e-6)

    def test_bottleneck_reported(self, simulator, network):
        network.link(1, 2).release_if_held("x")
        outcome = run_session(simulator, network, ROUTE, "f1", 32_000.0)
        assert outcome.bottleneck_bps == pytest.approx(64_000.0)

    def test_bottleneck_sees_partial_load(self, simulator, network):
        network.link(1, 2).reserve("other", 30_000.0)
        outcome = run_session(simulator, network, ROUTE, "f1", 10_000.0)
        assert outcome.bottleneck_bps == pytest.approx(34_000.0)

    def test_zero_hop_route_trivially_succeeds(self, simulator, network):
        degenerate = Route(source=0, destination=0, path=(0,))
        outcome = run_session(simulator, network, degenerate, "f1", 64_000.0)
        assert outcome.success
        assert outcome.messages == 0
        assert outcome.latency_s == 0.0


class TestFailedReservation:
    def test_fails_fast_on_path_probe(self, simulator, network):
        network.link(1, 2).reserve("blocker", 64_000.0)
        outcome = run_session(simulator, network, ROUTE, "f1", 64_000.0)
        assert not outcome.success
        assert outcome.failed_link == (1, 2)
        # Nothing may be left reserved for the failed flow.
        assert not any(link.holds("f1") for link in network.links())

    def test_failure_at_first_hop_costs_no_propagation(self, simulator, network):
        network.link(0, 1).reserve("blocker", 64_000.0)
        outcome = run_session(simulator, network, ROUTE, "f1", 64_000.0)
        assert not outcome.success
        assert outcome.latency_s == 0.0
        assert outcome.messages == 0

    def test_race_rolls_back_partial_reservations(self, network):
        simulator = Simulator()
        outcomes = []
        session = RsvpSession(
            simulator, network, ROUTE, "f1", 64_000.0, outcomes.append
        )
        session.start()
        # Let the PATH probe pass, then steal link (0,1) before the RESV
        # sweep reaches it (RESV reserves 2->3 then 1->2 then 0->1).
        simulator.schedule(0.004, lambda: network.link(0, 1).reserve("thief", 64_000.0))
        simulator.run()
        assert len(outcomes) == 1
        assert not outcomes[0].success
        assert outcomes[0].failed_link == (0, 1)
        assert not any(link.holds("f1") for link in network.links())
        assert network.link(0, 1).holds("thief")

    def test_race_rollback_tolerates_fault_collected_leg(self, network):
        # Legacy-mode rollback regression (lint rule R5): while the
        # RESV sweep holds (2,3) and (1,2), a fault collects (2,3) and
        # a rival grabs (0,1).  The synchronous rollback must not
        # KeyError on the missing leg and strand (1,2).
        simulator = Simulator()
        outcomes = []
        session = RsvpSession(
            simulator, network, ROUTE, "f1", 64_000.0, outcomes.append
        )
        session.start()

        def fault_and_steal():
            network.link(2, 3).release("f1")  # fault teardown took it
            network.link(0, 1).reserve("thief", 64_000.0)

        simulator.schedule(0.0045, fault_and_steal)
        simulator.run()
        assert len(outcomes) == 1
        assert not outcomes[0].success
        assert outcomes[0].failed_link == (0, 1)
        assert not any(link.holds("f1") for link in network.links())
        assert network.link(0, 1).holds("thief")

    def test_invalid_bandwidth_rejected(self, simulator, network):
        with pytest.raises(ValueError):
            RsvpSession(simulator, network, ROUTE, "f1", -1.0, lambda o: None)


class TestSignalledEngine:
    def test_counters_accumulate(self, simulator, network):
        engine = SignalledReservationEngine(simulator, network)
        results = []
        engine.reserve(ROUTE, "f1", 64_000.0, results.append)
        simulator.run()
        engine.reserve(ROUTE, "f2", 64_000.0, results.append)  # now full
        simulator.run()
        assert [r.success for r in results] == [True, False]
        assert engine.attempts == 2
        assert engine.failures == 1
        assert engine.total_messages >= 6
        assert engine.mean_latency_s > 0.0
        assert engine.mean_messages > 0.0

    def test_release_counts_tear_messages(self, simulator, network):
        engine = SignalledReservationEngine(simulator, network)
        results = []
        engine.reserve(ROUTE, "f1", 64_000.0, results.append)
        simulator.run()
        before = engine.total_messages
        engine.release(ROUTE.path, "f1")
        assert engine.total_messages == before + 3
        assert network.total_reserved_bps() == 0.0

    def test_fresh_engine_means_zero(self, simulator, network):
        engine = SignalledReservationEngine(simulator, network)
        assert engine.mean_latency_s == 0.0
        assert engine.mean_messages == 0.0


class TestEquivalenceWithAtomicEngine:
    def test_same_decisions_without_concurrency(self, network):
        """Sequential (non-overlapping) signalling must match atomic results."""
        from repro.core.reservation import AtomicReservationEngine

        atomic_network = line(4, capacity_bps=2 * 64_000.0)
        signalled_network = line(4, capacity_bps=2 * 64_000.0)
        atomic = AtomicReservationEngine(atomic_network)
        simulator = Simulator()
        signalled = SignalledReservationEngine(simulator, signalled_network)
        for flow_id in range(5):
            atomic_success = atomic.try_reserve(ROUTE, flow_id, 64_000.0)
            results = []
            signalled.reserve(ROUTE, flow_id, 64_000.0, results.append)
            simulator.run()
            assert results[0].success == atomic_success
