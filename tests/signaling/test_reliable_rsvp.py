"""Robust-mode RSVP tests: loss recovery, teardown, soft-state GC.

Uses a test-local ``ScriptedChannel`` that drops exact transmission
indices, so every scenario (which copy is lost, which TEAR leg
vanishes) is constructed deterministically rather than sampled.
"""

import pytest

from repro.core.retrial import ExponentialBackoff
from repro.network.routing import Route
from repro.network.topologies import line
from repro.signaling.channel import RetransmitPolicy, SignalingChannel
from repro.signaling.rsvp import RsvpSession, SignalledReservationEngine
from repro.signaling.softstate import LeaseTable
from repro.sim.random_streams import StreamFactory

ROUTE = Route(source=0, destination=3, path=(0, 1, 2, 3))


@pytest.fixture
def network():
    return line(4, capacity_bps=64_000.0, propagation_delay_s=0.001)


class ScriptedChannel:
    """Drops the transmissions whose 0-based index is scripted."""

    def __init__(self, simulator, drop_indices=()):
        self._simulator = simulator
        self._drop = set(drop_indices)
        self.loss_rate = 0.5  # forces the retransmit-policy requirement
        self.duplicate_rate = 0.0
        self.sent = 0
        self.dropped = 0

    def send(self, delay_s, deliver):
        index = self.sent
        self.sent += 1
        if index in self._drop:
            self.dropped += 1
            return
        self._simulator.schedule(delay_s, deliver)


def policy(max_retransmits=3):
    return RetransmitPolicy(
        ExponentialBackoff(0.05, factor=2.0, max_timeout_s=1.0),
        max_retransmits=max_retransmits,
    )


def run_robust(
    simulator,
    network,
    channel,
    retransmit=None,
    leases=None,
    flow_id="f1",
    bandwidth=64_000.0,
):
    outcomes = []
    session = RsvpSession(
        simulator,
        network,
        ROUTE,
        flow_id,
        bandwidth,
        outcomes.append,
        channel=channel,
        retransmit=retransmit,
        leases=leases,
    )
    session.start()
    simulator.run()
    assert len(outcomes) == 1
    return outcomes[0]


class TestValidation:
    def test_lossy_channel_requires_retransmit(self, simulator, network):
        channel = SignalingChannel(
            simulator,
            loss_rate=0.1,
            loss_rng=StreamFactory(0).stream("loss"),
        )
        with pytest.raises(ValueError):
            RsvpSession(
                simulator, network, ROUTE, "f", 64_000.0, lambda o: None,
                channel=channel,
            )

    def test_delay_only_channel_needs_no_retransmit(self, simulator, network):
        channel = SignalingChannel(
            simulator,
            extra_delay_s=0.01,
            delay_rng=StreamFactory(0).stream("delay"),
        )
        outcome = run_robust(simulator, network, channel)
        assert outcome.success


class TestLossRecovery:
    def test_lost_path_is_retransmitted(self, simulator, network):
        # Transmission 0 is the first PATH hop; drop it once.
        channel = ScriptedChannel(simulator, drop_indices={0})
        outcome = run_robust(simulator, network, channel, retransmit=policy())
        assert outcome.success
        assert outcome.retransmissions == 1
        # The timeout (50 ms) dominates the hop delay budget.
        assert outcome.latency_s > 0.05
        for u, v in ((0, 1), (1, 2), (2, 3)):
            assert network.link(u, v).holds("f1")

    def test_lost_resv_is_retransmitted(self, simulator, network):
        # 3 PATH transmissions (0, 1, 2); index 3 is the first RESV leg.
        channel = ScriptedChannel(simulator, drop_indices={3})
        outcome = run_robust(simulator, network, channel, retransmit=policy())
        assert outcome.success
        assert outcome.retransmissions == 1

    def test_messages_include_retransmissions(self, simulator, network):
        channel = ScriptedChannel(simulator, drop_indices={0, 1})
        outcome = run_robust(simulator, network, channel, retransmit=policy())
        assert outcome.success
        # 6 protocol messages + 2 retransmitted copies.
        assert outcome.messages == 8
        assert outcome.retransmissions == 2


class TestGiveUp:
    def test_path_loss_exhausts_retries(self, simulator, network):
        # Kill the first PATH hop and all its retransmissions.
        channel = ScriptedChannel(simulator, drop_indices={0, 1, 2})
        outcome = run_robust(
            simulator, network, channel, retransmit=policy(max_retransmits=2)
        )
        assert not outcome.success
        assert outcome.timed_out
        assert outcome.failed_link == (0, 1)
        assert network.total_reserved_bps() == 0.0

    def test_resv_loss_tears_downstream(self, simulator, network):
        leases = LeaseTable(simulator, network, ttl_s=5.0, sweep_interval_s=1.0)
        # Indices 0-2: PATH sweep.  3 and 4: first RESV leg (2->3... no:
        # RESV travels 3->2 first) and its retransmission -- kill both,
        # so node 3's upstream reservation (2,3) is installed but the
        # session gives up.  The TEAR then releases it.
        channel = ScriptedChannel(simulator, drop_indices={3, 4})
        outcome = run_robust(
            simulator,
            network,
            channel,
            retransmit=policy(max_retransmits=1),
            leases=leases,
        )
        assert not outcome.success
        assert outcome.timed_out
        simulator.run()  # let tear + lease machinery drain
        assert network.total_reserved_bps() == 0.0
        assert leases.live_leases() == 0

    def test_lost_tear_is_collected_by_lease(self, simulator, network):
        leases = LeaseTable(simulator, network, ttl_s=5.0, sweep_interval_s=1.0)
        # Let the first RESV leg land (index 3 reserves (2,3) at node 3,
        # index 3 delivers to node 2, which reserves (1,2)), then kill
        # node 2's onward transfer (indices 4, 5).  Node 2 releases
        # (1,2) itself and tears downstream -- but the TEAR (index 6)
        # is lost too, so (2,3) stays stranded until its lease expires.
        channel = ScriptedChannel(simulator, drop_indices={4, 5, 6})
        outcomes = []
        session = RsvpSession(
            simulator,
            network,
            ROUTE,
            "f1",
            64_000.0,
            outcomes.append,
            channel=channel,
            retransmit=policy(max_retransmits=1),
            leases=leases,
        )
        session.start()
        simulator.run(until=1.0)  # bounded: before the TTL expires
        assert len(outcomes) == 1 and not outcomes[0].success
        assert network.link(2, 3).holds("f1")  # stranded right now
        simulator.run()  # ... until the collector sweeps
        assert network.total_reserved_bps() == 0.0
        assert leases.orphans_collected == 1
        assert leases.reclaimed_bps == pytest.approx(64_000.0)


class TestDeduplication:
    class DuplicatingChannel:
        """Delivers every transmission twice, back to back."""

        def __init__(self, simulator):
            self._simulator = simulator
            self.loss_rate = 0.0
            self.duplicate_rate = 0.5  # forces the retransmit requirement
            self.sent = 0

        def send(self, delay_s, deliver):
            self.sent += 1
            self._simulator.schedule(delay_s, deliver)
            self._simulator.schedule(delay_s, deliver)

    def test_duplicates_do_not_double_reserve(self, simulator, network):
        channel = self.DuplicatingChannel(simulator)
        outcome = run_robust(simulator, network, channel, retransmit=policy())
        assert outcome.success
        assert outcome.retransmissions == 0
        # Exactly one reservation per link despite double delivery.
        for u, v in ((0, 1), (1, 2), (2, 3)):
            assert network.link(u, v).reserved_bps == pytest.approx(64_000.0)
        assert outcome.messages == 6  # duplicates are not new messages


class TestRobustEngine:
    def test_release_tears_through_channel(self, simulator, network):
        channel = ScriptedChannel(simulator, drop_indices=set())
        engine = SignalledReservationEngine(
            simulator, network, channel=channel, retransmit=policy()
        )
        outcomes = []
        engine.reserve(ROUTE, "f", 64_000.0, outcomes.append)
        simulator.run()
        assert outcomes[0].success
        engine.release(ROUTE.path, "f")
        simulator.run()
        assert network.total_reserved_bps() == 0.0
        assert engine.tear_messages == 3

    def test_lost_release_tear_falls_back_to_lease(self, simulator, network):
        leases = LeaseTable(simulator, network, ttl_s=5.0, sweep_interval_s=1.0)
        channel = ScriptedChannel(simulator, drop_indices=set())
        engine = SignalledReservationEngine(
            simulator,
            network,
            channel=channel,
            retransmit=policy(),
            leases=leases,
        )
        outcomes = []
        engine.reserve(ROUTE, "f", 64_000.0, outcomes.append)
        simulator.run()
        assert outcomes[0].success
        # Drop the second TEAR leg: links (1,2) and (2,3) stay held.
        channel._drop.add(channel.sent + 1)
        engine.release(ROUTE.path, "f")
        simulator.run()
        assert network.total_reserved_bps() == 0.0  # lease reclaimed the rest
        assert leases.orphans_collected == 1
        assert engine.timeouts == 0  # tears are unacknowledged
