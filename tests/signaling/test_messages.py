"""Unit tests for signalling messages (repro.signaling.messages)."""

import pytest

from repro.signaling.messages import (
    MessageType,
    PathErrMessage,
    PathMessage,
    ResvMessage,
    TearMessage,
)

ROUTE = (0, 1, 2, 3)


class TestValidation:
    def test_hop_index_bounds(self):
        with pytest.raises(ValueError):
            PathMessage(flow_id=1, route=ROUTE, hop_index=4, bandwidth_bps=1.0)
        with pytest.raises(ValueError):
            PathMessage(flow_id=1, route=ROUTE, hop_index=-1, bandwidth_bps=1.0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            PathMessage(flow_id=1, route=ROUTE, hop_index=0, bandwidth_bps=-1.0)

    def test_at_node(self):
        message = PathMessage(flow_id=1, route=ROUTE, hop_index=2, bandwidth_bps=1.0)
        assert message.at_node == 2


class TestTypes:
    def test_message_types(self):
        assert (
            PathMessage(flow_id=1, route=ROUTE, hop_index=0, bandwidth_bps=1.0)
        ).message_type == MessageType.PATH
        assert (
            ResvMessage(flow_id=1, route=ROUTE, hop_index=3, bandwidth_bps=1.0)
        ).message_type == MessageType.RESV
        assert (
            PathErrMessage(flow_id=1, route=ROUTE, hop_index=1, bandwidth_bps=1.0)
        ).message_type == MessageType.PATH_ERR
        assert (
            TearMessage(flow_id=1, route=ROUTE, hop_index=0, bandwidth_bps=1.0)
        ).message_type == MessageType.TEAR

    def test_path_destination_detection(self):
        at_mid = PathMessage(flow_id=1, route=ROUTE, hop_index=1, bandwidth_bps=1.0)
        at_end = PathMessage(flow_id=1, route=ROUTE, hop_index=3, bandwidth_bps=1.0)
        assert not at_mid.is_at_destination
        assert at_end.is_at_destination

    def test_resv_source_detection(self):
        at_source = ResvMessage(flow_id=1, route=ROUTE, hop_index=0, bandwidth_bps=1.0)
        at_mid = ResvMessage(flow_id=1, route=ROUTE, hop_index=2, bandwidth_bps=1.0)
        assert at_source.is_at_source
        assert not at_mid.is_at_source

    def test_resv_default_bottleneck_infinite(self):
        message = ResvMessage(flow_id=1, route=ROUTE, hop_index=3, bandwidth_bps=1.0)
        assert message.bottleneck_bps == float("inf")

    def test_messages_are_immutable(self):
        message = PathMessage(flow_id=1, route=ROUTE, hop_index=0, bandwidth_bps=1.0)
        with pytest.raises(AttributeError):
            message.hop_index = 2
