"""Unit tests for retrial control (repro.core.retrial)."""

import pytest

from repro.core.retrial import (
    AlwaysRetryPolicy,
    CounterRetrialPolicy,
    NeverRetryPolicy,
)


class TestCounterRetrialPolicy:
    def test_r1_never_retries(self):
        policy = CounterRetrialPolicy(1)
        assert not policy.should_retry(attempts_made=1, distinct_tried=1, group_size=5)

    def test_retries_below_limit(self):
        policy = CounterRetrialPolicy(3)
        assert policy.should_retry(attempts_made=1, distinct_tried=1, group_size=5)
        assert policy.should_retry(attempts_made=2, distinct_tried=2, group_size=5)
        assert not policy.should_retry(attempts_made=3, distinct_tried=3, group_size=5)

    def test_stops_when_group_exhausted(self):
        policy = CounterRetrialPolicy(10)
        assert not policy.should_retry(attempts_made=5, distinct_tried=5, group_size=5)

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            CounterRetrialPolicy(0)

    def test_repr_mentions_r(self):
        assert "R=4" in repr(CounterRetrialPolicy(4))


class TestAlwaysRetryPolicy:
    def test_retries_until_group_exhausted(self):
        policy = AlwaysRetryPolicy()
        assert policy.should_retry(attempts_made=4, distinct_tried=4, group_size=5)
        assert not policy.should_retry(attempts_made=5, distinct_tried=5, group_size=5)


class TestNeverRetryPolicy:
    def test_never_retries(self):
        policy = NeverRetryPolicy()
        assert not policy.should_retry(attempts_made=1, distinct_tried=1, group_size=5)
