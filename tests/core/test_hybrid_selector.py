"""Tests for the hybrid WD/D+H+B selector."""

import pytest

from repro.core.selection import (
    DistanceBandwidthWeighted,
    HybridWeighted,
    SelectionContext,
)
from repro.flows.group import AnycastGroup
from repro.network.routing import RouteTable
from repro.network.topologies import line


def make_context(network=None, source=2, members=(0, 4)):
    network = network if network is not None else line(5)
    group = AnycastGroup("A", members)
    routes = RouteTable(network, source, members)
    return network, SelectionContext(network=network, routes=routes, group=group)


class TestWeights:
    def test_initial_weights_match_bandwidth_selector(self):
        network, context = make_context()
        hybrid = HybridWeighted(context)
        parent = DistanceBandwidthWeighted(context)
        assert hybrid.weights() == pytest.approx(parent.weights())

    def test_history_decays_failing_member(self):
        network, context = make_context()
        hybrid = HybridWeighted(context, alpha=0.5)
        hybrid.observe(0, success=False)
        weights = hybrid.weights()
        # Symmetric bandwidth/distance; the failure halves member 0.
        assert weights[0] == pytest.approx(1.0 / 3.0)
        assert weights[1] == pytest.approx(2.0 / 3.0)

    def test_bandwidth_still_steers(self):
        network, context = make_context()
        hybrid = HybridWeighted(context)
        network.link(2, 3).reserve("f", network.link(2, 3).capacity_bps)
        assert hybrid.weights() == pytest.approx([1.0, 0.0])

    def test_success_resets_history(self):
        network, context = make_context()
        hybrid = HybridWeighted(context, alpha=0.0)
        hybrid.observe(0, success=False)
        assert hybrid.weights()[0] == 0.0
        hybrid.observe(0, success=True)
        assert hybrid.weights()[0] == pytest.approx(0.5)

    def test_all_saturated_falls_back_to_distance(self):
        network, context = make_context()
        for link in network.links():
            link.reserve("f", link.capacity_bps)
        hybrid = HybridWeighted(context)
        assert hybrid.weights() == pytest.approx([0.5, 0.5])

    def test_weights_sum_to_one_through_updates(self):
        from repro.sim.random_streams import StreamFactory

        network, context = make_context()
        hybrid = HybridWeighted(context, alpha=0.3)
        rng = StreamFactory(4).stream("h")
        for i in range(40):
            member = hybrid.select(rng)
            hybrid.observe(member, success=(i % 2 == 0))
            assert sum(hybrid.weights()) == pytest.approx(1.0)

    def test_invalid_alpha(self):
        _, context = make_context()
        with pytest.raises(ValueError):
            HybridWeighted(context, alpha=-0.1)


class TestSystemIntegration:
    def test_spec_label(self):
        from repro.core.system import SystemSpec

        assert SystemSpec("WD/D+H+B", retrials=2).label == "<WD/D+H+B,2>"

    def test_build_and_run(self):
        import repro

        result = repro.quick_run(
            "WD/D+H+B", retrials=2, arrival_rate=30.0,
            warmup_s=50.0, measure_s=150.0, seed=2,
        )
        assert 0.0 < result.admission_probability <= 1.0

    def test_staleness_applies_to_hybrid(self):
        from repro.core.system import SystemSpec
        from repro.flows.group import AnycastGroup
        from repro.flows.traffic import WorkloadSpec
        from repro.network.topologies import (
            MCI_GROUP_MEMBERS,
            MCI_SOURCES,
            mci_backbone,
        )
        from repro.sim.simulation import run_simulation

        workload = WorkloadSpec(
            arrival_rate=30.0,
            sources=MCI_SOURCES,
            group=AnycastGroup("A", MCI_GROUP_MEMBERS),
            mean_lifetime_s=20.0,
        )
        result = run_simulation(
            network_factory=mci_backbone,
            system_spec=SystemSpec(
                "WD/D+H+B", retrials=2, bandwidth_refresh_s=5.0
            ),
            workload=workload,
            warmup_s=30.0,
            measure_s=120.0,
            seed=3,
        )
        assert 0.0 < result.admission_probability <= 1.0

    def test_hybrid_competitive_with_parents(self):
        """At heavy load the hybrid is at least as good as its parents."""
        import repro

        aps = {}
        for algorithm in ("WD/D+H", "WD/D+B", "WD/D+H+B"):
            aps[algorithm] = repro.quick_run(
                algorithm, retrials=2, arrival_rate=35.0,
                warmup_s=150.0, measure_s=500.0, seed=8,
            ).admission_probability
        assert aps["WD/D+H+B"] >= min(aps["WD/D+H"], aps["WD/D+B"]) - 0.03
