"""Unit tests for destination selection (repro.core.selection)."""

import pytest

from repro.core.selection import (
    DistanceBandwidthWeighted,
    DistanceHistoryWeighted,
    DistanceWeighted,
    EvenDistribution,
    SelectionContext,
    ShortestPathSelector,
    distance_weights,
)
from repro.flows.group import AnycastGroup
from repro.network.routing import RouteTable
from repro.network.topologies import line, mci_backbone
from repro.sim.random_streams import StreamFactory


def make_context(network=None, source=1, members=(0, 4)):
    network = network if network is not None else line(5)
    group = AnycastGroup("A", members)
    routes = RouteTable(network, source, members)
    return SelectionContext(network=network, routes=routes, group=group)


@pytest.fixture
def rng():
    return StreamFactory(77).stream("test-select")


class TestDistanceWeightsFunction:
    def test_inverse_distance_normalized(self):
        weights = distance_weights([1.0, 2.0, 4.0])
        assert sum(weights) == pytest.approx(1.0)
        # 1 : 1/2 : 1/4 normalized.
        assert weights[0] == pytest.approx(4.0 / 7.0)
        assert weights[1] == pytest.approx(2.0 / 7.0)
        assert weights[2] == pytest.approx(1.0 / 7.0)

    def test_equal_distances_give_uniform(self):
        weights = distance_weights([3.0, 3.0, 3.0])
        assert weights == pytest.approx([1 / 3, 1 / 3, 1 / 3])

    def test_zero_distance_dominates(self):
        weights = distance_weights([0.0, 2.0, 5.0])
        assert weights == [1.0, 0.0, 0.0]

    def test_multiple_zero_distances_share(self):
        weights = distance_weights([0.0, 0.0, 5.0])
        assert weights == [0.5, 0.5, 0.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            distance_weights([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            distance_weights([1.0, -2.0])


class TestSelectionContext:
    def test_mismatched_members_rejected(self):
        network = line(5)
        group = AnycastGroup("A", (0, 4))
        routes = RouteTable(network, 1, (4, 0))
        with pytest.raises(ValueError):
            SelectionContext(network=network, routes=routes, group=group)


class TestEvenDistribution:
    def test_uniform_weights(self):
        selector = EvenDistribution(make_context())
        assert selector.weights() == [0.5, 0.5]

    def test_selection_frequency_uniform(self, rng):
        selector = EvenDistribution(make_context())
        counts = {0: 0, 4: 0}
        for _ in range(4000):
            counts[selector.select(rng)] += 1
        assert counts[0] == pytest.approx(2000, rel=0.1)

    def test_exclusion_forces_other_member(self, rng):
        selector = EvenDistribution(make_context())
        for _ in range(50):
            assert selector.select(rng, exclude=frozenset({0})) == 4

    def test_all_excluded_raises(self, rng):
        selector = EvenDistribution(make_context())
        with pytest.raises(ValueError):
            selector.select(rng, exclude=frozenset({0, 4}))

    def test_observe_is_noop(self):
        selector = EvenDistribution(make_context())
        selector.observe(0, success=False)
        assert selector.weights() == [0.5, 0.5]


class TestDistanceWeighted:
    def test_closer_member_weighs_more(self):
        # From node 1 on a 5-line: distance 1 to node 0, 3 to node 4.
        selector = DistanceWeighted(make_context())
        weights = selector.weights()
        assert weights[0] == pytest.approx(0.75)
        assert weights[1] == pytest.approx(0.25)

    def test_weights_static_across_observations(self):
        selector = DistanceWeighted(make_context())
        before = selector.weights()
        selector.observe(0, success=False)
        assert selector.weights() == before


class TestDistanceHistoryWeighted:
    def test_initial_weights_are_distance_weights(self):
        selector = DistanceHistoryWeighted(make_context(), alpha=0.5)
        assert selector.weights() == pytest.approx([0.75, 0.25])

    def test_failure_decays_weight(self):
        selector = DistanceHistoryWeighted(make_context(), alpha=0.5)
        selector.observe(0, success=False)
        weights = selector.weights()
        # W0 decays by alpha, its loss moves to member 4, then normalize.
        assert weights[0] == pytest.approx(0.375)
        assert weights[1] == pytest.approx(0.625)

    def test_success_restores_growth(self):
        selector = DistanceHistoryWeighted(make_context(), alpha=0.5)
        selector.observe(0, success=False)
        selector.weights()
        selector.observe(0, success=True)
        weights = selector.weights()
        assert weights[0] > 0.3  # no longer decayed

    def test_alpha_one_never_decays(self):
        selector = DistanceHistoryWeighted(make_context(), alpha=1.0)
        for _ in range(5):
            selector.observe(0, success=False)
        assert selector.weights() == pytest.approx([0.75, 0.25])

    def test_alpha_zero_removes_failed_destination(self):
        selector = DistanceHistoryWeighted(make_context(), alpha=0.0)
        selector.observe(0, success=False)
        weights = selector.weights()
        assert weights[0] == 0.0
        assert weights[1] == pytest.approx(1.0)

    def test_all_failing_keeps_relative_discrimination(self):
        selector = DistanceHistoryWeighted(make_context(), alpha=0.5)
        selector.observe(0, success=False)
        selector.observe(4, success=False)
        selector.observe(4, success=False)
        weights = selector.weights()
        assert sum(weights) == pytest.approx(1.0)
        # Member 0 failed once, member 4 twice: 0 keeps more weight.
        assert weights[0] > weights[1]

    def test_alpha_zero_all_failing_falls_back_to_seed(self):
        selector = DistanceHistoryWeighted(make_context(), alpha=0.0)
        selector.observe(0, success=False)
        selector.observe(4, success=False)
        assert selector.weights() == pytest.approx([0.75, 0.25])

    def test_weights_always_sum_to_one(self):
        selector = DistanceHistoryWeighted(make_context(), alpha=0.3)
        rng = StreamFactory(5).stream("w")
        for i in range(50):
            member = selector.select(rng)
            selector.observe(member, success=(i % 3 == 0))
            assert sum(selector.weights()) == pytest.approx(1.0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            DistanceHistoryWeighted(make_context(), alpha=1.5)
        with pytest.raises(ValueError):
            DistanceHistoryWeighted(make_context(), alpha=-0.1)


class TestDistanceBandwidthWeighted:
    def test_prefers_wider_route(self):
        network = line(5)
        context = make_context(network=network, source=2, members=(0, 4))
        selector = DistanceBandwidthWeighted(context)
        # Symmetric distances; saturate one side partially.
        network.link(2, 1).reserve("f", network.link(2, 1).capacity_bps / 2)
        weights = selector.weights()
        # Route to 0 (via link 2->1) has half the bandwidth of route to 4.
        assert weights[1] == pytest.approx(2.0 / 3.0)
        assert weights[0] == pytest.approx(1.0 / 3.0)

    def test_tracks_dynamic_state(self):
        network = line(5)
        context = make_context(network=network, source=2, members=(0, 4))
        selector = DistanceBandwidthWeighted(context)
        assert selector.weights() == pytest.approx([0.5, 0.5])
        network.link(2, 3).reserve("f", network.link(2, 3).capacity_bps)
        assert selector.weights() == pytest.approx([1.0, 0.0])
        network.link(2, 3).release("f")
        assert selector.weights() == pytest.approx([0.5, 0.5])

    def test_all_saturated_falls_back_to_distance(self):
        network = line(5)
        context = make_context(network=network, source=1, members=(0, 4))
        selector = DistanceBandwidthWeighted(context)
        for link in network.links():
            link.reserve("f", link.capacity_bps)
        assert selector.weights() == pytest.approx([0.75, 0.25])

    def test_distance_divides_bandwidth(self):
        network = line(5)
        context = make_context(network=network, source=1, members=(0, 4))
        selector = DistanceBandwidthWeighted(context)
        # Equal bandwidth everywhere: weights ~ 1/D as in eq. 12.
        assert selector.weights() == pytest.approx([0.75, 0.25])


class TestShortestPathSelector:
    def test_always_selects_nearest(self, rng):
        selector = ShortestPathSelector(make_context())
        for _ in range(20):
            assert selector.select(rng) == 0

    def test_weights_are_degenerate(self):
        selector = ShortestPathSelector(make_context())
        assert selector.weights() == [1.0, 0.0]

    def test_excluded_falls_back_to_next_nearest(self, rng):
        network = mci_backbone()
        context = make_context(network=network, source=1, members=(0, 4, 8))
        selector = ShortestPathSelector(context)
        first = selector.select(rng)
        second = selector.select(rng, exclude=frozenset({first}))
        assert second != first
        assert second in (0, 4, 8)

    def test_all_excluded_raises(self, rng):
        selector = ShortestPathSelector(make_context())
        with pytest.raises(ValueError):
            selector.select(rng, exclude=frozenset({0, 4}))
