"""Unit tests for system assembly (repro.core.system)."""

import pytest

from repro.baselines.gdi import GDIController
from repro.core.admission import ACRouter
from repro.core.selection import (
    DistanceBandwidthWeighted,
    DistanceHistoryWeighted,
    EvenDistribution,
    ShortestPathSelector,
)
from repro.core.system import ALGORITHM_NAMES, AdmissionSystem, SystemSpec, build_system
from repro.flows.flow import FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement
from repro.network.topologies import mci_backbone, MCI_GROUP_MEMBERS, MCI_SOURCES
from repro.sim.random_streams import StreamFactory


@pytest.fixture
def group():
    return AnycastGroup("A", MCI_GROUP_MEMBERS)


def make_request(source, group, flow_id=0):
    return FlowRequest(
        flow_id=flow_id,
        source=source,
        group=group,
        qos=QoSRequirement(bandwidth_bps=64_000.0),
    )


class TestSystemSpec:
    def test_labels_match_paper_notation(self):
        assert SystemSpec("ED", retrials=2).label == "<ED,2>"
        assert SystemSpec("WD/D+H", retrials=3).label == "<WD/D+H,3>"
        assert SystemSpec("SP").label == "SP"
        assert SystemSpec("GDI").label == "GDI"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            SystemSpec("MAGIC")

    def test_invalid_retrials_rejected(self):
        with pytest.raises(ValueError):
            SystemSpec("ED", retrials=0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            SystemSpec("WD/D+H", alpha=2.0)

    def test_distributed_flag(self):
        assert SystemSpec("ED").is_distributed
        assert not SystemSpec("GDI").is_distributed

    def test_all_algorithm_names_buildable(self, group):
        streams = StreamFactory(0)
        for name in ALGORITHM_NAMES:
            system = build_system(
                SystemSpec(name, retrials=2),
                mci_backbone(),
                MCI_SOURCES,
                group,
                streams,
            )
            assert isinstance(system, AdmissionSystem)


class TestBuildSystem:
    def test_distributed_systems_have_router_per_source(self, group):
        system = build_system(
            SystemSpec("ED", retrials=2),
            mci_backbone(),
            MCI_SOURCES,
            group,
            StreamFactory(0),
        )
        for source in MCI_SOURCES:
            controller = system.controller_for(source)
            assert isinstance(controller, ACRouter)
            assert controller.source == source

    def test_selector_classes_match_algorithm(self, group):
        cases = {
            "ED": EvenDistribution,
            "WD/D+H": DistanceHistoryWeighted,
            "WD/D+B": DistanceBandwidthWeighted,
            "SP": ShortestPathSelector,
        }
        for name, selector_class in cases.items():
            system = build_system(
                SystemSpec(name, retrials=2),
                mci_backbone(),
                MCI_SOURCES,
                group,
                StreamFactory(0),
            )
            assert isinstance(
                system.controller_for(1).selector, selector_class
            )

    def test_gdi_uses_single_global_controller(self, group):
        system = build_system(
            SystemSpec("GDI"), mci_backbone(), MCI_SOURCES, group, StreamFactory(0)
        )
        controllers = {system.controller_for(s) for s in MCI_SOURCES}
        assert len(controllers) == 1
        assert isinstance(controllers.pop(), GDIController)

    def test_sp_forces_single_attempt(self, group):
        system = build_system(
            SystemSpec("SP", retrials=5),
            mci_backbone(),
            MCI_SOURCES,
            group,
            StreamFactory(0),
        )
        assert system.controller_for(1).retrial_policy.max_attempts == 1

    def test_alpha_propagates_to_wddh(self, group):
        system = build_system(
            SystemSpec("WD/D+H", retrials=2, alpha=0.25),
            mci_backbone(),
            MCI_SOURCES,
            group,
            StreamFactory(0),
        )
        assert system.controller_for(1).selector.alpha == 0.25

    def test_unknown_source_raises(self, group):
        system = build_system(
            SystemSpec("ED"), mci_backbone(), (1, 3), group, StreamFactory(0)
        )
        with pytest.raises(ValueError):
            system.controller_for(2)

    def test_routers_share_one_network_state(self, group):
        network = mci_backbone(capacity_bps=64_000.0)
        system = build_system(
            SystemSpec("ED", retrials=1), network, (1, 3), group, StreamFactory(0)
        )
        assert system.controller_for(1).network is system.controller_for(3).network


class TestAdmissionSystemInterface:
    def test_admit_routes_by_source(self, group):
        system = build_system(
            SystemSpec("ED", retrials=2),
            mci_backbone(),
            MCI_SOURCES,
            group,
            StreamFactory(0),
        )
        result = system.admit(make_request(source=3, group=group))
        assert result.admitted
        assert system.requests_seen == 1
        assert system.controller_for(3).requests_seen == 1
        assert system.controller_for(1).requests_seen == 0

    def test_release_through_system(self, group):
        network = mci_backbone()
        system = build_system(
            SystemSpec("ED", retrials=2), network, MCI_SOURCES, group, StreamFactory(0)
        )
        result = system.admit(make_request(source=3, group=group))
        system.release(result.flow)
        assert network.total_reserved_bps() == 0.0

    def test_aggregate_counters(self, group):
        system = build_system(
            SystemSpec("ED", retrials=2),
            mci_backbone(),
            MCI_SOURCES,
            group,
            StreamFactory(0),
        )
        for flow_id, source in enumerate((1, 3, 5)):
            system.admit(make_request(source=source, group=group, flow_id=flow_id))
        assert system.requests_seen == 3
        assert system.requests_admitted == 3
        assert system.admission_ratio == 1.0
        assert system.mean_attempts == 1.0

    def test_empty_system_ratios(self, group):
        system = build_system(
            SystemSpec("ED"), mci_backbone(), MCI_SOURCES, group, StreamFactory(0)
        )
        assert system.admission_ratio == 0.0
        assert system.mean_attempts == 0.0
