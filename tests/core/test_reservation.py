"""Unit tests for atomic reservation (repro.core.reservation)."""

import pytest

from repro.core.reservation import AtomicReservationEngine
from repro.network.routing import Route
from repro.network.topologies import line


@pytest.fixture
def network():
    return line(4, capacity_bps=100.0)


@pytest.fixture
def engine(network):
    return AtomicReservationEngine(network)


ROUTE = Route(source=0, destination=3, path=(0, 1, 2, 3))


class TestTryReserve:
    def test_success_holds_all_links(self, network, engine):
        assert engine.try_reserve(ROUTE, "f1", 40.0)
        for u, v in ((0, 1), (1, 2), (2, 3)):
            assert network.link(u, v).reservation_of("f1") == 40.0
        assert engine.attempts == 1
        assert engine.failures == 0

    def test_failure_leaves_network_untouched(self, network, engine):
        network.link(1, 2).reserve("blocker", 100.0)
        assert not engine.try_reserve(ROUTE, "f1", 40.0)
        assert network.link(0, 1).available_bps == 100.0
        assert engine.failures == 1

    def test_failure_at_first_hop(self, network, engine):
        network.link(0, 1).reserve("blocker", 100.0)
        assert not engine.try_reserve(ROUTE, "f1", 1.0)
        assert network.total_reserved_bps() == 100.0

    def test_negative_bandwidth_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.try_reserve(ROUTE, "f1", -1.0)

    def test_zero_hop_route_always_succeeds(self, network, engine):
        degenerate = Route(source=0, destination=0, path=(0,))
        assert engine.try_reserve(degenerate, "f1", 40.0)
        assert network.total_reserved_bps() == 0.0

    def test_capacity_shared_between_flows(self, engine):
        assert engine.try_reserve(ROUTE, "f1", 60.0)
        assert not engine.try_reserve(ROUTE, "f2", 60.0)
        assert engine.try_reserve(ROUTE, "f3", 40.0)


class TestRelease:
    def test_release_frees_all_links(self, network, engine):
        engine.try_reserve(ROUTE, "f1", 40.0)
        engine.release(ROUTE.path, "f1")
        assert network.total_reserved_bps() == 0.0

    def test_release_then_reserve_again(self, engine):
        engine.try_reserve(ROUTE, "f1", 100.0)
        engine.release(ROUTE.path, "f1")
        assert engine.try_reserve(ROUTE, "f2", 100.0)


class TestCounters:
    def test_failure_rate(self, network, engine):
        engine.try_reserve(ROUTE, "f1", 100.0)
        engine.try_reserve(ROUTE, "f2", 100.0)  # fails
        assert engine.failure_rate == pytest.approx(0.5)

    def test_failure_rate_without_attempts(self, engine):
        assert engine.failure_rate == 0.0
