"""Unit tests for the AC-router DAC loop (repro.core.admission)."""

import pytest

from repro.core.admission import ACRouter
from repro.core.retrial import CounterRetrialPolicy
from repro.core.selection import EvenDistribution, SelectionContext
from repro.flows.flow import FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement
from repro.network.routing import RouteTable
from repro.network.topologies import line
from repro.network.topology import Network
from repro.sim.random_streams import StreamFactory


def make_router(
    network: Network,
    source=1,
    members=(0, 3),
    retrials: int = 2,
    selector_class=EvenDistribution,
    resample_failed: bool = False,
    seed: int = 7,
) -> ACRouter:
    group = AnycastGroup("G", members)
    routes = RouteTable(network, source, members)
    context = SelectionContext(network=network, routes=routes, group=group)
    return ACRouter(
        network=network,
        source=source,
        group=group,
        selector=selector_class(context),
        retrial_policy=CounterRetrialPolicy(retrials),
        rng=StreamFactory(seed).stream("router"),
        resample_failed=resample_failed,
    )


def make_request(flow_id=0, source=1, members=(0, 3), bandwidth=64_000.0):
    return FlowRequest(
        flow_id=flow_id,
        source=source,
        group=AnycastGroup("G", members),
        qos=QoSRequirement(bandwidth_bps=bandwidth),
        arrival_time=0.0,
        lifetime_s=10.0,
    )


@pytest.fixture
def network():
    # Line 0-1-2-3 with one 64 kbit/s slot per link.
    return line(4, capacity_bps=64_000.0)


class TestAdmission:
    def test_admits_when_bandwidth_available(self, network):
        router = make_router(network)
        result = router.admit(make_request())
        assert result.admitted
        assert result.attempts == 1
        assert result.flow.destination in (0, 3)
        assert result.flow.path[0] == 1

    def test_reservation_held_after_admission(self, network):
        router = make_router(network)
        result = router.admit(make_request())
        for link in network.path_links(result.flow.path):
            assert link.holds(0)

    def test_retries_alternative_destination(self, network):
        # Saturate the route toward node 0; every request must end at 3.
        network.link(1, 0).reserve("blocker", 64_000.0)
        router = make_router(network, retrials=2)
        result = router.admit(make_request())
        assert result.admitted
        assert result.flow.destination == 3
        assert result.attempts <= 2

    def test_rejected_when_all_routes_full(self, network):
        network.link(1, 0).reserve("b1", 64_000.0)
        network.link(1, 2).reserve("b2", 64_000.0)
        router = make_router(network, retrials=2)
        result = router.admit(make_request())
        assert not result.admitted
        assert result.flow is None
        assert result.attempts == 2
        assert set(result.tried) == {0, 3}

    def test_r1_gives_single_attempt(self, network):
        network.link(1, 0).reserve("b1", 64_000.0)
        network.link(1, 2).reserve("b2", 64_000.0)
        router = make_router(network, retrials=1)
        result = router.admit(make_request())
        assert not result.admitted
        assert result.attempts == 1

    def test_without_replacement_never_retries_same_destination(self, network):
        network.link(1, 0).reserve("b1", 64_000.0)
        network.link(1, 2).reserve("b2", 64_000.0)
        router = make_router(network, retrials=2)
        for flow_id in range(20):
            result = router.admit(make_request(flow_id=flow_id))
            assert len(set(result.tried)) == len(result.tried)

    def test_resample_ablation_may_repeat_destination(self, network):
        network.link(1, 0).reserve("b1", 64_000.0)
        network.link(1, 2).reserve("b2", 64_000.0)
        router = make_router(network, retrials=5, resample_failed=True)
        repeats = 0
        for flow_id in range(50):
            result = router.admit(make_request(flow_id=flow_id))
            if len(set(result.tried)) < len(result.tried):
                repeats += 1
        assert repeats > 0

    def test_rejection_frees_all_bandwidth(self, network):
        network.link(1, 0).reserve("b1", 64_000.0)
        network.link(1, 2).reserve("b2", 64_000.0)
        before = network.total_reserved_bps()
        router = make_router(network, retrials=2)
        router.admit(make_request())
        assert network.total_reserved_bps() == before

    def test_wrong_source_rejected(self, network):
        router = make_router(network, source=1)
        with pytest.raises(ValueError):
            router.admit(make_request(source=2))

    def test_wrong_group_rejected(self, network):
        router = make_router(network, members=(0, 3))
        with pytest.raises(ValueError):
            router.admit(make_request(members=(0,)))

    def test_decided_at_defaults_to_arrival(self, network):
        router = make_router(network)
        request = make_request()
        result = router.admit(request)
        assert result.decided_at == request.arrival_time

    def test_decided_at_override(self, network):
        router = make_router(network)
        result = router.admit(make_request(), now=42.0)
        assert result.decided_at == 42.0


class TestRelease:
    def test_release_frees_route(self, network):
        router = make_router(network)
        result = router.admit(make_request())
        router.release(result.flow)
        assert network.total_reserved_bps() == 0.0
        assert result.flow.released

    def test_release_is_idempotent(self, network):
        router = make_router(network)
        result = router.admit(make_request())
        router.release(result.flow)
        router.release(result.flow)
        assert network.total_reserved_bps() == 0.0

    def test_capacity_reusable_after_release(self, network):
        router = make_router(network, members=(0,), retrials=1)
        first = router.admit(make_request(flow_id=1, members=(0,)))
        assert first.admitted
        second = router.admit(make_request(flow_id=2, members=(0,)))
        assert not second.admitted
        router.release(first.flow)
        third = router.admit(make_request(flow_id=3, members=(0,)))
        assert third.admitted


class TestCounters:
    def test_router_statistics(self, network):
        router = make_router(network, members=(0,), retrials=1)
        router.admit(make_request(flow_id=1, members=(0,)))
        router.admit(make_request(flow_id=2, members=(0,)))  # rejected
        assert router.requests_seen == 2
        assert router.requests_admitted == 1
        assert router.admission_ratio == pytest.approx(0.5)
        assert router.mean_attempts == pytest.approx(1.0)

    def test_fresh_router_ratios_zero(self, network):
        router = make_router(network)
        assert router.admission_ratio == 0.0
        assert router.mean_attempts == 0.0


class TestHistoryIntegration:
    def test_failures_feed_selector_history(self, network):
        from repro.core.selection import DistanceHistoryWeighted

        network.link(1, 0).reserve("blocker", 64_000.0)
        router = make_router(
            network, retrials=2, selector_class=DistanceHistoryWeighted
        )
        router.admit(make_request(flow_id=1))
        history = router.selector.history
        assert history.failures_of(0) >= 1 or history.failures_of(3) >= 1
