"""Unit tests for local admission history (repro.core.history)."""

import pytest

from repro.core.history import AdmissionHistory
from repro.flows.group import AnycastGroup


@pytest.fixture
def group() -> AnycastGroup:
    return AnycastGroup("A", (0, 4, 8))


class TestInitialization:
    def test_counters_start_at_zero(self, group):
        history = AdmissionHistory(group)
        assert history.counters() == (0, 0, 0)
        assert history.clean_member_count == 3


class TestUpdates:
    def test_failure_increments(self, group):
        history = AdmissionHistory(group)
        history.record_failure(4)
        history.record_failure(4)
        assert history.failures_of(4) == 2
        assert history.counters() == (0, 2, 0)

    def test_success_resets(self, group):
        history = AdmissionHistory(group)
        history.record_failure(4)
        history.record_failure(4)
        history.record_success(4)
        assert history.failures_of(4) == 0

    def test_counters_are_per_member(self, group):
        history = AdmissionHistory(group)
        history.record_failure(0)
        history.record_failure(8)
        history.record_failure(8)
        assert history.counters() == (1, 0, 2)

    def test_success_only_resets_its_member(self, group):
        history = AdmissionHistory(group)
        history.record_failure(0)
        history.record_failure(4)
        history.record_success(0)
        assert history.counters() == (0, 1, 0)

    def test_clean_member_count(self, group):
        history = AdmissionHistory(group)
        history.record_failure(0)
        history.record_failure(4)
        assert history.clean_member_count == 1

    def test_totals(self, group):
        history = AdmissionHistory(group)
        history.record_failure(0)
        history.record_success(0)
        history.record_success(4)
        assert history.total_failures == 1
        assert history.total_successes == 2

    def test_unknown_member_raises(self, group):
        history = AdmissionHistory(group)
        with pytest.raises(ValueError):
            history.record_failure(99)
        with pytest.raises(ValueError):
            history.record_success(99)

    def test_reset_restores_initial_state(self, group):
        history = AdmissionHistory(group)
        history.record_failure(0)
        history.record_failure(4)
        history.reset()
        assert history.counters() == (0, 0, 0)

    def test_iteration_yields_counters(self, group):
        history = AdmissionHistory(group)
        history.record_failure(8)
        assert list(history) == [0, 0, 1]
