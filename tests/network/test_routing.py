"""Unit tests for routing (repro.network.routing)."""

import networkx as nx
import pytest

from repro.network.routing import (
    Route,
    RouteTable,
    all_shortest_path_lengths,
    feasible_path,
    k_shortest_paths,
    shortest_path,
)
from repro.network.topologies import line, mci_backbone, star
from repro.network.topology import Network, NetworkError


def build_diamond() -> Network:
    """0 -> {1, 2} -> 3, all links 100 bps."""
    net = Network("diamond")
    net.add_link(0, 1, capacity_bps=100.0)
    net.add_link(0, 2, capacity_bps=100.0)
    net.add_link(1, 3, capacity_bps=100.0)
    net.add_link(2, 3, capacity_bps=100.0)
    return net


class TestShortestPath:
    def test_trivial_self_path(self):
        net = build_diamond()
        assert shortest_path(net, 0, 0) == [0]

    def test_line_path(self):
        net = line(5)
        assert shortest_path(net, 0, 4) == [0, 1, 2, 3, 4]

    def test_deterministic_tie_break(self):
        net = build_diamond()
        # Both 0-1-3 and 0-2-3 are two hops; BFS over sorted neighbors
        # must always return 0-1-3.
        for _ in range(5):
            assert shortest_path(net, 0, 3) == [0, 1, 3]

    def test_unknown_nodes_raise(self):
        net = build_diamond()
        with pytest.raises(NetworkError):
            shortest_path(net, 99, 0)
        with pytest.raises(NetworkError):
            shortest_path(net, 0, 99)

    def test_unreachable_returns_none(self):
        net = Network()
        net.add_link(0, 1, capacity_bps=1.0)
        net.add_node("island")
        assert shortest_path(net, 0, "island") is None

    def test_matches_networkx_hop_counts(self):
        net = mci_backbone()
        graph = net.to_networkx()
        for source in (1, 7, 13):
            for target in (0, 4, 8, 12, 16):
                ours = shortest_path(net, source, target)
                reference = nx.shortest_path_length(graph, source, target)
                assert len(ours) - 1 == reference

    def test_min_available_filters_links(self):
        net = build_diamond()
        net.link(0, 1).reserve("blocker", 100.0)
        assert shortest_path(net, 0, 3, min_available_bps=50.0) == [0, 2, 3]

    def test_min_available_unreachable(self):
        net = line(3)
        net.link(1, 2).reserve("blocker", net.link(1, 2).capacity_bps)
        assert shortest_path(net, 0, 2, min_available_bps=1.0) is None


class TestFeasiblePath:
    def test_respects_bandwidth(self):
        net = build_diamond()
        net.link(0, 1).reserve("f", 60.0)
        assert feasible_path(net, 0, 3, bandwidth_bps=50.0) == [0, 2, 3]
        assert feasible_path(net, 0, 3, bandwidth_bps=30.0) == [0, 1, 3]

    def test_none_when_saturated(self):
        net = line(3)
        net.link(0, 1).reserve("f", 100.0 * 64_000 // 320)  # partial
        net.link(0, 1).release("f")
        net.link(0, 1).reserve("f", net.link(0, 1).capacity_bps)
        assert feasible_path(net, 0, 2, bandwidth_bps=1.0) is None


class TestAllShortestPathLengths:
    def test_line_distances(self):
        net = line(4)
        distances = all_shortest_path_lengths(net, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_star_distances(self):
        net = star(4)
        distances = all_shortest_path_lengths(net, 1)
        assert distances[0] == 1
        assert distances[2] == 2


class TestKShortestPaths:
    def test_returns_distinct_loop_free_paths(self):
        net = build_diamond()
        paths = k_shortest_paths(net, 0, 3, k=3)
        assert paths[0] == [0, 1, 3]
        assert paths[1] == [0, 2, 3]
        assert len(paths) == 2  # only two loop-free paths exist
        for path in paths:
            assert len(set(path)) == len(path)

    def test_k_one_equals_shortest(self):
        net = mci_backbone()
        assert k_shortest_paths(net, 1, 8, k=1) == [shortest_path(net, 1, 8)]

    def test_paths_sorted_by_length(self):
        net = mci_backbone()
        paths = k_shortest_paths(net, 1, 12, k=5)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_invalid_k(self):
        net = build_diamond()
        with pytest.raises(ValueError):
            k_shortest_paths(net, 0, 3, k=0)

    def test_unreachable_returns_empty(self):
        net = Network()
        net.add_link(0, 1, capacity_bps=1.0)
        net.add_node(9)
        assert k_shortest_paths(net, 0, 9, k=3) == []


class TestRoute:
    def test_distance_counts_hops(self):
        route = Route(source=0, destination=3, path=(0, 1, 3))
        assert route.distance == 2

    def test_degenerate_distance_zero(self):
        route = Route(source=0, destination=0, path=(0,))
        assert route.distance == 0

    def test_bottleneck(self):
        net = build_diamond()
        net.link(1, 3).reserve("f", 75.0)
        route = Route(source=0, destination=3, path=(0, 1, 3))
        assert route.bottleneck_bps(net) == pytest.approx(25.0)

    def test_str(self):
        route = Route(source=0, destination=3, path=(0, 1, 3))
        assert str(route) == "0->1->3"


class TestRouteTable:
    def test_routes_in_member_order(self):
        net = mci_backbone()
        table = RouteTable(net, 1, (0, 4, 8, 12, 16))
        assert table.members == (0, 4, 8, 12, 16)
        for member, route in zip(table.members, table.routes()):
            assert route.destination == member
            assert route.path[0] == 1

    def test_distances_consistent(self):
        net = mci_backbone()
        table = RouteTable(net, 1, (0, 4, 8, 12, 16))
        assert table.distances() == [r.distance for r in table.routes()]

    def test_shortest_member(self):
        net = line(5)
        table = RouteTable(net, 1, (0, 4))
        assert table.shortest_member() == 0  # 1 hop vs 3 hops

    def test_shortest_member_tie_prefers_first(self):
        net = line(5)
        table = RouteTable(net, 2, (0, 4))
        assert table.shortest_member() == 0  # both 2 hops; first in order

    def test_route_to_unknown_member_raises(self):
        net = line(5)
        table = RouteTable(net, 1, (0, 4))
        with pytest.raises(NetworkError):
            table.route_to(2)

    def test_empty_group_rejected(self):
        net = line(3)
        with pytest.raises(NetworkError):
            RouteTable(net, 0, ())

    def test_unreachable_member_rejected(self):
        net = Network()
        net.add_link(0, 1, capacity_bps=1.0)
        net.add_node("island")
        with pytest.raises(NetworkError):
            RouteTable(net, 0, (1, "island"))

    def test_source_in_group_gets_zero_hop_route(self):
        net = line(3)
        table = RouteTable(net, 0, (0, 2))
        assert table.route_to(0).distance == 0
        assert table.route_to(0).path == (0,)

    def test_len(self):
        net = line(5)
        assert len(RouteTable(net, 1, (0, 4))) == 2
