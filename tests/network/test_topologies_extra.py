"""Unit tests for the additional canned topologies."""

import networkx as nx
import pytest

from repro.network.topologies import (
    ABILENE_EDGES,
    abilene,
    binary_tree,
    dumbbell,
    ring,
)


def undirected(network):
    return network.to_networkx().to_undirected()


class TestAbilene:
    def test_eleven_nodes(self):
        net = abilene()
        assert net.node_count == 11
        assert net.link_count == 2 * len(ABILENE_EDGES)

    def test_connected(self):
        assert nx.is_connected(undirected(abilene()))

    def test_no_duplicate_edges(self):
        assert len(set(map(frozenset, ABILENE_EDGES))) == len(ABILENE_EDGES)


class TestRing:
    def test_structure(self):
        net = ring(6)
        assert net.node_count == 6
        assert net.link_count == 12
        for node in net.nodes():
            assert net.degree(node) == 2

    def test_two_disjoint_paths_between_any_pair(self):
        graph = undirected(ring(8))
        assert nx.edge_connectivity(graph) == 2

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ring(2)


class TestBinaryTree:
    def test_node_count(self):
        assert binary_tree(1).node_count == 3
        assert binary_tree(3).node_count == 15

    def test_is_a_tree(self):
        graph = undirected(binary_tree(3))
        assert nx.is_tree(graph)

    def test_leaf_degrees(self):
        net = binary_tree(2)  # 7 nodes; leaves are 3..6
        for leaf in (3, 4, 5, 6):
            assert net.degree(leaf) == 1
        assert net.degree(0) == 2

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            binary_tree(0)


class TestDumbbell:
    def test_structure(self):
        net = dumbbell(3, bottleneck_capacity_bps=128_000.0)
        assert net.node_count == 8
        assert net.link(0, 1).capacity_bps == 128_000.0
        assert net.link(0, 10).capacity_bps > 128_000.0

    def test_bottleneck_limits_cross_traffic(self):
        """Only the bottleneck constrains left->right flows."""
        net = dumbbell(2, bottleneck_capacity_bps=64_000.0)
        assert net.reserve_path((10, 0, 1, 100), "f1", 64_000.0)
        assert not net.reserve_path((11, 0, 1, 101), "f2", 64_000.0)
        # Local traffic is unaffected.
        assert net.reserve_path((10, 0), "f3", 64_000.0)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            dumbbell(0, bottleneck_capacity_bps=1.0)


class TestDumbbellAdmissionScenario:
    def test_anycast_spares_the_bottleneck(self):
        """A member on each side: selection should avoid the thin core.

        With GDI (which minimizes hops) left clients use the left
        member and never cross the bottleneck; SP from a right client
        to a left-listed-first group would cross it.  This is the
        canonical 'why destination selection matters' scenario.
        """
        from repro.baselines.gdi import GDIController
        from repro.flows.flow import FlowRequest
        from repro.flows.group import AnycastGroup
        from repro.flows.qos import QoSRequirement

        net = dumbbell(2, bottleneck_capacity_bps=64_000.0)
        group = AnycastGroup("A", (10, 100))  # one member per side
        gdi = GDIController(net, group)
        # Left clients (11) and right clients (101) each admit locally.
        for flow_id, source in enumerate((11, 101, 11, 101)):
            request = FlowRequest(
                flow_id=flow_id,
                source=source,
                group=group,
                qos=QoSRequirement(bandwidth_bps=64_000.0),
            )
            result = gdi.admit(request)
            assert result.admitted
        # The bottleneck never carried a flow.
        assert net.link(0, 1).flow_count == 0
        assert net.link(1, 0).flow_count == 0
