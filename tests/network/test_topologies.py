"""Unit tests for canned topologies (repro.network.topologies)."""

import networkx as nx
import pytest

from repro.network.topologies import (
    ANYCAST_CAPACITY_BPS,
    FLOW_BANDWIDTH_BPS,
    MCI_EDGES,
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    TRUNKS_PER_LINK,
    grid,
    line,
    mci_backbone,
    nsfnet,
    star,
    waxman_random,
)


def is_connected(network) -> bool:
    graph = network.to_networkx().to_undirected()
    return nx.is_connected(graph)


class TestPaperConstants:
    def test_anycast_share_of_link(self):
        # 20 % of 100 Mbit/s.
        assert ANYCAST_CAPACITY_BPS == 20_000_000

    def test_trunk_count(self):
        assert TRUNKS_PER_LINK == 312
        assert TRUNKS_PER_LINK == int(ANYCAST_CAPACITY_BPS // FLOW_BANDWIDTH_BPS)

    def test_sources_are_odd_routers(self):
        assert MCI_SOURCES == (1, 3, 5, 7, 9, 11, 13, 15, 17)

    def test_group_members_match_paper(self):
        assert MCI_GROUP_MEMBERS == (0, 4, 8, 12, 16)


class TestMciBackbone:
    def test_nineteen_nodes(self):
        net = mci_backbone()
        assert net.node_count == 19
        assert sorted(net.nodes()) == list(range(19))

    def test_edge_count(self):
        net = mci_backbone()
        assert net.link_count == 2 * len(MCI_EDGES)

    def test_connected(self):
        assert is_connected(mci_backbone())

    def test_default_capacity_is_anycast_share(self):
        net = mci_backbone()
        for link in net.links():
            assert link.capacity_bps == ANYCAST_CAPACITY_BPS

    def test_custom_capacity(self):
        net = mci_backbone(capacity_bps=1_000.0)
        assert next(iter(net.links())).capacity_bps == 1_000.0

    def test_no_duplicate_edges(self):
        assert len(set(map(frozenset, MCI_EDGES))) == len(MCI_EDGES)

    def test_all_sources_and_members_present(self):
        net = mci_backbone()
        for node in MCI_SOURCES + MCI_GROUP_MEMBERS:
            assert net.has_node(node)

    def test_reasonable_degrees(self):
        net = mci_backbone()
        degrees = [net.degree(node) for node in net.nodes()]
        assert min(degrees) >= 2
        assert max(degrees) <= 6


class TestNsfnet:
    def test_fourteen_nodes(self):
        assert nsfnet().node_count == 14

    def test_connected(self):
        assert is_connected(nsfnet())


class TestGenerators:
    def test_line_structure(self):
        net = line(4)
        assert net.node_count == 4
        assert net.link_count == 6
        assert net.has_link(0, 1) and net.has_link(2, 3)

    def test_line_too_short_rejected(self):
        with pytest.raises(ValueError):
            line(1)

    def test_star_structure(self):
        net = star(5)
        assert net.node_count == 6
        assert net.degree(0) == 5
        for leaf in range(1, 6):
            assert net.degree(leaf) == 1

    def test_star_needs_leaf(self):
        with pytest.raises(ValueError):
            star(0)

    def test_grid_structure(self):
        net = grid(3, 4)
        assert net.node_count == 12
        # 3*3 horizontal + 2*4 vertical = 17 physical edges.
        assert net.link_count == 2 * 17
        assert is_connected(net)

    def test_grid_invalid_dimensions(self):
        with pytest.raises(ValueError):
            grid(0, 4)

    def test_waxman_connected_and_deterministic(self):
        a = waxman_random(15, seed=3)
        b = waxman_random(15, seed=3)
        assert is_connected(a)
        assert sorted(
            (l.source, l.target) for l in a.links()
        ) == sorted((l.source, l.target) for l in b.links())

    def test_waxman_seeds_differ(self):
        a = waxman_random(15, seed=3)
        b = waxman_random(15, seed=4)
        edges_a = sorted((l.source, l.target) for l in a.links())
        edges_b = sorted((l.source, l.target) for l in b.links())
        assert edges_a != edges_b

    def test_waxman_stores_positions(self):
        net = waxman_random(5, seed=0)
        x, y = net.node_attributes(0)["pos"]
        assert 0.0 <= x < 1.0 and 0.0 <= y < 1.0

    def test_waxman_parameter_validation(self):
        with pytest.raises(ValueError):
            waxman_random(1)
        with pytest.raises(ValueError):
            waxman_random(5, alpha=0.0)
        with pytest.raises(ValueError):
            waxman_random(5, beta=1.5)

    def test_waxman_density_grows_with_alpha(self):
        sparse = waxman_random(25, alpha=0.1, seed=5)
        dense = waxman_random(25, alpha=0.9, seed=5)
        assert dense.link_count > sparse.link_count
