"""Unit tests for bandwidth views (repro.network.state)."""

import pytest

from repro.network.state import LiveBandwidthView, SnapshotBandwidthView
from repro.network.topologies import line


@pytest.fixture
def network():
    return line(4, capacity_bps=10 * 64_000.0)


PATH = (0, 1, 2, 3)


class TestLiveView:
    def test_reflects_current_state(self, network):
        view = LiveBandwidthView(network)
        assert view.path_available_bps(PATH) == 10 * 64_000.0
        network.link(1, 2).reserve("f", 64_000.0)
        assert view.path_available_bps(PATH) == 9 * 64_000.0


class TestSnapshotView:
    def test_serves_stale_values_within_period(self, network):
        clock = {"t": 0.0}
        view = SnapshotBandwidthView(network, lambda: clock["t"], 10.0)
        assert view.path_available_bps(PATH) == 10 * 64_000.0
        network.link(1, 2).reserve("f", 64_000.0)
        clock["t"] = 5.0  # still inside the snapshot lifetime
        assert view.path_available_bps(PATH) == 10 * 64_000.0
        assert view.refreshes == 1

    def test_refreshes_after_period(self, network):
        clock = {"t": 0.0}
        view = SnapshotBandwidthView(network, lambda: clock["t"], 10.0)
        view.path_available_bps(PATH)
        network.link(1, 2).reserve("f", 64_000.0)
        clock["t"] = 10.0
        assert view.path_available_bps(PATH) == 9 * 64_000.0
        assert view.refreshes == 2

    def test_zero_period_is_always_fresh(self, network):
        clock = {"t": 0.0}
        view = SnapshotBandwidthView(network, lambda: clock["t"], 0.0)
        view.path_available_bps(PATH)
        network.link(1, 2).reserve("f", 64_000.0)
        assert view.path_available_bps(PATH) == 9 * 64_000.0

    def test_age_tracking(self, network):
        clock = {"t": 0.0}
        view = SnapshotBandwidthView(network, lambda: clock["t"], 100.0)
        assert view.age_s == float("inf")
        view.path_available_bps(PATH)
        clock["t"] = 7.0
        assert view.age_s == 7.0

    def test_degenerate_path_is_infinite(self, network):
        clock = {"t": 0.0}
        view = SnapshotBandwidthView(network, lambda: clock["t"], 10.0)
        assert view.path_available_bps((0,)) == float("inf")

    def test_negative_period_rejected(self, network):
        with pytest.raises(ValueError):
            SnapshotBandwidthView(network, lambda: 0.0, -1.0)


class TestSelectorIntegration:
    def test_wddb_with_stale_view_ignores_recent_load(self):
        from repro.core.selection import (
            DistanceBandwidthWeighted,
            SelectionContext,
        )
        from repro.flows.group import AnycastGroup
        from repro.network.routing import RouteTable

        # Symmetric geometry: node 2 sits two hops from both members.
        network = line(5, capacity_bps=10 * 64_000.0)
        clock = {"t": 0.0}
        group = AnycastGroup("A", (0, 4))
        routes = RouteTable(network, 2, (0, 4))
        context = SelectionContext(network=network, routes=routes, group=group)
        stale = DistanceBandwidthWeighted(
            context,
            view=SnapshotBandwidthView(network, lambda: clock["t"], 60.0),
        )
        fresh = DistanceBandwidthWeighted(context)
        assert stale.weights() == pytest.approx([0.5, 0.5])
        # Saturate the route toward node 4 after the snapshot.
        network.link(2, 3).reserve("f", 10 * 64_000.0)
        clock["t"] = 1.0
        assert fresh.weights() == pytest.approx([1.0, 0.0])
        assert stale.weights() == pytest.approx([0.5, 0.5])  # stale!

    def test_build_system_requires_clock_for_staleness(self):
        from repro.core.system import SystemSpec, build_system
        from repro.flows.group import AnycastGroup
        from repro.network.topologies import mci_backbone
        from repro.sim.random_streams import StreamFactory

        with pytest.raises(ValueError):
            build_system(
                SystemSpec("WD/D+B", retrials=2, bandwidth_refresh_s=5.0),
                mci_backbone(),
                (1, 3),
                AnycastGroup("A", (0, 4)),
                StreamFactory(0),
            )

    def test_simulation_runs_with_staleness(self):
        from repro.core.system import SystemSpec
        from repro.flows.group import AnycastGroup
        from repro.flows.traffic import WorkloadSpec
        from repro.network.topologies import (
            MCI_GROUP_MEMBERS,
            MCI_SOURCES,
            mci_backbone,
        )
        from repro.sim.simulation import run_simulation

        workload = WorkloadSpec(
            arrival_rate=30.0,
            sources=MCI_SOURCES,
            group=AnycastGroup("A", MCI_GROUP_MEMBERS),
            mean_lifetime_s=30.0,
        )
        result = run_simulation(
            network_factory=mci_backbone,
            system_spec=SystemSpec("WD/D+B", retrials=2, bandwidth_refresh_s=5.0),
            workload=workload,
            warmup_s=50.0,
            measure_s=150.0,
            seed=8,
        )
        assert 0.0 < result.admission_probability <= 1.0
