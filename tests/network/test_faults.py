"""Unit tests for link faults (repro.network.faults)."""

import pytest

from repro.network.faults import (
    FaultAwareReservationEngine,
    FaultInjector,
    FaultState,
)
from repro.network.routing import Route
from repro.network.topologies import line, mci_backbone
from repro.sim.engine import Simulator
from repro.sim.random_streams import StreamFactory


@pytest.fixture
def network():
    return line(4, capacity_bps=10 * 64_000.0)


class TestFaultState:
    def test_fail_and_repair_cycle(self, network):
        faults = FaultState(network)
        assert not faults.is_down(1, 2)
        faults.fail(1, 2)
        assert faults.is_down(1, 2)
        assert faults.is_down(2, 1)  # cables fail in both directions
        faults.repair(1, 2)
        assert not faults.is_down(1, 2)

    def test_fail_releases_crossing_reservations(self, network):
        faults = FaultState(network)
        network.link(1, 2).reserve("f1", 64_000.0)
        network.link(2, 1).reserve("f2", 64_000.0)
        network.link(0, 1).reserve("f1", 64_000.0)  # other hop of f1
        killed = faults.fail(1, 2)
        assert set(killed) == {"f1", "f2"}
        assert network.link(1, 2).flow_count == 0
        assert network.link(2, 1).flow_count == 0
        # Reservations elsewhere survive until the caller cleans up.
        assert network.link(0, 1).holds("f1")

    def test_double_fail_is_idempotent(self, network):
        faults = FaultState(network)
        faults.fail(1, 2)
        assert faults.fail(1, 2) == []
        assert len([e for e in faults.events if e.failed]) == 1

    def test_repair_unfailed_is_noop(self, network):
        faults = FaultState(network)
        faults.repair(1, 2)
        assert faults.events == []

    def test_unknown_cable_rejected(self, network):
        faults = FaultState(network)
        with pytest.raises(ValueError):
            faults.fail(0, 3)

    def test_path_is_up(self, network):
        faults = FaultState(network)
        assert faults.path_is_up((0, 1, 2, 3))
        faults.fail(2, 3)
        assert not faults.path_is_up((0, 1, 2, 3))
        assert faults.path_is_up((0, 1, 2))

    def test_down_cables_listing(self, network):
        faults = FaultState(network)
        faults.fail(2, 3)
        faults.fail(0, 1)
        assert faults.down_cables() == [(0, 1), (2, 3)]

    def test_events_trace(self, network):
        faults = FaultState(network)
        faults.fail(1, 2, now=5.0)
        faults.repair(1, 2, now=9.0)
        assert [(e.time, e.failed) for e in faults.events] == [
            (5.0, True),
            (9.0, False),
        ]


class TestFaultAwareReservation:
    ROUTE = Route(source=0, destination=3, path=(0, 1, 2, 3))

    def test_refuses_failed_routes(self, network):
        faults = FaultState(network)
        engine = FaultAwareReservationEngine(network, faults)
        faults.fail(1, 2)
        assert not engine.try_reserve(self.ROUTE, "f", 64_000.0)
        assert engine.failures == 1
        assert network.total_reserved_bps() == 0.0

    def test_reserves_healthy_routes(self, network):
        faults = FaultState(network)
        engine = FaultAwareReservationEngine(network, faults)
        assert engine.try_reserve(self.ROUTE, "f", 64_000.0)
        assert network.link(1, 2).holds("f")

    def test_release_tolerates_partially_dropped_flows(self, network):
        faults = FaultState(network)
        engine = FaultAwareReservationEngine(network, faults)
        engine.try_reserve(self.ROUTE, "f", 64_000.0)
        faults.fail(1, 2)  # drops the (1,2) leg of the flow
        engine.release(self.ROUTE.path, "f")  # must not raise
        assert network.total_reserved_bps() == 0.0


class TestFaultInjector:
    def test_injects_and_repairs(self):
        network = mci_backbone()
        faults = FaultState(network)
        simulator = Simulator()
        injector = FaultInjector(
            simulator,
            faults,
            StreamFactory(1).stream("faults"),
            mean_time_to_failure_s=50.0,
            mean_time_to_repair_s=10.0,
        )
        injector.start()
        simulator.run(until=500.0)
        assert injector.failures_injected > 0
        fails = [e for e in faults.events if e.failed]
        repairs = [e for e in faults.events if not e.failed]
        assert len(fails) >= len(repairs) >= 1

    def test_on_fail_callback_receives_killed_flows(self):
        network = line(3, capacity_bps=64_000.0)
        network.link(0, 1).reserve("victim", 64_000.0)
        faults = FaultState(network)
        simulator = Simulator()
        observed = []
        injector = FaultInjector(
            simulator,
            faults,
            StreamFactory(2).stream("faults"),
            mean_time_to_failure_s=1.0,
            mean_time_to_repair_s=1000.0,
            cables=[(0, 1)],
            on_fail=lambda cable, killed: observed.append((cable, killed)),
        )
        injector.start()
        simulator.run(until=50.0)
        assert observed
        cable, killed = observed[0]
        assert cable == (0, 1)
        assert killed == ["victim"]

    def test_parameter_validation(self):
        network = line(3)
        with pytest.raises(ValueError):
            FaultInjector(
                Simulator(),
                FaultState(network),
                StreamFactory(0).stream("f"),
                mean_time_to_failure_s=0.0,
                mean_time_to_repair_s=1.0,
            )


class TestInjectorStop:
    def test_stop_lets_calendar_drain(self):
        network = mci_backbone()
        faults = FaultState(network)
        simulator = Simulator()
        injector = FaultInjector(
            simulator,
            faults,
            StreamFactory(3).stream("faults"),
            mean_time_to_failure_s=10.0,
            mean_time_to_repair_s=5.0,
        )
        injector.start()
        simulator.run(until=100.0)
        injector.stop()
        simulator.run()  # must terminate: timers are now no-ops
        assert simulator.peek() is None

    def test_no_failures_after_stop(self):
        network = mci_backbone()
        faults = FaultState(network)
        simulator = Simulator()
        injector = FaultInjector(
            simulator,
            faults,
            StreamFactory(4).stream("faults"),
            mean_time_to_failure_s=10.0,
            mean_time_to_repair_s=5.0,
        )
        injector.start()
        simulator.run(until=50.0)
        injector.stop()
        before = injector.failures_injected
        simulator.run()
        assert injector.failures_injected == before


class TestIdempotentRelease:
    """Regression: fail -> repair -> late release must be a no-op replay.

    A flow killed by a fault has already lost its reservations on the
    failed cable (and, via the kill callback, everywhere else).  The
    flow's departure timer still fires later and calls release again;
    that late release must not raise and must not disturb bandwidth
    reserved since (e.g. by flows admitted after the repair).
    """

    ROUTE = Route(source=0, destination=3, path=(0, 1, 2, 3))

    def test_fail_repair_then_late_release(self, network):
        faults = FaultState(network)
        engine = FaultAwareReservationEngine(network, faults)
        assert engine.try_reserve(self.ROUTE, "victim", 64_000.0)

        killed = faults.fail(1, 2)
        assert killed == ["victim"]
        # The kill callback's end-to-end teardown (idempotent by path).
        engine.release(self.ROUTE.path, "victim")
        faults.repair(1, 2)

        # A new flow reuses the capacity after the repair.
        assert engine.try_reserve(self.ROUTE, "survivor", 64_000.0)
        reserved_before = network.total_reserved_bps()

        # The victim's departure fires long after fail/repair: both the
        # second and an accidental third release must be no-ops.
        engine.release(self.ROUTE.path, "victim")
        engine.release(self.ROUTE.path, "victim")
        assert network.total_reserved_bps() == reserved_before
        for u, v in zip(self.ROUTE.path, self.ROUTE.path[1:]):
            assert network.link(u, v).holds("survivor")
            assert not network.link(u, v).holds("victim")

    def test_release_after_partial_fault_teardown(self, network):
        faults = FaultState(network)
        engine = FaultAwareReservationEngine(network, faults)
        assert engine.try_reserve(self.ROUTE, "f", 64_000.0)
        # The fault only strips the failed cable's own reservations...
        faults.fail(2, 3)
        assert network.link(0, 1).holds("f")
        # ...so release must clean the survivors and skip the rest.
        engine.release(self.ROUTE.path, "f")
        engine.release(self.ROUTE.path, "f")  # idempotent replay
        assert network.total_reserved_bps() == 0.0


class TestInjectorStopCancels:
    def _injector(self, seed):
        network = mci_backbone()
        faults = FaultState(network)
        simulator = Simulator()
        injector = FaultInjector(
            simulator,
            faults,
            StreamFactory(seed).stream("faults"),
            mean_time_to_failure_s=10.0,
            mean_time_to_repair_s=5.0,
        )
        return simulator, injector

    def test_stop_cancels_pending_timers(self):
        simulator, injector = self._injector(5)
        injector.start()
        simulator.run(until=30.0)
        assert simulator.pending_count > 0
        injector.stop()
        # Cancellation empties the calendar immediately -- no need to
        # run the clock forward through dead timers.
        assert simulator.pending_count == 0
        assert simulator.peek() is None

    def test_stop_freezes_fault_state(self):
        simulator, injector = self._injector(6)
        injector.start()
        simulator.run(until=50.0)
        injector.stop()
        down_before = injector.faults.down_cables()
        transitions_before = len(injector.faults.events)
        simulator.run()
        assert injector.faults.down_cables() == down_before
        assert len(injector.faults.events) == transitions_before

    def test_restart_after_stop(self):
        simulator, injector = self._injector(7)
        injector.start()
        simulator.run(until=50.0)
        injector.stop()
        injector.start()  # re-arm: injection resumes
        before = injector.failures_injected
        simulator.run(until=200.0)
        assert injector.failures_injected > before
        injector.stop()
        simulator.run()
        assert simulator.peek() is None
