"""Unit tests for capacitated links (repro.network.link)."""

import pytest

from repro.network.link import InsufficientBandwidthError, Link


class TestConstruction:
    def test_attributes(self):
        link = Link(0, 1, capacity_bps=1000.0, propagation_delay_s=0.01)
        assert link.source == 0
        assert link.target == 1
        assert link.capacity_bps == 1000.0
        assert link.propagation_delay_s == 0.01

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Link(0, 1, capacity_bps=-1.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Link(0, 1, capacity_bps=1.0, propagation_delay_s=-0.1)

    def test_initially_empty(self):
        link = Link(0, 1, capacity_bps=1000.0)
        assert link.reserved_bps == 0.0
        assert link.available_bps == 1000.0
        assert link.flow_count == 0
        assert link.utilization == 0.0


class TestReservation:
    def test_reserve_reduces_available(self):
        link = Link(0, 1, capacity_bps=1000.0)
        link.reserve("f1", 300.0)
        assert link.reserved_bps == 300.0
        assert link.available_bps == 700.0
        assert link.holds("f1")
        assert link.reservation_of("f1") == 300.0

    def test_reserve_over_capacity_raises(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 80.0)
        with pytest.raises(InsufficientBandwidthError):
            link.reserve("f2", 30.0)
        assert link.rejections == 1
        assert not link.holds("f2")

    def test_exact_fill_allowed(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 100.0)
        assert link.available_bps == pytest.approx(0.0)

    def test_double_reservation_same_flow_rejected(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 10.0)
        with pytest.raises(ValueError):
            link.reserve("f1", 10.0)

    def test_negative_bandwidth_rejected(self):
        link = Link(0, 1, capacity_bps=100.0)
        with pytest.raises(ValueError):
            link.reserve("f1", -5.0)

    def test_zero_bandwidth_reservation_allowed(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 0.0)
        assert link.holds("f1")
        assert link.available_bps == 100.0

    def test_grants_counter(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 10.0)
        link.reserve("f2", 10.0)
        assert link.grants == 2

    def test_many_flows_sum(self):
        link = Link(0, 1, capacity_bps=640.0)
        for i in range(10):
            link.reserve(i, 64.0)
        assert link.flow_count == 10
        assert link.available_bps == pytest.approx(0.0)
        assert set(link.flows()) == set(range(10))


class TestRelease:
    def test_release_returns_bandwidth(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 40.0)
        released = link.release("f1")
        assert released == 40.0
        assert link.available_bps == 100.0
        assert not link.holds("f1")

    def test_release_unknown_flow_raises(self):
        link = Link(0, 1, capacity_bps=100.0)
        with pytest.raises(KeyError):
            link.release("ghost")

    def test_release_if_held(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 40.0)
        assert link.release_if_held("f1") == 40.0
        assert link.release_if_held("f1") == 0.0

    def test_reserve_after_release_succeeds(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 100.0)
        link.release("f1")
        link.reserve("f2", 100.0)
        assert link.holds("f2")


class TestCanAdmit:
    def test_can_admit_respects_available(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 60.0)
        assert link.can_admit(40.0)
        assert not link.can_admit(41.0)

    def test_float_tolerance_on_exact_boundary(self):
        link = Link(0, 1, capacity_bps=0.3)
        link.reserve("a", 0.1)
        link.reserve("b", 0.1)
        # 0.3 - 0.1 - 0.1 may be 0.09999...; tolerance must accept 0.1.
        assert link.can_admit(0.1)
