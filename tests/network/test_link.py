"""Unit tests for capacitated links (repro.network.link)."""

import pytest

from repro.network.link import InsufficientBandwidthError, Link


class TestConstruction:
    def test_attributes(self):
        link = Link(0, 1, capacity_bps=1000.0, propagation_delay_s=0.01)
        assert link.source == 0
        assert link.target == 1
        assert link.capacity_bps == 1000.0
        assert link.propagation_delay_s == 0.01

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Link(0, 1, capacity_bps=-1.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Link(0, 1, capacity_bps=1.0, propagation_delay_s=-0.1)

    def test_initially_empty(self):
        link = Link(0, 1, capacity_bps=1000.0)
        assert link.reserved_bps == 0.0
        assert link.available_bps == 1000.0
        assert link.flow_count == 0
        assert link.utilization == 0.0


class TestReservation:
    def test_reserve_reduces_available(self):
        link = Link(0, 1, capacity_bps=1000.0)
        link.reserve("f1", 300.0)
        assert link.reserved_bps == 300.0
        assert link.available_bps == 700.0
        assert link.holds("f1")
        assert link.reservation_of("f1") == 300.0

    def test_reserve_over_capacity_raises(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 80.0)
        with pytest.raises(InsufficientBandwidthError):
            link.reserve("f2", 30.0)
        assert link.rejections == 1
        assert not link.holds("f2")

    def test_exact_fill_allowed(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 100.0)
        assert link.available_bps == pytest.approx(0.0)

    def test_double_reservation_same_flow_rejected(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 10.0)
        with pytest.raises(ValueError):
            link.reserve("f1", 10.0)

    def test_negative_bandwidth_rejected(self):
        link = Link(0, 1, capacity_bps=100.0)
        with pytest.raises(ValueError):
            link.reserve("f1", -5.0)

    def test_zero_bandwidth_reservation_allowed(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 0.0)
        assert link.holds("f1")
        assert link.available_bps == 100.0

    def test_grants_counter(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 10.0)
        link.reserve("f2", 10.0)
        assert link.grants == 2

    def test_many_flows_sum(self):
        link = Link(0, 1, capacity_bps=640.0)
        for i in range(10):
            link.reserve(i, 64.0)
        assert link.flow_count == 10
        assert link.available_bps == pytest.approx(0.0)
        assert set(link.flows()) == set(range(10))


class TestRelease:
    def test_release_returns_bandwidth(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 40.0)
        released = link.release("f1")
        assert released == 40.0
        assert link.available_bps == 100.0
        assert not link.holds("f1")

    def test_release_unknown_flow_raises(self):
        link = Link(0, 1, capacity_bps=100.0)
        with pytest.raises(KeyError):
            link.release("ghost")

    def test_release_if_held(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 40.0)
        assert link.release_if_held("f1") == 40.0
        assert link.release_if_held("f1") == 0.0

    def test_reserve_after_release_succeeds(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 100.0)
        link.release("f1")
        link.reserve("f2", 100.0)
        assert link.holds("f2")


class TestCanAdmit:
    def test_can_admit_respects_available(self):
        link = Link(0, 1, capacity_bps=100.0)
        link.reserve("f1", 60.0)
        assert link.can_admit(40.0)
        assert not link.can_admit(41.0)

    def test_float_tolerance_on_exact_boundary(self):
        link = Link(0, 1, capacity_bps=0.3)
        link.reserve("a", 0.1)
        link.reserve("b", 0.1)
        # 0.3 - 0.1 - 0.1 may be 0.09999...; tolerance must accept 0.1.
        assert link.can_admit(0.1)


class TestReservedDriftRegression:
    """Long reserve/release churn must not accumulate float drift.

    The running reserved total is maintained incrementally on the hot
    path; amounts whose sums are inexact in binary (0.1-style) would
    drift it away from zero over ~1e5 cycles, leaving an idle link
    that cannot admit a capacity-filling flow.  The ledger snaps the
    total back to the exact sum whenever it empties (or dips
    negative), so churn of any length leaves no residue.
    """

    CAPACITY = 20_000_000.0
    # Sums of these are inexact in binary floating point.
    AMOUNTS = (64_000.1, 33_333.333, 0.001, 123_456.789)

    def test_churn_cycles_leave_idle_link_exact(self):
        link = Link(0, 1, capacity_bps=self.CAPACITY)
        # 25k cycles x 4 flows = 1e5 reserve/release pairs.
        for cycle in range(25_000):
            for j, amount in enumerate(self.AMOUNTS):
                link.reserve((cycle, j), amount)
            for j in range(len(self.AMOUNTS)):
                link.release((cycle, j))
            # Exact zero — not approximately zero — every time the
            # ledger empties.
            assert link.reserved_bps == 0.0
        assert link.available_bps == self.CAPACITY
        # The acid test: a flow wanting every last bit still fits.
        link.reserve("full", self.CAPACITY)
        assert link.available_bps == 0.0

    def test_interleaved_churn_snaps_on_empty(self):
        """Out-of-order releases with overlapping holders."""
        link = Link(0, 1, capacity_bps=self.CAPACITY)
        for cycle in range(10_000):
            for j, amount in enumerate(self.AMOUNTS):
                link.reserve((cycle, j), amount)
            # Release in a different order than reserved.
            for j in (2, 0, 3, 1):
                link.release((cycle, j))
            assert link.reserved_bps == 0.0
        assert link.available_bps == self.CAPACITY

    def test_reserved_total_never_negative_during_churn(self):
        link = Link(0, 1, capacity_bps=self.CAPACITY)
        for cycle in range(5_000):
            link.reserve((cycle, "big"), 1e7 + 0.1)
            link.reserve((cycle, "small"), 0.3)
            link.release((cycle, "big"))
            # Ledger still holds the small flow; no negative total.
            assert link.reserved_bps >= 0.0
            link.release((cycle, "small"))
            assert link.reserved_bps == 0.0
