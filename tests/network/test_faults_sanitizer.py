"""Bandwidth conservation under link faults, with the sanitizer armed.

A cable failure kills the flows crossing it (both directions fail
together — a fiber cut), their reservations must be released along
their *whole* route, and repairs must restore full capacity.  These
tests run with the runtime sanitizer enabled, so every reserve/release
on the way is also checked against the link-accounting invariants.
"""

import pytest

from repro import invariants
from repro.core.system import SystemSpec
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.faults import FaultState
from repro.network.state import verify_network
from repro.network.topologies import (
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    line,
    mci_backbone,
)
from repro.sim.simulation import AnycastSimulation, FaultConfig


@pytest.fixture
def sanitizer():
    """Arm the sanitizer for one test, restoring the prior state."""
    previous = invariants.is_enabled()
    invariants.set_enabled(True)
    yield
    invariants.set_enabled(previous)


class TestFailRepairConservation:
    def test_fail_releases_both_directions_and_conserves(self, sanitizer):
        network = line(4)
        assert network.reserve_path([0, 1, 2, 3], "f1", 100.0)
        assert network.reserve_path([3, 2, 1, 0], "f2", 50.0)
        before = network.total_reserved_bps()
        assert before == pytest.approx(300.0 + 150.0)

        faults = FaultState(network)
        killed = faults.fail(1, 2, now=5.0)
        # Both flows crossed the failed cable, one per direction.
        assert sorted(killed, key=repr) == ["f1", "f2"]
        assert faults.is_down(1, 2) and faults.is_down(2, 1)
        # The failed cable's two directed links hold nothing now.
        assert network.link(1, 2).reserved_bps == 0.0
        assert network.link(2, 1).reserved_bps == 0.0

        # Finish the teardown along the rest of each route, as the
        # owning simulation would, then nothing may remain reserved.
        for path, flow_id in (([0, 1, 2, 3], "f1"), ([3, 2, 1, 0], "f2")):
            for link in network.path_links(path):
                link.release_if_held(flow_id)
        verify_network(network)
        assert network.total_reserved_bps() == 0.0

    def test_repair_restores_service(self, sanitizer):
        network = line(3)
        faults = FaultState(network)
        faults.fail(0, 1)
        assert faults.is_down(0, 1)
        faults.repair(0, 1)
        assert not faults.is_down(0, 1)
        assert network.reserve_path([0, 1, 2], "f1", 100.0)
        verify_network(network)
        # Fail/repair transitions were both recorded for tracing.
        assert [event.failed for event in faults.events] == [True, False]

    def test_fail_is_idempotent(self, sanitizer):
        network = line(3)
        faults = FaultState(network)
        first = faults.fail(0, 1)
        second = faults.fail(0, 1)
        assert first == [] and second == []
        assert len(faults.events) == 1


class TestFaultySimulationConservation:
    @pytest.mark.slow
    def test_faulty_run_conserves_bandwidth(self, sanitizer):
        """A full fault-injected run, sanitizer on: after every flow
        departs or is killed, no bandwidth may remain reserved."""
        simulation = AnycastSimulation(
            network_factory=mci_backbone,
            system_spec=SystemSpec("WD/D+H", retrials=2),
            workload=WorkloadSpec(
                arrival_rate=25.0,
                sources=MCI_SOURCES,
                group=AnycastGroup("A", MCI_GROUP_MEMBERS),
            ),
            warmup_s=10.0,
            measure_s=120.0,
            seed=11,
            fault_config=FaultConfig(
                mean_time_to_failure_s=20.0,
                mean_time_to_repair_s=5.0,
            ),
        )
        result = simulation.run()
        assert result.requests > 0
        # Faults must actually have fired for this test to mean much.
        assert simulation.fault_state is not None
        assert simulation.fault_state.events
        assert simulation.flows_dropped_by_faults > 0
        # Drain the departures that outlive the measurement horizon
        # (the injector is stopped, so the calendar empties).
        simulation.simulator.run()
        verify_network(simulation.network)
        assert simulation.network.total_reserved_bps() == 0.0
