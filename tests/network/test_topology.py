"""Unit tests for the network graph (repro.network.topology)."""

import pytest

from repro.network.topology import Network, NetworkError


def build_triangle() -> Network:
    net = Network("triangle")
    net.add_link(0, 1, capacity_bps=100.0)
    net.add_link(1, 2, capacity_bps=100.0)
    net.add_link(0, 2, capacity_bps=100.0)
    return net


class TestConstruction:
    def test_bidirectional_links_create_two_directions(self):
        net = Network()
        net.add_link(0, 1, capacity_bps=10.0)
        assert net.has_link(0, 1)
        assert net.has_link(1, 0)
        assert net.link_count == 2

    def test_unidirectional_link(self):
        net = Network()
        net.add_link(0, 1, capacity_bps=10.0, bidirectional=False)
        assert net.has_link(0, 1)
        assert not net.has_link(1, 0)

    def test_directions_have_independent_state(self):
        net = Network()
        net.add_link(0, 1, capacity_bps=10.0)
        net.link(0, 1).reserve("f", 10.0)
        assert net.link(0, 1).available_bps == 0.0
        assert net.link(1, 0).available_bps == 10.0

    def test_implicit_node_creation(self):
        net = Network()
        net.add_link("a", "b", capacity_bps=1.0)
        assert net.has_node("a")
        assert net.has_node("b")
        assert net.node_count == 2

    def test_self_loop_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.add_link(0, 0, capacity_bps=1.0)

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_link(0, 1, capacity_bps=1.0)
        with pytest.raises(NetworkError):
            net.add_link(0, 1, capacity_bps=2.0)

    def test_duplicate_reverse_link_rejected(self):
        net = Network()
        net.add_link(0, 1, capacity_bps=1.0)
        with pytest.raises(NetworkError):
            net.add_link(1, 0, capacity_bps=2.0)

    def test_duplicate_check_is_atomic(self):
        # A conflicting bidirectional add must not leave a half-added pair.
        net = Network()
        net.add_link(0, 1, capacity_bps=1.0, bidirectional=False)
        with pytest.raises(NetworkError):
            net.add_link(1, 0, capacity_bps=2.0, bidirectional=True)
        assert not net.has_link(1, 0)

    def test_node_attributes(self):
        net = Network()
        net.add_node("r1", kind="router")
        assert net.node_attributes("r1")["kind"] == "router"
        net.add_node("r1", region="west")
        assert net.node_attributes("r1") == {"kind": "router", "region": "west"}

    def test_unknown_node_queries_raise(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.node_attributes("ghost")
        with pytest.raises(NetworkError):
            net.neighbors("ghost")
        with pytest.raises(NetworkError):
            net.link("a", "b")


class TestTopologyQueries:
    def test_neighbors(self):
        net = build_triangle()
        assert set(net.neighbors(0)) == {1, 2}
        assert net.degree(0) == 2

    def test_nodes_in_insertion_order(self):
        net = Network()
        net.add_link(2, 0, capacity_bps=1.0)
        net.add_link(0, 1, capacity_bps=1.0)
        assert net.nodes() == [2, 0, 1]

    def test_links_iteration(self):
        net = build_triangle()
        assert len(list(net.links())) == 6


class TestPathOperations:
    def test_path_links_resolution(self):
        net = build_triangle()
        links = net.path_links([0, 1, 2])
        assert [(l.source, l.target) for l in links] == [(0, 1), (1, 2)]

    def test_path_links_empty_for_degenerate(self):
        net = build_triangle()
        assert net.path_links([0]) == []
        assert net.path_links([]) == []

    def test_path_available_is_bottleneck(self):
        net = build_triangle()
        net.link(0, 1).reserve("f", 70.0)
        assert net.path_available_bps([0, 1, 2]) == pytest.approx(30.0)

    def test_degenerate_path_available_is_infinite(self):
        net = build_triangle()
        assert net.path_available_bps([0]) == float("inf")

    def test_path_admits(self):
        net = build_triangle()
        net.link(0, 1).reserve("f", 70.0)
        assert net.path_admits([0, 1, 2], 30.0)
        assert not net.path_admits([0, 1, 2], 31.0)

    def test_reserve_path_all_or_nothing(self):
        net = build_triangle()
        net.link(1, 2).reserve("blocker", 100.0)
        assert not net.reserve_path([0, 1, 2], "f", 50.0)
        # First hop must have been rolled back.
        assert net.link(0, 1).available_bps == 100.0

    def test_reserve_and_release_path(self):
        net = build_triangle()
        assert net.reserve_path([0, 1, 2], "f", 40.0)
        assert net.link(0, 1).reservation_of("f") == 40.0
        assert net.link(1, 2).reservation_of("f") == 40.0
        net.release_path([0, 1, 2], "f")
        assert net.total_reserved_bps() == 0.0

    def test_release_path_releases_survivors_before_raising(self):
        # A fault (or lease GC) already collected the first leg; the
        # sweep must still free the second leg, then report the hole —
        # a strict hop-by-hop release would strand it (R5 regression).
        net = build_triangle()
        assert net.reserve_path([0, 1, 2], "f", 40.0)
        net.link(0, 1).release("f")
        with pytest.raises(KeyError):
            net.release_path([0, 1, 2], "f")
        assert net.total_reserved_bps() == 0.0

    def test_reserve_degenerate_path_succeeds(self):
        net = build_triangle()
        assert net.reserve_path([0], "f", 40.0)
        assert net.total_reserved_bps() == 0.0

    def test_snapshot_available(self):
        net = build_triangle()
        net.link(0, 1).reserve("f", 25.0)
        snapshot = net.snapshot_available()
        assert snapshot[(0, 1)] == 75.0
        assert snapshot[(1, 0)] == 100.0


class TestNetworkXExport:
    def test_export_preserves_structure(self):
        net = build_triangle()
        graph = net.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 6
        assert graph.edges[0, 1]["capacity_bps"] == 100.0

    def test_export_reflects_reservations(self):
        net = build_triangle()
        net.link(0, 1).reserve("f", 60.0)
        graph = net.to_networkx()
        assert graph.edges[0, 1]["available_bps"] == 40.0
