"""Unit tests for the event calendar (repro.sim.engine)."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_initial_clock_is_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(4.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.5]
        assert sim.now == 4.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(3.0, lambda: None)

    def test_nan_and_inf_times_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(float("inf"), lambda: None)

    def test_nan_and_inf_delays_rejected(self):
        # NaN fails every comparison, so it must not slip through the
        # relative-delay fast path either (math.isnan, not ``x != x``).
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(-float("inf"), lambda: None)

    def test_zero_delay_event_fires_at_current_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [1.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_count == 1

    def test_peek_skips_cancelled_head(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0
        assert sim.pending_count == 1

    def test_run_until_includes_events_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=3.0)
        assert fired == [3]

    def test_run_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        sim.run()
        assert fired == [1, 5]

    def test_stop_halts_event_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_caps_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_step_executes_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_clear_empties_calendar(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.clear()
        assert sim.pending_count == 0
        assert sim.peek() is None

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        error = {}

        def inner():
            try:
                sim.run()
            except SimulationError as exc:
                error["raised"] = exc

        sim.schedule(1.0, inner)
        sim.run()
        assert "raised" in error

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestCascades:
    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(1.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0

    def test_run_until_advances_clock_even_with_no_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0


class TestMaxEventsClockRegression:
    """``run(until=..., max_events=...)`` must not jump the clock past
    still-pending events: doing so made a later ``run()`` execute those
    events with time moving backwards."""

    def test_clock_stays_at_last_event_when_cap_fires(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run(until=10.0, max_events=2)
        assert sim.now == 2.0
        assert sim.pending_count == 1

    def test_resumed_run_never_moves_time_backwards(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: fired.append(sim.now))
        sim.run(until=10.0, max_events=2)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]
        assert fired == sorted(fired)
        assert sim.now == 10.0

    def test_clock_advances_to_until_when_cap_not_hit(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0, max_events=5)
        assert sim.now == 10.0

    def test_time_weighted_stats_survive_capped_run(self):
        """The original symptom: TimeWeightedStats raised
        'clock moved backwards' when recording in the resumed run."""
        from repro.sim.stats import TimeWeightedStats

        sim = Simulator()
        stats = TimeWeightedStats(clock=lambda: sim.now)
        stats.record(0.0)
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: stats.record(1.0))
        sim.run(until=10.0, max_events=2)
        sim.run(until=10.0)
        assert 0.0 < stats.mean < 1.0


class TestLiveCountMaintenance:
    """pending_count is now a maintained counter; these pin the
    bookkeeping against every path that could skew it."""

    def test_cancel_after_fire_is_a_counting_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        handle.cancel()
        assert sim.pending_count == 1

    def test_cancel_after_clear_is_a_counting_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.clear()
        handle.cancel()
        assert sim.pending_count == 0

    def test_interleaved_cancel_schedule_run_exact(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending_count == 5
        sim.run(until=4.0)  # fires the live events at 2.0 and 4.0
        assert sim.pending_count == 3
