"""Unit tests for flow tracing (repro.sim.trace)."""

import pytest

from repro.core.admission import AdmissionResult
from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement
from repro.sim.trace import CSV_COLUMNS, FlowRecord, TraceRecorder

GROUP = AnycastGroup("A", (0, 4))


def make_result(flow_id=0, admitted=True, attempts=1, destination=0, source=1):
    request = FlowRequest(
        flow_id=flow_id,
        source=source,
        group=GROUP,
        qos=QoSRequirement(bandwidth_bps=64_000.0),
        arrival_time=2.5,
        lifetime_s=10.0,
    )
    flow = None
    if admitted:
        flow = AdmittedFlow(
            request=request,
            destination=destination,
            path=(source, destination),
            admitted_at=2.5,
            attempts=attempts,
        )
    return AdmissionResult(
        request=request, flow=flow, attempts=attempts, tried=(destination,)
    )


class TestFlowRecord:
    def test_from_admitted_result(self):
        record = FlowRecord.from_result(make_result(flow_id=7, attempts=2))
        assert record.flow_id == 7
        assert record.admitted
        assert record.destination == 0
        assert record.hop_count == 1
        assert record.attempts == 2
        assert record.lifetime_s == 10.0

    def test_from_rejected_result(self):
        record = FlowRecord.from_result(make_result(admitted=False))
        assert not record.admitted
        assert record.destination is None
        assert record.hop_count == 0


class TestTraceRecorder:
    def test_record_and_query(self):
        recorder = TraceRecorder()
        recorder.record(make_result(flow_id=1, admitted=True, destination=0))
        recorder.record(make_result(flow_id=2, admitted=False))
        recorder.record(make_result(flow_id=3, admitted=True, destination=4))
        assert len(recorder) == 3
        assert len(recorder.admitted()) == 2
        assert len(recorder.rejected()) == 1
        assert [r.flow_id for r in recorder.by_destination(4)] == [3]
        assert recorder.admission_probability() == pytest.approx(2 / 3)

    def test_by_source(self):
        recorder = TraceRecorder()
        recorder.record(make_result(flow_id=1, source=1))
        recorder.record(make_result(flow_id=2, source=3))
        assert [r.flow_id for r in recorder.by_source(3)] == [2]

    def test_empty_ap(self):
        assert TraceRecorder().admission_probability() == 0.0

    def test_fifo_eviction(self):
        recorder = TraceRecorder(max_records=2)
        for flow_id in range(5):
            recorder.record(make_result(flow_id=flow_id))
        assert len(recorder) == 2
        assert recorder.total_seen == 5
        assert recorder.evicted == 3
        assert [r.flow_id for r in recorder] == [3, 4]

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_records=0)

    def test_csv_roundtrip(self, tmp_path):
        recorder = TraceRecorder()
        recorder.record(make_result(flow_id=1, admitted=True))
        recorder.record(make_result(flow_id=2, admitted=False))
        path = tmp_path / "trace.csv"
        text = recorder.to_csv(str(path))
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == ",".join(CSV_COLUMNS)
        assert len(lines) == 3
        assert lines[1].startswith("1,1,2.500000,1,0")
        assert lines[2].startswith("2,1,2.500000,0,,0")


class TestSimulationIntegration:
    def test_trace_attached_to_simulation(self):
        from repro.core.system import SystemSpec
        from repro.flows.traffic import WorkloadSpec
        from repro.network.topologies import (
            MCI_GROUP_MEMBERS,
            MCI_SOURCES,
            mci_backbone,
        )
        from repro.sim.simulation import AnycastSimulation

        trace = TraceRecorder()
        workload = WorkloadSpec(
            arrival_rate=20.0,
            sources=MCI_SOURCES,
            group=AnycastGroup("A", MCI_GROUP_MEMBERS),
            mean_lifetime_s=30.0,
        )
        simulation = AnycastSimulation(
            network_factory=mci_backbone,
            system_spec=SystemSpec("ED", retrials=2),
            workload=workload,
            warmup_s=20.0,
            measure_s=80.0,
            seed=1,
            trace=trace,
        )
        result = simulation.run()
        assert len(trace) == result.requests
        assert trace.admission_probability() == pytest.approx(
            result.admission_probability
        )
