"""Unit tests for the calendar queue (repro.sim.calendar)."""

import pytest

from repro.sim.calendar import CalendarQueue
from repro.sim.engine import Event, HeapQueue, Simulator
from repro.sim.random_streams import StreamFactory


def make_event(time, sequence):
    return Event(time, lambda: None, sequence)


class TestBasicOperations:
    def test_push_pop_single(self):
        queue = CalendarQueue()
        event = make_event(3.5, 0)
        queue.push(event)
        assert len(queue) == 1
        assert queue.peek_time() == 3.5
        assert queue.pop_min() is event
        assert queue.pop_min() is None

    def test_orders_by_time(self):
        queue = CalendarQueue()
        times = [5.0, 1.0, 3.0, 2.0, 4.0]
        for i, t in enumerate(times):
            queue.push(make_event(t, i))
        popped = [queue.pop_min().time for _ in range(5)]
        assert popped == sorted(times)

    def test_ties_break_by_insertion(self):
        queue = CalendarQueue()
        events = [make_event(1.0, i) for i in range(5)]
        for event in events:
            queue.push(event)
        for expected in events:
            assert queue.pop_min() is expected

    def test_cancelled_events_skipped(self):
        queue = CalendarQueue()
        keep = make_event(2.0, 1)
        drop = make_event(1.0, 0)
        queue.push(drop)
        queue.push(keep)
        drop.cancel()
        assert queue.pop_min() is keep
        assert queue.live_count() == 0

    def test_clear(self):
        queue = CalendarQueue()
        for i in range(10):
            queue.push(make_event(float(i), i))
        queue.clear()
        assert len(queue) == 0
        assert queue.pop_min() is None

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            CalendarQueue(initial_width=0.0)


class TestResizing:
    def test_grows_and_stays_ordered(self):
        queue = CalendarQueue()
        stream = StreamFactory(1).stream("t")
        events = [make_event(stream.uniform(0, 1000.0), i) for i in range(500)]
        for event in events:
            queue.push(event)
        popped = []
        while True:
            event = queue.pop_min()
            if event is None:
                break
            popped.append(event.time)
        assert len(popped) == 500
        assert popped == sorted(popped)

    def test_interleaved_push_pop(self):
        """DES-like pattern: pop one, push a few slightly later."""
        queue = CalendarQueue()
        stream = StreamFactory(2).stream("t")
        sequence = 0
        for i in range(50):
            queue.push(make_event(stream.uniform(0, 10.0), sequence))
            sequence += 1
        last = -1.0
        for _ in range(2000):
            event = queue.pop_min()
            assert event is not None
            assert event.time >= last
            last = event.time
            queue.push(make_event(last + stream.uniform(0, 5.0), sequence))
            sequence += 1
        assert len(queue) == 50


class TestEquivalenceWithHeap:
    def test_identical_order_on_random_workload(self):
        heap, calendar = HeapQueue(), CalendarQueue()
        stream = StreamFactory(3).stream("t")
        sequence = 0
        for _ in range(300):
            t = stream.uniform(0, 100.0)
            heap.push(make_event(t, sequence))
            calendar.push(make_event(t, sequence))
            sequence += 1
        while True:
            a = heap.pop_min()
            b = calendar.pop_min()
            if a is None or b is None:
                assert a is None and b is None
                break
            assert (a.time, a._sequence) == (b.time, b._sequence)


class TestSameTimestampStress:
    """Duplicate timestamps must not collapse the estimated bucket width.

    Width re-estimation samples gaps between queued events; a sample
    dominated by identical timestamps once produced a near-zero width,
    after which ``time / width`` overflowed the exact-integer float
    range and bucket indexing degenerated.  The width is now clamped
    (absolutely and relative to the timestamp scale), so heavy
    timestamp ties stay fast and keep FIFO order.
    """

    def test_all_identical_timestamps(self):
        queue = CalendarQueue()
        events = [make_event(1e6, i) for i in range(2000)]
        for event in events:
            queue.push(event)  # resizes estimate width from all-tie samples
        assert queue._width >= 1e-12
        for expected in events:
            assert queue.pop_min() is expected
        assert queue.live_count() == 0

    def test_heavy_ties_match_heap_order(self):
        """Batches of tied timestamps, interleaved pushes and pops."""
        heap, calendar = HeapQueue(), CalendarQueue()
        stream = StreamFactory(11).stream("ties")
        sequence = 0
        # A few distinct timestamps, each shared by many events, at a
        # large absolute scale so an unclamped width would be fatal.
        base = 1e9
        for _ in range(40):
            t = base + stream.uniform(0.0, 50.0)
            for _ in range(50):
                heap.push(make_event(t, sequence))
                calendar.push(make_event(t, sequence))
                sequence += 1
        popped = 0
        while True:
            a = heap.pop_min()
            b = calendar.pop_min()
            if a is None or b is None:
                assert a is None and b is None
                break
            assert (a.time, a._sequence) == (b.time, b._sequence)
            popped += 1
            # Re-push at the same tied timestamp half the time.
            if popped % 2 == 0 and popped < 3000:
                heap.push(make_event(a.time, sequence))
                calendar.push(make_event(a.time, sequence))
                sequence += 1
        # 2000 initial events plus one re-push per even pop below 3000.
        assert popped == 2000 + 1499

    def test_pop_run_drains_one_timestamp(self):
        queue = CalendarQueue()
        for i in range(10):
            queue.push(make_event(5.0, i))
        queue.push(make_event(6.0, 10))
        out = []
        count = queue.pop_run_into(out)
        assert count == 10
        assert [event._sequence for event in out] == list(range(10))
        assert queue.peek_time() == 6.0

    def test_pop_run_respects_until(self):
        queue = CalendarQueue()
        queue.push(make_event(5.0, 0))
        out = []
        assert queue.pop_run_into(out, until=4.0) == 0
        assert out == []
        assert queue.live_count() == 1


class TestSimulatorIntegration:
    def test_simulator_accepts_calendar_queue(self):
        sim = Simulator(queue="calendar")
        fired = []
        for delay in (3.0, 1.0, 2.0):
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_unknown_queue_rejected(self):
        from repro.sim.engine import SimulationError

        with pytest.raises(SimulationError):
            Simulator(queue="linked-list")

    def test_full_simulation_identical_results(self):
        """A complete anycast run must not depend on the queue impl."""
        from repro.core.system import SystemSpec
        from repro.flows.group import AnycastGroup
        from repro.flows.traffic import WorkloadSpec
        from repro.network.topologies import (
            MCI_GROUP_MEMBERS,
            MCI_SOURCES,
            mci_backbone,
        )
        from repro.sim.simulation import AnycastSimulation

        workload = WorkloadSpec(
            arrival_rate=25.0,
            sources=MCI_SOURCES,
            group=AnycastGroup("A", MCI_GROUP_MEMBERS),
            mean_lifetime_s=20.0,
        )

        def run(queue_kind):
            simulation = AnycastSimulation(
                network_factory=mci_backbone,
                system_spec=SystemSpec("WD/D+H", retrials=2),
                workload=workload,
                warmup_s=30.0,
                measure_s=120.0,
                seed=9,
            )
            simulation.simulator = Simulator(queue=queue_kind)
            # Rebind the metrics clock to the fresh simulator.
            simulation.metrics._clock = lambda: simulation.simulator.now
            return simulation.run()

        heap_result = run("heap")
        calendar_result = run("calendar")
        assert (
            heap_result.admission_probability
            == calendar_result.admission_probability
        )
        assert heap_result.requests == calendar_result.requests
        assert heap_result.destination_share == calendar_result.destination_share


class TestLiveCountMaintenance:
    """The calendar's live_count is a maintained counter; resizing and
    lazy cancellation purges must keep it exact."""

    def test_live_count_survives_resize(self):
        queue = CalendarQueue()
        events = [make_event(float(i), i) for i in range(40)]
        for event in events:
            queue.push(event)  # triggers doubling resizes
        assert queue.live_count() == 40
        for event in events[::2]:
            event.cancel()
        assert queue.live_count() == 20
        popped = 0
        while queue.pop_min() is not None:
            popped += 1
        assert popped == 20
        assert queue.live_count() == 0

    def test_cancel_after_pop_is_a_counting_noop(self):
        queue = CalendarQueue()
        event = make_event(1.0, 0)
        queue.push(event)
        assert queue.pop_min() is event
        event.cancel()
        assert queue.live_count() == 0

    def test_cancelled_then_purged_counts_once(self):
        queue = CalendarQueue()
        drop = make_event(1.0, 0)
        keep = make_event(2.0, 1)
        queue.push(drop)
        queue.push(keep)
        drop.cancel()
        assert queue.live_count() == 1
        assert queue.peek_time() == 2.0  # purges the cancelled head
        assert queue.live_count() == 1
