"""Unit tests for output statistics (repro.sim.stats)."""

import math

import pytest

from repro.sim.stats import (
    BatchMeans,
    RunningStats,
    TimeWeightedStats,
    confidence_interval,
)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_mean_and_variance(self):
        stats = RunningStats()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stats.record(value)
        assert stats.mean == pytest.approx(5.0)
        # Sample variance of that classic dataset is 32/7.
        assert stats.variance == pytest.approx(32.0 / 7.0)

    def test_min_max(self):
        stats = RunningStats()
        for value in (3.0, -1.0, 7.0):
            stats.record(value)
        assert stats.minimum == -1.0
        assert stats.maximum == 7.0

    def test_single_observation_variance_zero(self):
        stats = RunningStats()
        stats.record(5.0)
        assert stats.variance == 0.0
        assert stats.stddev == 0.0

    def test_merge_matches_sequential(self):
        a, b, combined = RunningStats(), RunningStats(), RunningStats()
        values_a = [1.0, 2.0, 3.0]
        values_b = [10.0, 20.0]
        for v in values_a:
            a.record(v)
            combined.record(v)
        for v in values_b:
            b.record(v)
            combined.record(v)
        a.merge(b)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.minimum == combined.minimum
        assert a.maximum == combined.maximum

    def test_merge_with_empty(self):
        a, b = RunningStats(), RunningStats()
        a.record(1.0)
        a.merge(b)
        assert a.count == 1
        b.merge(a)
        assert b.count == 1
        assert b.mean == 1.0

    def test_numerical_stability_with_offset(self):
        stats = RunningStats()
        base = 1e12
        for value in (base + 1, base + 2, base + 3):
            stats.record(value)
        assert stats.variance == pytest.approx(1.0, rel=1e-6)


class TestTimeWeightedStats:
    def test_piecewise_constant_mean(self):
        clock = {"t": 0.0}
        stats = TimeWeightedStats(clock=lambda: clock["t"])
        stats.record(0.0)
        clock["t"] = 4.0
        stats.record(10.0)  # was 0 for 4s
        clock["t"] = 8.0
        stats.record(0.0)  # was 10 for 4s
        clock["t"] = 8.0
        assert stats.mean == pytest.approx(5.0)

    def test_mean_includes_current_segment(self):
        clock = {"t": 0.0}
        stats = TimeWeightedStats(clock=lambda: clock["t"])
        stats.record(2.0)
        clock["t"] = 10.0
        assert stats.mean == pytest.approx(2.0)

    def test_reset_discards_history(self):
        clock = {"t": 0.0}
        stats = TimeWeightedStats(clock=lambda: clock["t"])
        stats.record(100.0)
        clock["t"] = 5.0
        stats.reset()
        clock["t"] = 10.0
        assert stats.mean == pytest.approx(100.0)  # only current value remains
        stats.record(0.0)
        clock["t"] = 15.0
        # 100 for 5 s since reset, then 0 for 5 s.
        assert stats.mean == pytest.approx(50.0)

    def test_backwards_clock_raises(self):
        clock = {"t": 5.0}
        stats = TimeWeightedStats(clock=lambda: clock["t"])
        stats.record(1.0)
        clock["t"] = 3.0
        with pytest.raises(ValueError):
            stats.record(2.0)

    def test_min_max_track_values(self):
        clock = {"t": 0.0}
        stats = TimeWeightedStats(clock=lambda: clock["t"])
        stats.record(5.0)
        stats.record(-2.0)
        stats.record(9.0)
        assert stats.minimum == -2.0
        assert stats.maximum == 9.0
        assert stats.current == 9.0


class TestBatchMeans:
    def test_batches_close_at_size(self):
        batches = BatchMeans(batch_size=3)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0):
            batches.record(value)
        assert batches.completed_batches == 2
        assert batches.batch_means == [2.0, 5.0]
        assert batches.grand_mean == 3.5

    def test_empty_grand_mean(self):
        assert BatchMeans(5).grand_mean == 0.0

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchMeans(0)

    def test_confidence_interval_brackets_mean(self):
        batches = BatchMeans(batch_size=10)
        for i in range(200):
            batches.record(float(i % 7))
        low, high = batches.confidence_interval()
        assert low <= batches.grand_mean <= high


class TestConfidenceInterval:
    def test_empty_samples(self):
        assert confidence_interval([]) == (0.0, 0.0)

    def test_single_sample_degenerate(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)

    def test_zero_variance_degenerate(self):
        assert confidence_interval([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_symmetric_around_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert (low + high) / 2 == pytest.approx(3.0)
        assert low < 3.0 < high

    def test_higher_level_is_wider(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        low95, high95 = confidence_interval(samples, 0.95)
        low99, high99 = confidence_interval(samples, 0.99)
        assert high99 - low99 > high95 - low95

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], level=1.5)

    def test_known_t_interval(self):
        # n=4, mean=2.5, s=sqrt(5/3); t(0.975, 3)=3.1824
        samples = [1.0, 2.0, 3.0, 4.0]
        low, high = confidence_interval(samples)
        s = math.sqrt(5.0 / 3.0)
        half = 3.182446 * s / 2.0
        assert high - low == pytest.approx(2 * half, rel=1e-4)


class TestMserTruncation:
    def test_detects_obvious_transient(self):
        from repro.sim.stats import mser_truncation

        warmup = [10.0] * 60  # inflated transient
        steady = [1.0, 1.1, 0.9, 1.0] * 100
        cut = mser_truncation(warmup + steady)
        assert 50 <= cut <= 120

    def test_stationary_data_needs_no_truncation(self):
        from repro.sim.stats import mser_truncation

        data = [1.0, 1.2, 0.8, 1.1, 0.9] * 60
        assert mser_truncation(data) <= 10

    def test_short_series_returns_zero(self):
        from repro.sim.stats import mser_truncation

        assert mser_truncation([1.0, 2.0, 3.0]) == 0

    def test_truncation_is_multiple_of_batch(self):
        from repro.sim.stats import mser_truncation

        data = [5.0] * 37 + [1.0] * 200
        cut = mser_truncation(data, batch_size=5)
        assert cut % 5 == 0

    def test_never_cuts_past_half(self):
        from repro.sim.stats import mser_truncation

        data = list(range(100))  # drifting data, no steady state
        cut = mser_truncation(data, batch_size=5)
        assert cut <= 50

    def test_invalid_batch_size(self):
        import pytest as _pytest

        from repro.sim.stats import mser_truncation

        with _pytest.raises(ValueError):
            mser_truncation([1.0], batch_size=0)
