"""Tests for per-source fairness metrics."""

import pytest

from repro.core.admission import AdmissionResult
from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement
from repro.sim.metrics import MetricsCollector

GROUP = AnycastGroup("A", (0, 4))


def make_result(source, admitted, flow_id=0):
    request = FlowRequest(
        flow_id=flow_id,
        source=source,
        group=GROUP,
        qos=QoSRequirement(bandwidth_bps=64_000.0),
    )
    flow = None
    if admitted:
        flow = AdmittedFlow(
            request=request, destination=0, path=(source, 0), admitted_at=0.0
        )
    return AdmissionResult(request=request, flow=flow, attempts=1, tried=(0,))


@pytest.fixture
def collector():
    return MetricsCollector(clock=lambda: 0.0)


class TestPerSourceAp:
    def test_per_source_breakdown(self, collector):
        collector.record_decision(make_result(1, True))
        collector.record_decision(make_result(1, False))
        collector.record_decision(make_result(3, True))
        assert collector.per_source_ap() == {1: 0.5, 3: 1.0}

    def test_empty(self, collector):
        assert collector.per_source_ap() == {}


class TestJainIndex:
    def test_perfect_fairness(self, collector):
        for source in (1, 3, 5):
            collector.record_decision(make_result(source, True))
        assert collector.fairness_index() == pytest.approx(1.0)

    def test_total_unfairness(self, collector):
        collector.record_decision(make_result(1, True))
        collector.record_decision(make_result(3, False))
        collector.record_decision(make_result(5, False))
        # APs are (1, 0, 0): Jain index = 1/3.
        assert collector.fairness_index() == pytest.approx(1.0 / 3.0)

    def test_intermediate_value(self, collector):
        collector.record_decision(make_result(1, True))
        collector.record_decision(make_result(1, True))
        collector.record_decision(make_result(3, True))
        collector.record_decision(make_result(3, False))
        # APs (1, 0.5): Jain = (1.5^2) / (2 * 1.25) = 0.9.
        assert collector.fairness_index() == pytest.approx(0.9)

    def test_empty_is_one(self, collector):
        assert collector.fairness_index() == 1.0

    def test_all_zero_is_one(self, collector):
        collector.record_decision(make_result(1, False))
        assert collector.fairness_index() == 1.0


class TestSimulationIntegration:
    def test_result_carries_fairness(self):
        import repro

        result = repro.quick_run(
            "ED", retrials=2, arrival_rate=30.0,
            warmup_s=50.0, measure_s=200.0, seed=4,
        )
        assert set(result.per_source_ap) <= set(repro.MCI_SOURCES)
        assert 0.0 < result.fairness_index <= 1.0

    def test_light_load_is_perfectly_fair(self):
        import repro

        result = repro.quick_run(
            "ED", retrials=1, arrival_rate=5.0,
            warmup_s=50.0, measure_s=200.0, seed=4,
        )
        assert result.fairness_index == pytest.approx(1.0, abs=0.01)
