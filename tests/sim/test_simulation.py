"""Unit tests for the simulation model (repro.sim.simulation)."""

import pytest

from repro.core.system import SystemSpec
from repro.flows.group import AnycastGroup
from repro.flows.traffic import WorkloadSpec
from repro.network.topologies import (
    MCI_GROUP_MEMBERS,
    MCI_SOURCES,
    line,
    mci_backbone,
)
from repro.sim.simulation import AnycastSimulation, run_simulation


def small_workload(arrival_rate=20.0) -> WorkloadSpec:
    return WorkloadSpec(
        arrival_rate=arrival_rate,
        sources=MCI_SOURCES,
        group=AnycastGroup("A", MCI_GROUP_MEMBERS),
        mean_lifetime_s=30.0,
    )


def quick_sim(**overrides) -> AnycastSimulation:
    defaults = dict(
        network_factory=mci_backbone,
        system_spec=SystemSpec("ED", retrials=2),
        workload=small_workload(),
        warmup_s=50.0,
        measure_s=200.0,
        seed=1,
    )
    defaults.update(overrides)
    return AnycastSimulation(**defaults)


class TestMechanics:
    def test_result_fields_consistent(self):
        result = quick_sim().run()
        assert result.requests > 0
        assert 0 <= result.admitted <= result.requests
        assert result.admission_probability == pytest.approx(
            result.admitted / result.requests
        )
        assert result.mean_attempts >= 1.0
        assert result.mean_retrials == pytest.approx(result.mean_attempts - 1.0)
        assert result.system_label == "<ED,2>"

    def test_single_use(self):
        simulation = quick_sim()
        simulation.run()
        with pytest.raises(RuntimeError):
            simulation.run()

    def test_deterministic_given_seed(self):
        a = quick_sim(seed=5).run()
        b = quick_sim(seed=5).run()
        assert a.admission_probability == b.admission_probability
        assert a.requests == b.requests
        assert a.destination_share == b.destination_share

    def test_seeds_differ(self):
        a = quick_sim(seed=5).run()
        b = quick_sim(seed=6).run()
        assert a.requests != b.requests or (
            a.admission_probability != b.admission_probability
        )

    def test_warmup_excluded_from_counts(self):
        with_warmup = quick_sim(warmup_s=100.0, measure_s=100.0, seed=3).run()
        without = quick_sim(warmup_s=0.0, measure_s=200.0, seed=3).run()
        # Same horizon, different measurement windows.
        assert with_warmup.requests < without.requests

    def test_validation(self):
        with pytest.raises(ValueError):
            quick_sim(warmup_s=-1.0)
        with pytest.raises(ValueError):
            quick_sim(measure_s=0.0)

    def test_run_simulation_wrapper(self):
        result = run_simulation(
            network_factory=mci_backbone,
            system_spec=SystemSpec("SP"),
            workload=small_workload(),
            warmup_s=10.0,
            measure_s=50.0,
            seed=2,
        )
        assert result.system_label == "SP"

    def test_destination_share_sums_to_one(self):
        result = quick_sim().run()
        assert sum(result.destination_share.values()) == pytest.approx(1.0)

    def test_link_utilization_reported(self):
        result = quick_sim().run()
        assert result.link_utilization
        for value in result.link_utilization.values():
            assert 0.0 <= value <= 1.0


class TestConservation:
    def test_no_leaked_reservations_after_drain(self):
        """After all flows depart, the network must be empty."""
        simulation = quick_sim(seed=9)
        simulation.run()
        # Let every departure event drain past the horizon.
        simulation.simulator.run()
        assert simulation.network.total_reserved_bps() == pytest.approx(0.0)

    def test_reserved_bandwidth_matches_active_flows(self):
        simulation = quick_sim(seed=4)
        result = simulation.run()
        # At the horizon, total reserved bandwidth = sum over active
        # flows of bandwidth * hop count; consistency check via links.
        total = simulation.network.total_reserved_bps()
        assert total >= 0.0
        per_flow = simulation.workload.bandwidth_bps
        assert total / per_flow == pytest.approx(round(total / per_flow), abs=1e-6)


class TestSaturation:
    def test_tiny_capacity_rejects_most(self):
        # One slot per link on a line; heavy traffic.
        workload = WorkloadSpec(
            arrival_rate=50.0,
            sources=(1,),
            group=AnycastGroup("A", (0, 3)),
            mean_lifetime_s=100.0,
        )
        result = run_simulation(
            network_factory=lambda: line(4, capacity_bps=64_000.0),
            system_spec=SystemSpec("ED", retrials=2),
            workload=workload,
            warmup_s=50.0,
            measure_s=200.0,
            seed=0,
        )
        assert result.admission_probability < 0.05

    def test_overprovisioned_admits_all(self):
        workload = small_workload(arrival_rate=5.0)
        result = run_simulation(
            network_factory=lambda: mci_backbone(capacity_bps=1e9),
            system_spec=SystemSpec("ED", retrials=1),
            workload=workload,
            warmup_s=20.0,
            measure_s=100.0,
            seed=0,
        )
        assert result.admission_probability == 1.0


class TestWarmupOccupancyReset:
    """mean_active_flows must cover only the measurement window — the
    empty-network warm-up ramp used to stay in the time-weighted
    integral and bias the occupancy mean low."""

    def test_occupancy_stats_cover_measurement_window_only(self):
        simulation = quick_sim(warmup_s=100.0, measure_s=200.0)
        simulation.run()
        observed = simulation.metrics.active_flows.total_time
        assert observed == pytest.approx(200.0, rel=1e-9)

    def test_warmup_ramp_does_not_bias_mean_down(self):
        """A long warm-up must not change the occupancy estimate much,
        while folding its ramp in would drag it towards zero."""
        short = quick_sim(warmup_s=50.0, measure_s=300.0, seed=9).run()
        long = quick_sim(warmup_s=400.0, measure_s=300.0, seed=9).run()
        assert long.mean_active_flows == pytest.approx(
            short.mean_active_flows, rel=0.25
        )
        # And both sit near the loss-network steady state, far from the
        # ramp-diluted value (which would be well under 80% of it).
        assert long.mean_active_flows > 0.8 * short.mean_active_flows
