"""Unit tests for metric collection (repro.sim.metrics)."""

import pytest

from repro.core.admission import AdmissionResult
from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement
from repro.sim.metrics import MetricsCollector, SimulationResult


GROUP = AnycastGroup("A", (0, 4))


def make_result(admitted: bool, attempts: int = 1, destination=0, flow_id=0):
    request = FlowRequest(
        flow_id=flow_id,
        source=1,
        group=GROUP,
        qos=QoSRequirement(bandwidth_bps=64_000.0),
    )
    flow = None
    if admitted:
        flow = AdmittedFlow(
            request=request,
            destination=destination,
            path=(1, destination),
            admitted_at=0.0,
            attempts=attempts,
        )
    return AdmissionResult(
        request=request, flow=flow, attempts=attempts, tried=(destination,)
    )


@pytest.fixture
def collector():
    clock = {"t": 0.0}
    collector = MetricsCollector(clock=lambda: clock["t"], batch_size=2)
    collector._test_clock = clock
    return collector


class TestRecording:
    def test_admission_probability(self, collector):
        collector.record_decision(make_result(True))
        collector.record_decision(make_result(True))
        collector.record_decision(make_result(False))
        assert collector.requests == 3
        assert collector.admitted == 2
        assert collector.admission_probability == pytest.approx(2 / 3)

    def test_empty_collector(self, collector):
        assert collector.admission_probability == 0.0
        assert collector.mean_attempts == 0.0
        assert collector.mean_retrials == 0.0

    def test_attempts_and_retrials(self, collector):
        collector.record_decision(make_result(True, attempts=1))
        collector.record_decision(make_result(True, attempts=3))
        assert collector.mean_attempts == pytest.approx(2.0)
        assert collector.mean_retrials == pytest.approx(1.0)

    def test_destination_counts_only_admitted(self, collector):
        collector.record_decision(make_result(True, destination=0))
        collector.record_decision(make_result(True, destination=4))
        collector.record_decision(make_result(False, destination=4))
        assert collector.destination_counts == {0: 1, 4: 1}

    def test_attempt_histogram(self, collector):
        collector.record_decision(make_result(True, attempts=1))
        collector.record_decision(make_result(True, attempts=1))
        collector.record_decision(make_result(False, attempts=2))
        assert collector.attempt_histogram == {1: 2, 2: 1}

    def test_active_flow_tracking(self, collector):
        clock = collector._test_clock
        collector.record_flow_start()
        clock["t"] = 10.0
        collector.record_flow_end()
        clock["t"] = 20.0
        # One flow for 10 s, zero for 10 s -> mean 0.5.
        assert collector.active_flows.mean == pytest.approx(0.5)

    def test_ci_brackets_ap(self, collector):
        for i in range(20):
            collector.record_decision(make_result(i % 2 == 0))
        low, high = collector.admission_probability_ci()
        assert low <= collector.admission_probability <= high


class TestSimulationResult:
    def test_rejected_property(self):
        result = SimulationResult(
            system_label="<ED,2>",
            arrival_rate=20.0,
            duration_s=100.0,
            warmup_s=10.0,
            requests=100,
            admitted=80,
            admission_probability=0.8,
            ap_ci_low=0.75,
            ap_ci_high=0.85,
            mean_attempts=1.2,
            mean_retrials=0.2,
            mean_active_flows=50.0,
        )
        assert result.rejected == 20
        text = str(result)
        assert "<ED,2>" in text
        assert "0.8" in text
