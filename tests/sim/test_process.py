"""Unit tests for generator-based processes (repro.sim.process)."""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.process import Process, Signal, all_of, hold, wait


class TestHold:
    def test_holds_advance_process_time(self, simulator):
        log = []

        def worker():
            yield hold(1.5)
            log.append(simulator.now)
            yield hold(0.5)
            log.append(simulator.now)

        Process(simulator, worker())
        simulator.run()
        assert log == [1.5, 2.0]

    def test_bare_number_is_hold_shorthand(self, simulator):
        log = []

        def worker():
            yield 2.5
            log.append(simulator.now)

        Process(simulator, worker())
        simulator.run()
        assert log == [2.5]

    def test_negative_hold_rejected(self):
        with pytest.raises(SimulationError):
            hold(-1.0)

    def test_start_delay_offsets_first_step(self, simulator):
        log = []

        def worker():
            log.append(simulator.now)
            yield hold(1.0)
            log.append(simulator.now)

        Process(simulator, worker(), start_delay=3.0)
        simulator.run()
        assert log == [3.0, 4.0]

    def test_unsupported_yield_raises(self, simulator):
        def worker():
            yield "nonsense"

        Process(simulator, worker())
        with pytest.raises(SimulationError):
            simulator.run()


class TestSignals:
    def test_wait_blocks_until_fire(self, simulator):
        signal = Signal(simulator, "go")
        log = []

        def waiter():
            payload = yield wait(signal)
            log.append((simulator.now, payload))

        def firer():
            yield hold(2.0)
            signal.fire("payload!")

        Process(simulator, waiter())
        Process(simulator, firer())
        simulator.run()
        assert log == [(2.0, "payload!")]

    def test_fire_wakes_all_waiters(self, simulator):
        signal = Signal(simulator, "go")
        woken = []

        def waiter(name):
            yield wait(signal)
            woken.append(name)

        for name in ("a", "b", "c"):
            Process(simulator, waiter(name))

        def firer():
            yield hold(1.0)
            count = signal.fire()
            woken.append(count)

        Process(simulator, firer())
        simulator.run()
        assert 3 in woken
        assert {"a", "b", "c"} <= set(woken)

    def test_fire_with_no_waiters_returns_zero(self, simulator):
        signal = Signal(simulator, "empty")
        assert signal.fire() == 0
        assert signal.fired_count == 1

    def test_waiter_count(self, simulator):
        signal = Signal(simulator)

        def waiter():
            yield wait(signal)

        Process(simulator, waiter())
        simulator.run(until=0.0)
        assert signal.waiter_count == 1
        signal.fire()
        simulator.run()
        assert signal.waiter_count == 0


class TestLifecycle:
    def test_process_alive_until_exhausted(self, simulator):
        def worker():
            yield hold(1.0)

        process = Process(simulator, worker())
        assert process.alive
        simulator.run()
        assert not process.alive

    def test_terminated_signal_fires_on_finish(self, simulator):
        def worker():
            yield hold(1.0)

        process = Process(simulator, worker())
        log = []

        def observer():
            yield wait(process.terminated())
            log.append(simulator.now)

        Process(simulator, observer())
        simulator.run()
        assert log == [1.0]

    def test_terminated_after_finish_still_fires(self, simulator):
        def worker():
            yield hold(1.0)

        process = Process(simulator, worker())
        simulator.run()
        log = []

        def late_observer():
            yield wait(process.terminated())
            log.append("woke")

        Process(simulator, late_observer())
        simulator.run()
        assert log == ["woke"]

    def test_interrupt_kills_process(self, simulator):
        log = []

        def worker():
            yield hold(1.0)
            log.append("should not happen")

        process = Process(simulator, worker())
        simulator.run(until=0.5)
        process.interrupt()
        simulator.run()
        assert log == []
        assert not process.alive

    def test_interrupt_is_idempotent(self, simulator):
        def worker():
            yield hold(1.0)

        process = Process(simulator, worker())
        process.interrupt()
        process.interrupt()
        assert not process.alive


class TestAllOf:
    def test_all_of_fires_after_last_termination(self, simulator):
        def worker(duration):
            yield hold(duration)

        processes = [Process(simulator, worker(d)) for d in (1.0, 3.0, 2.0)]
        done = all_of(simulator, processes)
        log = []

        def observer():
            yield wait(done)
            log.append(simulator.now)

        Process(simulator, observer())
        simulator.run()
        assert log == [3.0]

    def test_all_of_empty_fires_immediately(self, simulator):
        done = all_of(simulator, [])
        log = []

        def observer():
            yield wait(done)
            log.append(simulator.now)

        Process(simulator, observer())
        simulator.run()
        assert log == [0.0]
