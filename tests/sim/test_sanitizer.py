"""Tests for the runtime sanitizer (:mod:`repro.invariants`).

The sanitizer is a process-wide switch (``REPRO_CHECK_INVARIANTS=1``
or ``Simulator(check_invariants=True)``) that arms assertion hooks in
the link layer and the event engine.  These tests exercise both the
checks themselves (they must catch real corruption) and the contract
that enabling them never changes simulation results.
"""

import subprocess
import sys

import pytest

from repro import invariants
from repro.network.link import Link
from repro.network.state import verify_link, verify_network
from repro.network.topologies import line
from repro.sim.engine import Simulator


@pytest.fixture
def sanitizer():
    """Enable the sanitizer for one test, restoring the prior state."""
    previous = invariants.is_enabled()
    invariants.set_enabled(True)
    yield
    invariants.set_enabled(previous)


class TestSwitch:
    def test_disabled_by_default_in_tests(self):
        # The suite runs with the env var unset unless the slow-tier
        # sanitizer job sets it; either way the switch is consistent.
        assert invariants.is_enabled() == invariants.enabled

    def test_set_enabled_round_trip(self):
        previous = invariants.is_enabled()
        try:
            invariants.set_enabled(True)
            assert invariants.is_enabled()
            invariants.set_enabled(False)
            assert not invariants.is_enabled()
        finally:
            invariants.set_enabled(previous)

    def test_env_var_enables_in_fresh_process(self):
        code = (
            "from repro import invariants; "
            "import sys; sys.exit(0 if invariants.is_enabled() else 1)"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_CHECK_INVARIANTS": "1", "PYTHONPATH": "src"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
        )
        assert result.returncode == 0

    def test_violation_is_an_assertion_error(self):
        assert issubclass(invariants.InvariantViolation, AssertionError)


class TestLinkChecks:
    def test_healthy_link_passes(self):
        link = Link("a", "b", 1000.0)
        link.reserve("f1", 400.0)
        verify_link(link)

    def test_negative_reserved_total_caught(self):
        link = Link("a", "b", 1000.0)
        link.state.reserved[link.index] = -5.0
        with pytest.raises(invariants.InvariantViolation):
            verify_link(link)

    def test_oversubscription_caught(self):
        link = Link("a", "b", 1000.0)
        link.reserve("f1", 400.0)
        link.state.reserved[link.index] = 2000.0
        with pytest.raises(invariants.InvariantViolation):
            verify_link(link)

    def test_ledger_column_disagreement_caught(self):
        link = Link("a", "b", 1000.0)
        link.reserve("f1", 400.0)
        link._reservations["f1"] = 100.0  # ledger no longer sums to column
        with pytest.raises(invariants.InvariantViolation):
            verify_link(link)

    def test_nan_reserved_caught(self):
        link = Link("a", "b", 1000.0)
        link.state.reserved[link.index] = float("nan")
        with pytest.raises(invariants.InvariantViolation):
            verify_link(link)

    def test_hot_path_hook_fires_when_enabled(self, sanitizer):
        link = Link("a", "b", 1000.0)
        link.reserve("f1", 400.0)
        link.state.reserved[link.index] = -1.0
        # The next accounting operation trips the armed hook.
        with pytest.raises(invariants.InvariantViolation):
            link.reserve("f2", 100.0)

    def test_hot_path_hook_silent_when_disabled(self):
        previous = invariants.is_enabled()
        invariants.set_enabled(False)
        try:
            link = Link("a", "b", 1000.0)
            link.state.reserved[link.index] = -1.0
            link.reserve("f2", 100.0)  # corruption goes unnoticed
        finally:
            invariants.set_enabled(previous)


class TestNetworkChecks:
    def test_healthy_network_passes(self):
        network = line(4)
        assert network.reserve_path([0, 1, 2, 3], "f1", 100.0)
        verify_network(network)

    def test_unpaired_reservation_amount_caught(self):
        network = line(4)
        assert network.reserve_path([0, 1, 2, 3], "f1", 100.0)
        # Corrupt one hop's ledger so the flow reserves different
        # amounts on different links of its route.
        link = network.link(1, 2)
        link._reservations["f1"] = 50.0
        link.state.reserved[link.index] -= 50.0
        with pytest.raises(invariants.InvariantViolation):
            verify_network(network)


class TestTimeMonotonicity:
    def test_forward_time_passes(self):
        invariants.check_time_monotonic(1.0, 2.0, "test")
        invariants.check_time_monotonic(2.0, 2.0, "test")

    def test_backward_time_caught(self):
        with pytest.raises(invariants.InvariantViolation):
            invariants.check_time_monotonic(2.0, 1.0, "test")

    def test_simulator_flag_arms_step_check(self):
        sim = Simulator(check_invariants=True)
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.schedule(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0, 2.0]


class TestSanitizedRunsMatch:
    """check_invariants=True must not perturb simulation results."""

    @pytest.mark.parametrize("queue", ["heap", "calendar"])
    def test_event_order_identical(self, queue, sanitizer):
        def run(flag: bool) -> list[float]:
            sim = Simulator(queue=queue, check_invariants=flag)
            fired: list[float] = []
            for t in (3.0, 1.0, 2.0, 2.0, 5.0):
                sim.schedule(t, lambda t=t: fired.append(sim.now))
            sim.run()
            return fired

        assert run(True) == run(False)

    def test_quick_simulation_identical(self):
        import repro

        def run(flag: bool):
            invariants.set_enabled(flag)
            try:
                return repro.quick_run(
                    "WD/D+H",
                    retrials=2,
                    arrival_rate=10.0,
                    warmup_s=20.0,
                    measure_s=100.0,
                    seed=7,
                )
            finally:
                invariants.set_enabled(False)

        baseline = run(False)
        sanitized = run(True)
        assert sanitized.requests == baseline.requests
        assert sanitized.admitted == baseline.admitted
        assert sanitized.admission_probability == pytest.approx(
            baseline.admission_probability, abs=0.0
        )
