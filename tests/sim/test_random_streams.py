"""Unit tests for named random streams (repro.sim.random_streams)."""

import pytest

from repro.sim.random_streams import StreamFactory


class TestDeterminism:
    def test_same_seed_same_name_same_sequence(self):
        a = StreamFactory(7).stream("arrivals")
        b = StreamFactory(7).stream("arrivals")
        assert [a.exponential(1.0) for _ in range(10)] == [
            b.exponential(1.0) for _ in range(10)
        ]

    def test_different_names_are_independent(self):
        factory = StreamFactory(7)
        a = factory.stream("arrivals")
        b = factory.stream("lifetimes")
        seq_a = [a.uniform() for _ in range(10)]
        seq_b = [b.uniform() for _ in range(10)]
        assert seq_a != seq_b

    def test_different_seeds_differ(self):
        a = StreamFactory(1).stream("x")
        b = StreamFactory(2).stream("x")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_stream_is_cached_per_name(self):
        factory = StreamFactory(3)
        assert factory.stream("s") is factory.stream("s")

    def test_fresh_streams_are_new_objects(self):
        factory = StreamFactory(3)
        a = factory.fresh("s", replication=0)
        b = factory.fresh("s", replication=0)
        assert a is not b
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_fresh_replications_differ(self):
        factory = StreamFactory(3)
        a = factory.fresh("s", replication=0)
        b = factory.fresh("s", replication=1)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_issued_names_in_order(self):
        factory = StreamFactory(0)
        factory.stream("b")
        factory.stream("a")
        assert factory.issued_names() == ["b", "a"]


class TestDistributions:
    def test_exponential_mean(self):
        stream = StreamFactory(11).stream("exp")
        samples = [stream.exponential(5.0) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(5.0, rel=0.05)

    def test_exponential_requires_positive_mean(self):
        stream = StreamFactory(0).stream("exp")
        with pytest.raises(ValueError):
            stream.exponential(0.0)

    def test_uniform_bounds(self):
        stream = StreamFactory(11).stream("uni")
        for _ in range(1000):
            value = stream.uniform(2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_uniform_invalid_bounds(self):
        stream = StreamFactory(0).stream("uni")
        with pytest.raises(ValueError):
            stream.uniform(3.0, 2.0)

    def test_integer_inclusive_bounds(self):
        stream = StreamFactory(11).stream("int")
        values = {stream.integer(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_choice_uniformity(self):
        stream = StreamFactory(11).stream("choice")
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[stream.choice(["a", "b"])] += 1
        assert counts["a"] == pytest.approx(2000, rel=0.1)

    def test_choice_empty_rejected(self):
        stream = StreamFactory(0).stream("choice")
        with pytest.raises(ValueError):
            stream.choice([])

    def test_poisson_mean(self):
        stream = StreamFactory(11).stream("poi")
        samples = [stream.poisson(4.0) for _ in range(10000)]
        assert sum(samples) / len(samples) == pytest.approx(4.0, rel=0.05)

    def test_draw_counter(self):
        stream = StreamFactory(11).stream("count")
        stream.uniform()
        stream.exponential(1.0)
        assert stream.draws == 2


class TestWeightedChoice:
    def test_respects_weights(self):
        stream = StreamFactory(11).stream("wc")
        counts = {"heavy": 0, "light": 0}
        for _ in range(9000):
            counts[stream.weighted_choice(["heavy", "light"], [0.9, 0.1])] += 1
        assert counts["heavy"] / 9000 == pytest.approx(0.9, abs=0.02)

    def test_zero_weight_never_selected(self):
        stream = StreamFactory(11).stream("wc0")
        for _ in range(500):
            assert stream.weighted_choice(["a", "b"], [1.0, 0.0]) == "a"

    def test_unnormalized_weights_accepted(self):
        stream = StreamFactory(11).stream("wcn")
        counts = {"x": 0, "y": 0}
        for _ in range(6000):
            counts[stream.weighted_choice(["x", "y"], [30.0, 10.0])] += 1
        assert counts["x"] / 6000 == pytest.approx(0.75, abs=0.03)

    def test_mismatched_lengths_rejected(self):
        stream = StreamFactory(0).stream("wc")
        with pytest.raises(ValueError):
            stream.weighted_choice(["a"], [0.5, 0.5])

    def test_negative_weight_rejected(self):
        stream = StreamFactory(0).stream("wc")
        with pytest.raises(ValueError):
            stream.weighted_choice(["a", "b"], [0.5, -0.5])

    def test_all_zero_weights_rejected(self):
        stream = StreamFactory(0).stream("wc")
        with pytest.raises(ValueError):
            stream.weighted_choice(["a", "b"], [0.0, 0.0])
