"""Unit tests for Storage and Facility (repro.sim.resources)."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.resources import Facility, Storage


class TestStorage:
    def test_acquire_reduces_availability(self, simulator):
        storage = Storage(simulator, capacity=10)
        assert storage.try_acquire(4)
        assert storage.in_use == 4
        assert storage.available == 6

    def test_acquire_beyond_capacity_fails(self, simulator):
        storage = Storage(simulator, capacity=10)
        assert storage.try_acquire(10)
        assert not storage.try_acquire(1)
        assert storage.acquire_failures == 1
        assert storage.in_use == 10

    def test_release_restores_capacity(self, simulator):
        storage = Storage(simulator, capacity=5)
        storage.try_acquire(3)
        storage.release(3)
        assert storage.available == 5

    def test_over_release_raises(self, simulator):
        storage = Storage(simulator, capacity=5)
        storage.try_acquire(2)
        with pytest.raises(SimulationError):
            storage.release(3)

    def test_negative_amounts_rejected(self, simulator):
        storage = Storage(simulator, capacity=5)
        with pytest.raises(SimulationError):
            storage.try_acquire(-1)
        with pytest.raises(SimulationError):
            storage.release(-1)

    def test_negative_capacity_rejected(self, simulator):
        with pytest.raises(SimulationError):
            Storage(simulator, capacity=-1)

    def test_utilization_is_time_weighted(self):
        sim = Simulator()
        storage = Storage(sim, capacity=10)
        sim.schedule(0.0, lambda: storage.try_acquire(10))
        sim.schedule(5.0, lambda: storage.release(10))
        sim.run(until=10.0)
        # Full for 5 of 10 seconds -> utilization 0.5.
        assert storage.utilization == pytest.approx(0.5, abs=0.01)

    def test_zero_capacity_storage(self, simulator):
        storage = Storage(simulator, capacity=0)
        assert not storage.try_acquire(1)
        assert storage.try_acquire(0)
        assert storage.utilization == 0.0

    def test_success_counter(self, simulator):
        storage = Storage(simulator, capacity=3)
        storage.try_acquire(1)
        storage.try_acquire(1)
        assert storage.acquire_successes == 2


class TestFacility:
    def test_single_server_serializes(self):
        sim = Simulator()
        facility = Facility(sim, servers=1)
        done = []
        facility.request(2.0, lambda: done.append(sim.now))
        facility.request(3.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [2.0, 5.0]

    def test_multi_server_parallelism(self):
        sim = Simulator()
        facility = Facility(sim, servers=2)
        done = []
        facility.request(2.0, lambda: done.append(sim.now))
        facility.request(3.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [2.0, 3.0]

    def test_queue_length_while_busy(self):
        sim = Simulator()
        facility = Facility(sim, servers=1)
        facility.request(5.0)
        facility.request(5.0)
        facility.request(5.0)
        sim.run(until=1.0)
        assert facility.busy == 1
        assert facility.queue_length == 2

    def test_completed_counter(self):
        sim = Simulator()
        facility = Facility(sim, servers=1)
        for _ in range(4):
            facility.request(1.0)
        sim.run()
        assert facility.completed == 4

    def test_zero_servers_rejected(self, simulator):
        with pytest.raises(SimulationError):
            Facility(simulator, servers=0)

    def test_negative_service_time_rejected(self, simulator):
        facility = Facility(simulator, servers=1)
        with pytest.raises(SimulationError):
            facility.request(-1.0)

    def test_utilization(self):
        sim = Simulator()
        facility = Facility(sim, servers=1)
        facility.request(5.0)
        sim.run(until=10.0)
        assert facility.utilization == pytest.approx(0.5, abs=0.01)
