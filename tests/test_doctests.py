"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.analysis.erlang
import repro.flows.qos
import repro.sim.engine
import repro.sim.process
import repro.sim.stats

MODULES = [
    repro.sim.engine,
    repro.sim.process,
    repro.sim.stats,
    repro.analysis.erlang,
    repro.flows.qos,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
