"""Tests for the workload extensions: hot spots and class mixes."""

import pytest

from repro.flows.group import AnycastGroup
from repro.flows.traffic import TrafficModel, WorkloadSpec
from repro.sim.random_streams import StreamFactory


def make_spec(**overrides) -> WorkloadSpec:
    defaults = dict(
        arrival_rate=10.0,
        sources=(1, 3, 5),
        group=AnycastGroup("A", (0, 4)),
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestSourceWeights:
    def test_weighted_sources_follow_distribution(self):
        spec = make_spec(source_weights=(8.0, 1.0, 1.0))
        model = TrafficModel(spec, StreamFactory(1))
        counts = {1: 0, 3: 0, 5: 0}
        for request in model.take(5000):
            counts[request.source] += 1
        assert counts[1] / 5000 == pytest.approx(0.8, abs=0.03)

    def test_zero_weight_source_never_chosen(self):
        spec = make_spec(source_weights=(1.0, 0.0, 1.0))
        model = TrafficModel(spec, StreamFactory(2))
        assert all(r.source != 3 for r in model.take(500))

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            make_spec(source_weights=(1.0, 1.0))  # wrong length
        with pytest.raises(ValueError):
            make_spec(source_weights=(1.0, -1.0, 1.0))
        with pytest.raises(ValueError):
            make_spec(source_weights=(0.0, 0.0, 0.0))

    def test_none_reproduces_uniform(self):
        spec = make_spec()
        assert spec.source_weights is None


class TestBandwidthClasses:
    def test_mix_probabilities_respected(self):
        spec = make_spec(
            bandwidth_classes=((64_000.0, 0.75), (256_000.0, 0.25))
        )
        model = TrafficModel(spec, StreamFactory(3))
        requests = model.take(4000)
        wide = sum(1 for r in requests if r.bandwidth_bps == 256_000.0)
        assert wide / 4000 == pytest.approx(0.25, abs=0.03)
        assert all(
            r.bandwidth_bps in (64_000.0, 256_000.0) for r in requests
        )

    def test_mean_bandwidth(self):
        spec = make_spec(
            bandwidth_classes=((64_000.0, 0.5), (192_000.0, 0.5))
        )
        assert spec.mean_bandwidth_bps == pytest.approx(128_000.0)
        assert make_spec().mean_bandwidth_bps == 64_000.0

    def test_class_validation(self):
        with pytest.raises(ValueError):
            make_spec(bandwidth_classes=())
        with pytest.raises(ValueError):
            make_spec(bandwidth_classes=((0.0, 1.0),))
        with pytest.raises(ValueError):
            make_spec(bandwidth_classes=((64_000.0, 0.5), (128_000.0, 0.4)))

    def test_single_class_mix_equals_fixed_bandwidth(self):
        spec = make_spec(bandwidth_classes=((64_000.0, 1.0),))
        model = TrafficModel(spec, StreamFactory(4))
        assert all(r.bandwidth_bps == 64_000.0 for r in model.take(50))


class TestMultirateCrossValidation:
    def test_two_class_star_matches_kaufman_roberts(self):
        """Simulated two-class blocking on one link vs the recursion.

        A single-source star spoke is exactly the Kaufman-Roberts
        model, so the per-class simulated blocking must converge to it.
        """
        from repro.analysis.multirate import TrafficClass, class_blocking
        from repro.core.system import SystemSpec
        from repro.network.topologies import star
        from repro.sim.simulation import AnycastSimulation
        from repro.sim.trace import TraceRecorder

        slot = 64_000.0
        capacity_slots = 10
        group = AnycastGroup("A", (1,))
        rate, lifetime = 0.4, 10.0
        mix = ((slot, 0.7), (3 * slot, 0.3))
        spec = WorkloadSpec(
            arrival_rate=rate,
            sources=(0,),
            group=group,
            mean_lifetime_s=lifetime,
            bandwidth_classes=mix,
        )
        trace = TraceRecorder()
        simulation = AnycastSimulation(
            network_factory=lambda: star(1, capacity_bps=capacity_slots * slot),
            system_spec=SystemSpec("ED", retrials=1),
            workload=spec,
            warmup_s=200.0,
            measure_s=8000.0,
            seed=5,
            trace=trace,
        )
        simulation.run()

        classes = [
            TrafficClass(rate * lifetime * 0.7, 1, "thin"),
            TrafficClass(rate * lifetime * 0.3, 3, "wide"),
        ]
        expected_thin, expected_wide = class_blocking(capacity_slots, classes)

        # The trace does not store bandwidth, but the traffic model is
        # deterministic per seed: replaying it recovers each flow's class.
        model = TrafficModel(spec, StreamFactory(5))
        max_flow_id = max(record.flow_id for record in trace)
        classes_by_id = {}
        while model.generated_count <= max_flow_id:
            request = model.next_request()
            classes_by_id[request.flow_id] = request.bandwidth_bps

        thin_offered = thin_rejected = wide_offered = wide_rejected = 0
        for record in trace:
            bandwidth = classes_by_id[record.flow_id]
            if bandwidth == slot:
                thin_offered += 1
                thin_rejected += 0 if record.admitted else 1
            else:
                wide_offered += 1
                wide_rejected += 0 if record.admitted else 1
        assert thin_offered > 500 and wide_offered > 200
        assert thin_rejected / thin_offered == pytest.approx(
            expected_thin, abs=0.03
        )
        assert wide_rejected / wide_offered == pytest.approx(
            expected_wide, abs=0.05
        )
