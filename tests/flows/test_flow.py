"""Unit tests for flow requests and admitted flows (repro.flows.flow)."""

import pytest

from repro.flows.flow import AdmittedFlow, FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement


def make_request(**overrides) -> FlowRequest:
    defaults = dict(
        flow_id=1,
        source=9,
        group=AnycastGroup("A", (0, 4)),
        qos=QoSRequirement(bandwidth_bps=64_000.0),
        arrival_time=10.0,
        lifetime_s=180.0,
    )
    defaults.update(overrides)
    return FlowRequest(**defaults)


class TestFlowRequest:
    def test_bandwidth_comes_from_qos(self):
        request = make_request()
        assert request.bandwidth_bps == 64_000.0

    def test_departure_time(self):
        request = make_request(arrival_time=10.0, lifetime_s=5.0)
        assert request.departure_time == 15.0

    def test_open_ended_flow_has_no_departure(self):
        request = make_request(lifetime_s=None)
        assert request.departure_time is None

    def test_negative_lifetime_rejected(self):
        with pytest.raises(ValueError):
            make_request(lifetime_s=-1.0)

    def test_frozen(self):
        request = make_request()
        with pytest.raises(AttributeError):
            request.flow_id = 99


class TestAdmittedFlow:
    def test_valid_flow(self):
        request = make_request()
        flow = AdmittedFlow(
            request=request,
            destination=4,
            path=(9, 5, 4),
            admitted_at=10.0,
            attempts=2,
        )
        assert flow.flow_id == 1
        assert flow.bandwidth_bps == 64_000.0
        assert flow.hop_count == 2
        assert not flow.released

    def test_destination_must_be_group_member(self):
        request = make_request()
        with pytest.raises(ValueError):
            AdmittedFlow(
                request=request, destination=99, path=(9, 99), admitted_at=0.0
            )

    def test_path_must_end_at_destination(self):
        request = make_request()
        with pytest.raises(ValueError):
            AdmittedFlow(
                request=request, destination=4, path=(9, 5, 0), admitted_at=0.0
            )

    def test_attempts_must_be_positive(self):
        request = make_request()
        with pytest.raises(ValueError):
            AdmittedFlow(
                request=request,
                destination=4,
                path=(9, 4),
                admitted_at=0.0,
                attempts=0,
            )

    def test_zero_hop_flow(self):
        request = make_request(source=0)
        flow = AdmittedFlow(
            request=request, destination=0, path=(0,), admitted_at=0.0
        )
        assert flow.hop_count == 0
