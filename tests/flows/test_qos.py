"""Unit tests for QoS and the WFQ delay mapping (repro.flows.qos)."""

import pytest

from repro.flows.qos import (
    QoSRequirement,
    delay_bound_to_bandwidth_wfq,
    wfq_delay_bound,
)


class TestQoSRequirement:
    def test_effective_bandwidth_defaults_to_throughput(self):
        qos = QoSRequirement(bandwidth_bps=64_000.0)
        assert qos.effective_bandwidth_bps == 64_000.0

    def test_positive_bandwidth_required(self):
        with pytest.raises(ValueError):
            QoSRequirement(bandwidth_bps=0.0)

    def test_positive_delay_required(self):
        with pytest.raises(ValueError):
            QoSRequirement(bandwidth_bps=1.0, delay_bound_s=0.0)

    def test_with_route_noop_without_delay_bound(self):
        qos = QoSRequirement(bandwidth_bps=64_000.0)
        assert qos.with_route(3, [1e8, 1e8, 1e8]) is qos

    def test_with_route_raises_effective_bandwidth(self):
        qos = QoSRequirement(bandwidth_bps=64_000.0, delay_bound_s=0.05)
        resolved = qos.with_route(3, [1e8, 1e8, 1e8])
        assert resolved.effective_bandwidth_bps > 64_000.0

    def test_loose_delay_keeps_throughput_rate(self):
        qos = QoSRequirement(bandwidth_bps=64_000.0, delay_bound_s=100.0)
        resolved = qos.with_route(2, [1e8, 1e8])
        assert resolved.effective_bandwidth_bps == 64_000.0

    def test_tighter_delay_needs_more_bandwidth(self):
        loose = QoSRequirement(bandwidth_bps=1.0, delay_bound_s=0.5)
        tight = QoSRequirement(bandwidth_bps=1.0, delay_bound_s=0.05)
        speeds = [1e8, 1e8]
        assert (
            tight.with_route(2, speeds).effective_bandwidth_bps
            > loose.with_route(2, speeds).effective_bandwidth_bps
        )


class TestWfqDelayBound:
    def test_bound_decreases_with_rate(self):
        kwargs = dict(
            burst_bits=12_000.0,
            max_packet_bits=12_000.0,
            hop_count=3,
            link_speeds_bps=[1e8] * 3,
        )
        assert wfq_delay_bound(1e5, **kwargs) > wfq_delay_bound(1e6, **kwargs)

    def test_bound_grows_with_hops(self):
        low = wfq_delay_bound(1e6, 12_000.0, 12_000.0, 2, [1e8] * 2)
        high = wfq_delay_bound(1e6, 12_000.0, 12_000.0, 5, [1e8] * 5)
        assert high > low

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            wfq_delay_bound(0.0, 1.0, 1.0, 1, [1e8])
        with pytest.raises(ValueError):
            wfq_delay_bound(1.0, 1.0, 1.0, 0, [])
        with pytest.raises(ValueError):
            wfq_delay_bound(1.0, 1.0, 1.0, 2, [1e8])  # speeds mismatch


class TestDelayToBandwidth:
    def test_round_trip_consistency(self):
        # Rate computed for a target bound must achieve exactly that bound.
        target = 0.05
        speeds = [1e8, 1e8, 1e8]
        rate = delay_bound_to_bandwidth_wfq(target, 12_000.0, 12_000.0, 3, speeds)
        achieved = wfq_delay_bound(rate, 12_000.0, 12_000.0, 3, speeds)
        assert achieved == pytest.approx(target, rel=1e-9)

    def test_infeasible_bound_raises(self):
        # Store-and-forward alone takes 3 * 12000/1e6 = 0.036 s.
        with pytest.raises(ValueError):
            delay_bound_to_bandwidth_wfq(0.01, 12_000.0, 12_000.0, 3, [1e6] * 3)

    def test_fluid_single_hop_flow_needs_no_rate(self):
        rate = delay_bound_to_bandwidth_wfq(1.0, 0.0, 12_000.0, 1, [1e8])
        assert rate == 0.0

    def test_fluid_flow_with_impossible_bound_raises(self):
        with pytest.raises(ValueError):
            delay_bound_to_bandwidth_wfq(1e-9, 0.0, 12_000.0, 1, [1e6])

    def test_tighter_bound_needs_more_rate(self):
        speeds = [1e8, 1e8]
        loose = delay_bound_to_bandwidth_wfq(0.5, 12_000.0, 12_000.0, 2, speeds)
        tight = delay_bound_to_bandwidth_wfq(0.05, 12_000.0, 12_000.0, 2, speeds)
        assert tight > loose

    def test_validation(self):
        with pytest.raises(ValueError):
            delay_bound_to_bandwidth_wfq(-1.0, 1.0, 1.0, 1, [1e8])
        with pytest.raises(ValueError):
            delay_bound_to_bandwidth_wfq(1.0, 1.0, 1.0, 0, [])
        with pytest.raises(ValueError):
            delay_bound_to_bandwidth_wfq(1.0, 1.0, 1.0, 2, [1e8])
