"""Unit tests for anycast groups (repro.flows.group)."""

import pytest

from repro.flows.group import AnycastGroup


class TestConstruction:
    def test_members_preserved_in_order(self):
        group = AnycastGroup("A", (4, 0, 8))
        assert group.members == (4, 0, 8)
        assert group.size == 3
        assert len(group) == 3

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            AnycastGroup("A", ())

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            AnycastGroup("A", (1, 2, 1))

    def test_unicast_degenerate_case(self):
        group = AnycastGroup("U", (7,))
        assert group.is_unicast
        assert not AnycastGroup("A", (1, 2)).is_unicast


class TestMembership:
    def test_contains(self):
        group = AnycastGroup("A", (0, 4, 8))
        assert 4 in group
        assert 5 not in group

    def test_index_of(self):
        group = AnycastGroup("A", (0, 4, 8))
        assert group.index_of(0) == 0
        assert group.index_of(8) == 2

    def test_index_of_non_member_raises(self):
        group = AnycastGroup("A", (0, 4))
        with pytest.raises(ValueError):
            group.index_of(99)

    def test_iteration(self):
        group = AnycastGroup("A", (3, 1, 2))
        assert list(group) == [3, 1, 2]


class TestEquality:
    def test_equal_groups(self):
        assert AnycastGroup("A", (1, 2)) == AnycastGroup("A", (1, 2))

    def test_member_order_matters(self):
        assert AnycastGroup("A", (1, 2)) != AnycastGroup("A", (2, 1))

    def test_address_matters(self):
        assert AnycastGroup("A", (1, 2)) != AnycastGroup("B", (1, 2))

    def test_hashable(self):
        groups = {AnycastGroup("A", (1, 2)), AnycastGroup("A", (1, 2))}
        assert len(groups) == 1

    def test_not_equal_to_other_types(self):
        assert AnycastGroup("A", (1,)) != "A"
