"""Unit tests for workload generation (repro.flows.traffic)."""

import pytest

from repro.flows.group import AnycastGroup
from repro.flows.traffic import TrafficModel, WorkloadSpec
from repro.sim.random_streams import StreamFactory


def make_spec(**overrides) -> WorkloadSpec:
    defaults = dict(
        arrival_rate=10.0,
        sources=(1, 3, 5),
        group=AnycastGroup("A", (0, 4)),
        mean_lifetime_s=180.0,
        bandwidth_bps=64_000.0,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestWorkloadSpec:
    def test_derived_quantities(self):
        spec = make_spec()
        assert spec.per_source_rate == pytest.approx(10.0 / 3.0)
        assert spec.offered_load_erlangs == pytest.approx(1800.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_spec(arrival_rate=0.0)
        with pytest.raises(ValueError):
            make_spec(sources=())
        with pytest.raises(ValueError):
            make_spec(mean_lifetime_s=0.0)
        with pytest.raises(ValueError):
            make_spec(bandwidth_bps=0.0)

    def test_qos_carries_bandwidth_and_delay(self):
        spec = make_spec(delay_bound_s=0.1)
        qos = spec.qos()
        assert qos.bandwidth_bps == 64_000.0
        assert qos.delay_bound_s == 0.1


class TestTrafficModel:
    def test_arrival_times_increase(self):
        model = TrafficModel(make_spec(), StreamFactory(1))
        requests = model.take(100)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_flow_ids_sequential(self):
        model = TrafficModel(make_spec(), StreamFactory(1))
        requests = model.take(10)
        assert [r.flow_id for r in requests] == list(range(10))
        assert model.generated_count == 10

    def test_sources_from_spec_only(self):
        model = TrafficModel(make_spec(), StreamFactory(1))
        for request in model.take(200):
            assert request.source in (1, 3, 5)

    def test_source_distribution_uniform(self):
        model = TrafficModel(make_spec(), StreamFactory(2))
        counts = {1: 0, 3: 0, 5: 0}
        for request in model.take(6000):
            counts[request.source] += 1
        for count in counts.values():
            assert count == pytest.approx(2000, rel=0.1)

    def test_interarrival_mean_matches_rate(self):
        spec = make_spec(arrival_rate=4.0)
        model = TrafficModel(spec, StreamFactory(3))
        requests = model.take(20000)
        mean_gap = requests[-1].arrival_time / len(requests)
        assert mean_gap == pytest.approx(0.25, rel=0.05)

    def test_lifetime_mean(self):
        model = TrafficModel(make_spec(mean_lifetime_s=60.0), StreamFactory(4))
        lifetimes = [r.lifetime_s for r in model.take(20000)]
        assert sum(lifetimes) / len(lifetimes) == pytest.approx(60.0, rel=0.05)

    def test_deterministic_given_seed(self):
        a = TrafficModel(make_spec(), StreamFactory(9)).take(50)
        b = TrafficModel(make_spec(), StreamFactory(9)).take(50)
        assert [(r.arrival_time, r.source, r.lifetime_s) for r in a] == [
            (r.arrival_time, r.source, r.lifetime_s) for r in b
        ]

    def test_requests_until_horizon(self):
        model = TrafficModel(make_spec(arrival_rate=100.0), StreamFactory(5))
        requests = list(model.requests_until(2.0))
        assert requests
        assert all(r.arrival_time <= 2.0 for r in requests)
        # Roughly 200 arrivals expected in 2 s at rate 100/s.
        assert 120 < len(requests) < 300

    def test_take_negative_rejected(self):
        model = TrafficModel(make_spec(), StreamFactory(1))
        with pytest.raises(ValueError):
            model.take(-1)

    def test_requests_carry_group_and_qos(self):
        spec = make_spec()
        model = TrafficModel(spec, StreamFactory(1))
        request = model.next_request()
        assert request.group == spec.group
        assert request.bandwidth_bps == spec.bandwidth_bps
