"""Property: heap and calendar pending-event sets are interchangeable.

The simulator promises bit-identical execution order regardless of the
queue implementation.  These tests drive a :class:`HeapQueue` and a
:class:`CalendarQueue` through the same randomized interleavings of
schedule / cancel / pop / batched-pop operations and require them to
agree on every observable: pop order (time *and* sequence), live
counts, peeked timestamps and batch contents.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import CalendarQueue
from repro.sim.engine import Event, HeapQueue

# Delays mix exact ties (0.0 and a coarse grid) with continuous values
# so same-timestamp runs and FIFO tie-breaking are exercised heavily.
_delays = st.one_of(
    st.just(0.0),
    st.sampled_from([0.25, 0.5, 1.0, 2.0]),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
)

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _delays),
        st.tuples(st.just("pop"), st.just(0)),
        st.tuples(st.just("pop_run"), st.just(0)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=1000)),
    ),
    min_size=1,
    max_size=200,
)


class _Pair:
    """The two queues driven in lockstep, with shared bookkeeping."""

    def __init__(self):
        self.heap = HeapQueue()
        self.calendar = CalendarQueue()
        self.sequence = 0
        self.now = 0.0
        # sequence -> (heap event, calendar event) for cancellable pairs
        self.live: dict[int, tuple[Event, Event]] = {}

    def push(self, delay):
        time = self.now + delay
        pair = (
            Event(time, lambda: None, self.sequence),
            Event(time, lambda: None, self.sequence),
        )
        self.heap.push(pair[0])
        self.calendar.push(pair[1])
        self.live[self.sequence] = pair
        self.sequence += 1

    def pop(self):
        a = self.heap.pop_min()
        b = self.calendar.pop_min()
        assert (a is None) == (b is None)
        if a is not None:
            assert (a.time, a._sequence) == (b.time, b._sequence)
            self.live.pop(a._sequence, None)
            self.now = a.time
        return a

    def pop_run(self):
        run_a: list[Event] = []
        run_b: list[Event] = []
        count_a = self.heap.pop_run_into(run_a)
        count_b = self.calendar.pop_run_into(run_b)
        assert count_a == count_b
        assert [(e.time, e._sequence) for e in run_a] == [
            (e.time, e._sequence) for e in run_b
        ]
        for event in run_a:
            self.live.pop(event._sequence, None)
        if run_a:
            self.now = run_a[-1].time

    def cancel(self, pick):
        if not self.live:
            return
        keys = sorted(self.live)
        key = keys[pick % len(keys)]
        pair = self.live.pop(key)
        pair[0].cancel()
        pair[1].cancel()

    def check_observables(self):
        assert self.heap.live_count() == self.calendar.live_count()
        assert self.heap.peek_time() == self.calendar.peek_time()


class TestQueueEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(operations=_operations)
    def test_interleaved_operations_agree(self, operations):
        pair = _Pair()
        for kind, value in operations:
            if kind == "push":
                pair.push(value)
            elif kind == "pop":
                pair.pop()
            elif kind == "pop_run":
                pair.pop_run()
            else:
                pair.cancel(value)
            pair.check_observables()
        # Drain whatever survived; order must stay identical to the end.
        drained = 0
        while pair.pop() is not None:
            drained += 1
        assert pair.heap.live_count() == 0
        assert pair.calendar.live_count() == 0

    @settings(max_examples=40, deadline=None)
    @given(
        delays=st.lists(_delays, min_size=1, max_size=120),
        cancel_every=st.integers(min_value=2, max_value=7),
    )
    def test_bulk_schedule_then_batched_drain(self, delays, cancel_every):
        """Pure pop_run_into drain after bulk scheduling and cancels."""
        pair = _Pair()
        for delay in delays:
            pair.push(delay)
        for i, key in enumerate(sorted(pair.live)):
            if i % cancel_every == 0:
                event_pair = pair.live[key]
                event_pair[0].cancel()
                event_pair[1].cancel()
        pair.check_observables()
        while pair.heap.peek_time() is not None:
            pair.pop_run()
            pair.check_observables()
        assert pair.calendar.peek_time() is None
