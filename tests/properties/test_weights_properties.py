"""Property-based tests for weight assignment (hypothesis).

The weight constraint of eq. 1 — weights form a probability vector —
must hold for every selector under every reachable history/network
state; these tests drive the selectors through arbitrary observation
sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import (
    DistanceBandwidthWeighted,
    DistanceHistoryWeighted,
    DistanceWeighted,
    EvenDistribution,
    SelectionContext,
    distance_weights,
)
from repro.flows.group import AnycastGroup
from repro.network.routing import RouteTable
from repro.network.topologies import star
from repro.sim.random_streams import StreamFactory


def make_star_context(members_count: int):
    """Hub 0 with `members_count` spokes; group at all leaves."""
    network = star(members_count, capacity_bps=3 * 64_000.0)
    members = tuple(range(1, members_count + 1))
    group = AnycastGroup("A", members)
    routes = RouteTable(network, 0, members)
    return network, SelectionContext(network=network, routes=routes, group=group)


def assert_probability_vector(weights, size):
    assert len(weights) == size
    assert all(w >= -1e-12 for w in weights)
    assert abs(sum(weights) - 1.0) < 1e-9


class TestDistanceWeightsFunction:
    @given(
        distances=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=10,
        )
    )
    def test_always_a_probability_vector(self, distances):
        weights = distance_weights(distances)
        assert_probability_vector(weights, len(distances))

    @given(
        distances=st.lists(
            st.floats(min_value=0.5, max_value=100.0), min_size=2, max_size=8
        )
    )
    def test_shorter_distance_never_weighs_less(self, distances):
        weights = distance_weights(distances)
        for i in range(len(distances)):
            for j in range(len(distances)):
                if distances[i] < distances[j]:
                    assert weights[i] >= weights[j] - 1e-12


class TestHistoryWeightedInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        size=st.integers(min_value=2, max_value=6),
        alpha=st.floats(min_value=0.0, max_value=1.0),
        outcomes=st.lists(st.booleans(), min_size=0, max_size=40),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_weights_stay_probability_vector(self, size, alpha, outcomes, seed):
        _, context = make_star_context(size)
        selector = DistanceHistoryWeighted(context, alpha=alpha)
        rng = StreamFactory(seed).stream("prop")
        for success in outcomes:
            weights = selector.weights()
            assert_probability_vector(weights, size)
            member = selector.select(rng)
            selector.observe(member, success)
        assert_probability_vector(selector.weights(), size)

    @settings(max_examples=40, deadline=None)
    @given(
        size=st.integers(min_value=2, max_value=6),
        failures=st.integers(min_value=1, max_value=10),
    )
    def test_failing_member_loses_weight(self, size, failures):
        _, context = make_star_context(size)
        selector = DistanceHistoryWeighted(context, alpha=0.5)
        target = context.group.members[0]
        baseline = selector.weights()[0]
        for _ in range(failures):
            selector.observe(target, success=False)
        weights = selector.weights()
        assert weights[0] < baseline + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(size=st.integers(min_value=2, max_value=6))
    def test_success_after_failures_restores_eligibility(self, size):
        _, context = make_star_context(size)
        selector = DistanceHistoryWeighted(context, alpha=0.0)
        target = context.group.members[0]
        selector.observe(target, success=False)
        assert selector.weights()[0] == 0.0
        selector.observe(target, success=True)
        assert selector.weights()[0] > 0.0


class TestBandwidthWeightedInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        size=st.integers(min_value=2, max_value=5),
        reservations=st.lists(
            st.integers(min_value=0, max_value=3), min_size=2, max_size=5
        ),
    )
    def test_weights_follow_available_bandwidth(self, size, reservations):
        network, context = make_star_context(size)
        selector = DistanceBandwidthWeighted(context)
        for leaf, slots in zip(range(1, size + 1), reservations):
            for slot in range(slots):
                network.link(0, leaf).reserve(f"f{leaf}.{slot}", 64_000.0)
        weights = selector.weights()
        assert_probability_vector(weights, size)
        # Equal distances on a star: weight order == bandwidth order.
        bandwidths = [
            network.link(0, leaf).available_bps for leaf in range(1, size + 1)
        ]
        for i in range(size):
            for j in range(size):
                if bandwidths[i] > bandwidths[j]:
                    assert weights[i] >= weights[j] - 1e-12


class TestSelectionRespectsExclusion:
    @settings(max_examples=40, deadline=None)
    @given(
        size=st.integers(min_value=3, max_value=6),
        excluded_index=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_excluded_members_never_selected(self, size, excluded_index, seed):
        _, context = make_star_context(size)
        member = context.group.members[excluded_index % size]
        rng = StreamFactory(seed).stream("excl")
        for selector in (
            EvenDistribution(context),
            DistanceWeighted(context),
            DistanceHistoryWeighted(context),
            DistanceBandwidthWeighted(context),
        ):
            for _ in range(10):
                assert selector.select(rng, exclude=frozenset({member})) != member
