"""Property-based tests for admission-control invariants.

Drives random request/departure interleavings through complete
admission systems and checks the global conservation and safety
invariants that must hold in any correct admission controller.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import SystemSpec, build_system
from repro.flows.flow import FlowRequest
from repro.flows.group import AnycastGroup
from repro.flows.qos import QoSRequirement
from repro.network.topologies import mci_backbone
from repro.sim.random_streams import StreamFactory

GROUP = AnycastGroup("A", (0, 4, 8, 12, 16))
SOURCES = (1, 3, 5, 7, 9, 11, 13, 15, 17)

algorithms = st.sampled_from(["ED", "WD/D", "WD/D+H", "WD/D+B", "SP", "GDI"])


@st.composite
def request_scripts(draw):
    """A list of (source_index, hold) admission steps."""
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(SOURCES) - 1),
                st.booleans(),  # whether to release some admitted flow after
            ),
            min_size=1,
            max_size=60,
        )
    )
    return steps


class TestConservationInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        algorithm=algorithms,
        retrials=st.integers(min_value=1, max_value=5),
        script=request_scripts(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_reservations_balance_admissions(self, algorithm, retrials, script, seed):
        network = mci_backbone(capacity_bps=3 * 64_000.0)
        system = build_system(
            SystemSpec(algorithm, retrials=retrials),
            network,
            SOURCES,
            GROUP,
            StreamFactory(seed),
        )
        active = []
        flow_id = 0
        for source_index, release_after in script:
            request = FlowRequest(
                flow_id=flow_id,
                source=SOURCES[source_index],
                group=GROUP,
                qos=QoSRequirement(bandwidth_bps=64_000.0),
            )
            flow_id += 1
            result = system.admit(request)
            # Safety: attempts bounded by R (or 1 for SP/GDI) and by K.
            limit = 1 if algorithm in ("SP", "GDI") else retrials
            assert 1 <= result.attempts <= min(limit, GROUP.size)
            if result.admitted:
                active.append(result.flow)
                # The admitted flow holds its bandwidth on every hop.
                for link in network.path_links(result.flow.path):
                    assert link.reservation_of(result.flow.flow_id) == 64_000.0
            if release_after and active:
                system.release(active.pop())
        # Conservation: reserved bandwidth == sum over active flows.
        expected = sum(64_000.0 * flow.hop_count for flow in active)
        assert network.total_reserved_bps() == expected
        # Full cleanup drains the network.
        for flow in active:
            system.release(flow)
        assert network.total_reserved_bps() == 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        algorithm=algorithms,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_no_link_oversubscription_under_pressure(self, algorithm, seed):
        """Hammer a tiny network: no link may ever exceed capacity."""
        network = mci_backbone(capacity_bps=2 * 64_000.0)
        system = build_system(
            SystemSpec(algorithm, retrials=3),
            network,
            SOURCES,
            GROUP,
            StreamFactory(seed),
        )
        for flow_id in range(120):
            request = FlowRequest(
                flow_id=flow_id,
                source=SOURCES[flow_id % len(SOURCES)],
                group=GROUP,
                qos=QoSRequirement(bandwidth_bps=64_000.0),
            )
            system.admit(request)
            for link in network.links():
                assert link.reserved_bps <= link.capacity_bps + 1e-6
