"""Property-based tests for network invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.link import InsufficientBandwidthError, Link
from repro.network.routing import RouteTable, k_shortest_paths, shortest_path
from repro.network.topologies import waxman_random
from repro.network.topology import Network


class TestLinkConservation:
    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.floats(min_value=1.0, max_value=1e9),
        amounts=st.lists(
            st.floats(min_value=0.0, max_value=1e8), min_size=0, max_size=30
        ),
    )
    def test_reserved_never_exceeds_capacity(self, capacity, amounts):
        link = Link(0, 1, capacity_bps=capacity)
        for i, amount in enumerate(amounts):
            try:
                link.reserve(i, amount)
            except InsufficientBandwidthError:
                pass
        assert link.reserved_bps <= link.capacity_bps + 1e-6
        assert link.available_bps >= -1e-6

    @settings(max_examples=60, deadline=None)
    @given(
        amounts=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20
        )
    )
    def test_release_all_restores_capacity(self, amounts):
        link = Link(0, 1, capacity_bps=1e6)
        reserved = []
        for i, amount in enumerate(amounts):
            try:
                link.reserve(i, amount)
                reserved.append(i)
            except InsufficientBandwidthError:
                pass
        for flow_id in reserved:
            link.release(flow_id)
        assert link.reserved_bps == 0.0
        assert link.flow_count == 0


class TestPathAtomicity:
    @settings(max_examples=40, deadline=None)
    @given(
        pre_reserved=st.lists(
            st.tuples(st.integers(0, 3), st.floats(min_value=0.0, max_value=100.0)),
            max_size=8,
        ),
        bandwidth=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_reserve_path_is_all_or_nothing(self, pre_reserved, bandwidth):
        net = Network()
        for i in range(4):
            net.add_link(i, i + 1, capacity_bps=100.0)
        path = [0, 1, 2, 3, 4]
        for i, (hop, amount) in enumerate(pre_reserved):
            link = net.link(path[hop], path[hop + 1])
            if link.can_admit(amount):
                link.reserve(f"pre{i}", amount)
        def ledgers():
            return {
                (l.source, l.target): {f: l.reservation_of(f) for f in l.flows()}
                for l in net.links()
            }

        before = ledgers()
        success = net.reserve_path(path, "flow", bandwidth)
        after = ledgers()
        if success:
            for u, v in zip(path, path[1:]):
                assert after[(u, v)].pop("flow") == bandwidth
            assert after == before
        else:
            # Rollback restores the per-flow ledgers exactly.
            assert after == before


class TestRoutingProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=20),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_shortest_paths_match_networkx(self, n, seed):
        import networkx as nx

        net = waxman_random(n, seed=seed)
        graph = net.to_networkx()
        source, target = 0, n - 1
        ours = shortest_path(net, source, target)
        assert ours is not None  # generator guarantees connectivity
        assert len(ours) - 1 == nx.shortest_path_length(graph, source, target)
        # Every consecutive pair is an actual link.
        for u, v in zip(ours, ours[1:]):
            assert net.has_link(u, v)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=15),
        seed=st.integers(min_value=0, max_value=1000),
        k=st.integers(min_value=1, max_value=5),
    )
    def test_k_shortest_paths_are_valid_and_distinct(self, n, seed, k):
        net = waxman_random(n, seed=seed)
        paths = k_shortest_paths(net, 0, n - 1, k)
        assert 1 <= len(paths) <= k
        seen = set()
        for path in paths:
            key = tuple(path)
            assert key not in seen
            seen.add(key)
            assert path[0] == 0 and path[-1] == n - 1
            assert len(set(path)) == len(path)  # loop-free
            for u, v in zip(path, path[1:]):
                assert net.has_link(u, v)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=15),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_route_table_paths_start_and_end_correctly(self, n, seed):
        net = waxman_random(n, seed=seed)
        members = tuple(range(min(3, n)))
        table = RouteTable(net, n - 1, members)
        for member in members:
            route = table.route_to(member)
            assert route.path[0] == n - 1
            assert route.path[-1] == member
            assert route.distance == len(route.path) - 1
